//! EBS — energy-balancing scheduler.
//!
//! A full Rust reproduction of *Merkel & Bellosa, "Balancing Power
//! Consumption in Multiprocessor Systems", EuroSys 2006*: online task
//! energy estimation from event-monitoring counters, energy-aware
//! multiprocessor scheduling (energy balancing + hot task migration), and
//! the simulated 8-way SMT/NUMA machine the policies are evaluated on.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; see the individual crates for details.
//!
//! # Examples
//!
//! ```
//! use ebs::sim::{SimConfig, Simulation};
//! use ebs::workloads::section61_mix;
//!
//! // Paper Section 6.1: 18 tasks, 3 instances each of 6 programs,
//! // on an 8-CPU machine with SMT disabled and energy balancing on.
//! let cfg = SimConfig::xseries445()
//!     .smt(false)
//!     .energy_aware(true)
//!     .seed(42);
//! let mut sim = Simulation::new(cfg);
//! sim.spawn_mix(&section61_mix(), 3);
//! sim.run_for(ebs::units::SimDuration::from_secs(5));
//! let report = sim.report();
//! assert!(report.instructions_retired > 0);
//! ```

pub use ebs_core as core;
pub use ebs_counters as counters;
pub use ebs_dvfs as dvfs;
pub use ebs_fleet as fleet;
pub use ebs_sched as sched;
pub use ebs_sim as sim;
pub use ebs_store as store;
pub use ebs_thermal as thermal;
pub use ebs_topology as topology;
pub use ebs_units as units;
pub use ebs_workloads as workloads;
