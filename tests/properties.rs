//! Property-based integration tests: invariants that must hold for
//! *any* workload mix, machine shape, and seed.

use ebs::core::{runqueue_power, PowerState, PowerStateConfig};
use ebs::sched::{MigrationReason, System, TaskConfig};
use ebs::sim::{SimConfig, Simulation};
use ebs::thermal::{RcThermalModel, ThermalNode};
use ebs::topology::{CpuId, Topology};
use ebs::units::{SimDuration, Watts};
use ebs::workloads::{catalog, Program};
use proptest::prelude::*;

fn any_program(idx: usize) -> Program {
    let programs = [
        catalog::bitcnts(),
        catalog::memrw(),
        catalog::aluadd(),
        catalog::pushpop(),
        catalog::openssl(),
        catalog::bzip2(),
        catalog::bash(),
        catalog::grep(),
        catalog::sshd(),
    ];
    programs[idx % programs.len()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any mix on any machine shape: scheduler invariants hold, every
    /// spawned-and-unfinished task is somewhere, counters only grow.
    #[test]
    fn simulation_preserves_task_accounting(
        seed in 0u64..1_000,
        smt in any::<bool>(),
        programs in prop::collection::vec(0usize..9, 1..12),
    ) {
        let cfg = SimConfig::xseries445().smt(smt).energy_aware(true).seed(seed);
        let mut sim = Simulation::new(cfg);
        for idx in &programs {
            sim.spawn_program(&any_program(*idx));
        }
        sim.run_for(SimDuration::from_secs(3));
        sim.system().validate();
        let report = sim.report();
        // With respawn on, the live population equals the spawn count
        // (runnable + running + blocked).
        let on_queues: usize = sim
            .system()
            .topology()
            .cpu_ids()
            .map(|c| sim.system().nr_running(c))
            .sum();
        prop_assert!(on_queues <= programs.len());
        prop_assert!(report.instructions_retired > 0);
        for f in &report.throttled_fraction {
            prop_assert!((0.0..=1.0).contains(f));
        }
    }

    /// Migrations never teleport a task outside the machine and the
    /// migration counters are consistent.
    #[test]
    fn migration_accounting_is_consistent(
        seed in 0u64..1_000,
        n_tasks in 1usize..10,
    ) {
        let cfg = SimConfig::xseries445().smt(false).energy_aware(true).seed(seed);
        let mut sim = Simulation::new(cfg);
        for i in 0..n_tasks {
            sim.spawn_program(&any_program(i));
        }
        sim.run_for(SimDuration::from_secs(5));
        let by_reason: u64 = sim.report().migrations_by_reason.iter().sum();
        prop_assert_eq!(by_reason, sim.report().migrations);
        for id in 0..sim.system().n_tasks() {
            let task = sim.system().task(ebs::sched::TaskId(id as u64));
            prop_assert!(task.cpu().0 < sim.system().topology().n_cpus());
        }
    }

    /// Runqueue power is always inside the span of its tasks' profiles
    /// (it is an average), for arbitrary profile assignments.
    #[test]
    fn runqueue_power_is_a_mean(
        profiles in prop::collection::vec(5.0f64..100.0, 1..8),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        for &p in &profiles {
            sys.spawn(
                TaskConfig { initial_profile: Watts(p), ..TaskConfig::default() },
                CpuId(0),
            );
        }
        let power = runqueue_power(&sys, CpuId(0), Watts(13.6));
        let lo = profiles.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = profiles.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(power.0 >= lo - 1e-9 && power.0 <= hi + 1e-9);
    }

    /// The RC model never overshoots: for any constant power, the
    /// temperature stays between the initial value and steady state.
    #[test]
    fn rc_model_never_overshoots(
        power in 0.0f64..150.0,
        steps in 1usize..500,
        step_ms in 1u64..5_000,
    ) {
        let model = RcThermalModel::reference();
        let mut node = ThermalNode::new(model);
        let t0 = node.temperature();
        let t_inf = model.steady_state(Watts(power));
        for _ in 0..steps {
            let t = node.step(Watts(power), SimDuration::from_millis(step_ms));
            let lo = t0.min(t_inf).0 - 1e-9;
            let hi = t0.max(t_inf).0 + 1e-9;
            prop_assert!(t.0 >= lo && t.0 <= hi, "t = {t:?} outside [{lo}, {hi}]");
        }
    }

    /// Variable-period averaging is consistent: chopping an interval
    /// into arbitrary pieces with a constant sample gives the same
    /// result as one update over the whole interval.
    #[test]
    fn expavg_period_composition(
        pieces in prop::collection::vec(1u64..400, 1..10),
        sample in 0.0f64..100.0,
        initial in 0.0f64..100.0,
    ) {
        use ebs::thermal::ExpAverage;
        let std_period = SimDuration::from_millis(100);
        let total: u64 = pieces.iter().sum();
        let mut whole = ExpAverage::new(initial, std_period, 0.3);
        whole.update(sample, SimDuration::from_millis(total));
        let mut split = ExpAverage::new(initial, std_period, 0.3);
        for &ms in &pieces {
            split.update(sample, SimDuration::from_millis(ms));
        }
        prop_assert!(
            (whole.value() - split.value()).abs() < 1e-6,
            "{} vs {}", whole.value(), split.value()
        );
    }

    /// `migrate_queued` either succeeds and moves exactly one task, or
    /// fails and changes nothing.
    #[test]
    fn migration_is_atomic(
        src in 0usize..8,
        dst in 0usize..8,
        n_tasks in 0usize..4,
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        let ids: Vec<_> = (0..n_tasks)
            .map(|_| sys.spawn(TaskConfig::default(), CpuId(src)))
            .collect();
        let before: Vec<usize> = (0..8).map(|c| sys.nr_running(CpuId(c))).collect();
        if let Some(&id) = ids.first() {
            let result = sys.migrate_queued(id, CpuId(dst), MigrationReason::LoadBalance);
            let after: Vec<usize> = (0..8).map(|c| sys.nr_running(CpuId(c))).collect();
            if result.is_ok() {
                prop_assert_eq!(after[dst], before[dst] + 1);
                prop_assert_eq!(after[src], before[src] - 1);
            } else {
                prop_assert_eq!(before, after);
            }
            sys.validate();
        }
    }

    /// Thermal ratios are scale-free: doubling both the thermal power
    /// and the budget leaves every ratio unchanged.
    #[test]
    fn power_ratios_are_scale_free(
        power_w in 1.0f64..100.0,
        budget_w in 1.0f64..100.0,
        scale in 0.1f64..10.0,
    ) {
        let mk = |p: f64, b: f64| {
            let mut ps = PowerState::uniform(1, Watts(b), PowerStateConfig::default());
            for _ in 0..5_000 {
                ps.observe(CpuId(0), Watts(p), SimDuration::from_millis(100));
            }
            ps.thermal_ratio(CpuId(0))
        };
        let base = mk(power_w, budget_w);
        let scaled = mk(power_w * scale, budget_w * scale);
        // The initial idle power differs in relative weight, so allow
        // a small tolerance after convergence.
        prop_assert!((base - scaled).abs() < 0.02, "{base} vs {scaled}");
    }
}
