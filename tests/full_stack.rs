//! Cross-crate integration tests: the paper's qualitative results,
//! asserted end-to-end through the facade crate.

use ebs::sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs::topology::{CpuId, Topology};
use ebs::units::{Celsius, SimDuration, SimTime, Watts};
use ebs::workloads::{catalog, section61_mix};

/// Section 6.1 / Figures 6-7: energy balancing collapses the thermal
/// band of a mixed workload.
#[test]
fn energy_balancing_collapses_thermal_band() {
    let run = |on: bool| {
        let cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(on)
            .throttling(false)
            .max_power(MaxPowerSpec::PerLogical(Watts(60.0)))
            .trace_thermal(SimDuration::from_secs(1))
            .seed(99);
        let mut sim = Simulation::new(cfg);
        sim.spawn_mix(&section61_mix(), 3);
        sim.run_for(SimDuration::from_secs(500));
        sim.thermal_trace()
            .max_spread(SimTime::from_secs(300))
            .unwrap()
    };
    let spread_off = run(false);
    let spread_on = run(true);
    assert!(
        spread_on.0 < spread_off.0 * 0.7,
        "balancing did not narrow the band: {spread_on:?} vs {spread_off:?}"
    );
}

/// Section 6.2 / Table 3: under a temperature limit, energy-aware
/// scheduling reduces throttling and increases throughput.
#[test]
fn throttle_reduction_increases_throughput() {
    let run = |on: bool| {
        let cfg = SimConfig::xseries445()
            .smt(true)
            .energy_aware(on)
            .throttling(true)
            .cooling_factors(vec![1.25, 0.62, 0.65, 1.28, 0.85, 0.60, 0.63, 0.66])
            .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)))
            .seed(7);
        let mut sim = Simulation::new(cfg);
        sim.spawn_mix(&section61_mix(), 6);
        sim.run_for(SimDuration::from_secs(300));
        sim.report()
    };
    let off = run(false);
    let on = run(true);
    assert!(on.avg_throttled_fraction < off.avg_throttled_fraction);
    assert!(on.throughput_ips > off.throughput_ips);
}

/// Section 6.4 / Figure 9: a lone hot task escapes throttling by
/// migration, never via the SMT sibling, never across the node.
#[test]
fn hot_task_roams_legally() {
    let cfg = SimConfig::xseries445()
        .smt(true)
        .energy_aware(true)
        .throttling(true)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .trace_task_cpu(true)
        .seed(13);
    let mut sim = Simulation::new(cfg);
    let id = sim.spawn_program(&catalog::bitcnts());
    sim.run_for(SimDuration::from_secs(120));
    let visits = sim.task_trace().visits(id);
    assert!(visits.len() >= 5, "too few hops: {visits:?}");
    let topo = Topology::xseries445(true);
    for pair in visits.windows(2) {
        assert!(
            !topo.same_package(pair[0].1, pair[1].1),
            "hopped to the sibling: {pair:?}"
        );
        assert!(
            topo.same_node(pair[0].1, pair[1].1),
            "crossed the node boundary: {pair:?}"
        );
    }
    assert!(sim.report().avg_throttled_fraction < 0.02);
}

/// Section 3.3 / Table 2: online estimation converges task profiles to
/// their programs' power levels within the estimation error bound.
#[test]
fn profiles_match_ground_truth_within_ten_percent() {
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(false)
        .throttling(false)
        .seed(3);
    let mut sim = Simulation::new(cfg);
    let expectations = [
        (sim.spawn_program(&catalog::bitcnts()), 61.0),
        (sim.spawn_program(&catalog::memrw()), 38.0),
        (sim.spawn_program(&catalog::aluadd()), 50.0),
        (sim.spawn_program(&catalog::pushpop()), 47.0),
    ];
    sim.run_for(SimDuration::from_secs(20));
    for (id, expected) in expectations {
        let p = sim.system().task(id).profile();
        let err = (p.0 - expected).abs() / expected;
        assert!(err < 0.10, "task {id:?}: profile {p:?} vs {expected} W");
    }
}

/// The scheduler invariants hold through a long mixed run with
/// migrations, blocking, completions, and respawns.
#[test]
fn scheduler_invariants_hold_under_churn() {
    let cfg = SimConfig::xseries445()
        .smt(true)
        .energy_aware(true)
        .seed(21);
    let mut sim = Simulation::new(cfg);
    // A churny workload: interactive + short tasks + hot hogs.
    sim.spawn_mix(&[catalog::bash(), catalog::sshd()], 4);
    let short = catalog::aluadd().with_total_work(1_000_000_000);
    sim.spawn_mix(&[short], 6);
    sim.spawn_mix(&[catalog::bitcnts()], 2);
    for _ in 0..40 {
        sim.run_for(SimDuration::from_millis(500));
        sim.system().validate();
    }
    let report = sim.report();
    assert!(report.completions > 10, "short tasks kept completing");
    assert!(report.instructions_retired > 0);
}

/// Whole-stack determinism: identical configs produce identical traces.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let cfg = SimConfig::xseries445()
            .smt(true)
            .energy_aware(true)
            .trace_thermal(SimDuration::from_secs(1))
            .seed(12345);
        let mut sim = Simulation::new(cfg);
        sim.spawn_mix(&section61_mix(), 2);
        sim.run_for(SimDuration::from_secs(60));
        (
            sim.report().instructions_retired,
            sim.report().migrations,
            sim.thermal_trace().to_csv(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// The public facade exposes every layer: a user can reach topology,
/// counters, thermal, sched, core, workloads, and sim types.
#[test]
fn facade_exposes_all_layers() {
    let topo = ebs::topology::Topology::xseries445(false);
    assert_eq!(topo.n_cpus(), 8);
    let model = ebs::counters::EnergyModel::ground_truth_weights();
    let rates = ebs::counters::EventRates::builder()
        .uops_retired(1.0)
        .build();
    assert!(model.power_for_rates(&rates, 2.2e9).0 > 0.0);
    let rc = ebs::thermal::RcThermalModel::reference();
    assert!(rc.max_power_for_limit(ebs::units::Celsius(38.0)).0 > 0.0);
    let sys = ebs::sched::System::new(topo);
    assert_eq!(sys.n_tasks(), 0);
    let _ = ebs::core::PlacementTable::new(Watts(30.0));
    assert_eq!(ebs::workloads::section61_mix().len(), 6);
    let _ = CpuId(0);
}
