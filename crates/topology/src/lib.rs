//! CPU topology and hierarchical scheduler domains.
//!
//! Linux represents a machine's CPU topology to the scheduler as a
//! per-CPU stack of *scheduler domains* (paper Section 4.1, Fig. 1).
//! A domain spans a set of CPUs and is partitioned into *CPU groups*;
//! balancing within a domain moves tasks between its groups, and the
//! higher the level, the costlier the migrations. The paper's testbed,
//! an IBM xSeries 445, has three levels: SMT siblings on one physical
//! processor, physical processors on one NUMA node, and the two nodes.
//!
//! The energy-aware policies consult the same hierarchy: energy
//! balancing is *skipped* in domains whose CPUs share chip power (SMT
//! siblings, flagged [`DomainFlags::share_cpu_power`]), and hot-task
//! migration searches for a destination bottom-up so that migrations
//! stay as cheap as possible.
//!
//! # Examples
//!
//! ```
//! use ebs_topology::Topology;
//!
//! let topo = Topology::xseries445(true);
//! assert_eq!(topo.n_cpus(), 16);
//! // The paper: "CPU 0 is the sibling of CPU 8".
//! let sib = topo.siblings(ebs_topology::CpuId(0));
//! assert_eq!(sib, vec![ebs_topology::CpuId(8)]);
//! // Three domain levels per CPU: SMT, node, top.
//! assert_eq!(topo.domains(ebs_topology::CpuId(0)).len(), 3);
//! ```

mod builder;
mod domain;
mod ids;
mod machine;

pub use builder::{TopologyBuilder, TopologyPreset};
pub use domain::{CpuGroup, DomainFlags, DomainLevel, GroupUnit, SchedDomain};
pub use ids::{ClassId, CoreId, CpuId, NodeId, PackageId};
pub use machine::Topology;
