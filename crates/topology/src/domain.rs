//! Scheduler domains and CPU groups.

use crate::ids::{CoreId, CpuId, NodeId, PackageId};
use ebs_units::SimDuration;

/// The level of a domain in the hierarchy, bottom-up.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DomainLevel {
    /// SMT siblings sharing one core's pipeline.
    Smt,
    /// Cores sharing one physical package (die + heat sink) — the
    /// extra hierarchy layer of the paper's Section 7 CMP extension.
    Core,
    /// Physical processors sharing one NUMA node.
    Node,
    /// All NUMA nodes of the system.
    Top,
}

impl DomainLevel {
    /// A human-readable name.
    pub const fn name(self) -> &'static str {
        match self {
            DomainLevel::Smt => "smt",
            DomainLevel::Core => "core",
            DomainLevel::Node => "node",
            DomainLevel::Top => "top",
        }
    }
}

/// Behavioural flags of a domain, mirroring Linux's `SD_*` flags where
/// relevant to the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DomainFlags {
    /// The domain's CPUs are hardware threads of one physical processor
    /// and share its power budget. The paper marks these domains so the
    /// scheduler *skips the energy balancing step* for them (Section
    /// 4.7) — moving heat between siblings cannot cool the package.
    pub share_cpu_power: bool,
    /// Balancing across this domain crosses a NUMA node boundary and
    /// breaks node affinity (Section 4.1).
    pub crosses_node: bool,
}

/// The topological unit a [`CpuGroup`] coincides with. Every group the
/// generated hierarchies produce *is* exactly one hardware unit — a
/// single logical CPU (SMT level), a core (core level), a package
/// (node level), or a NUMA node (top level) — so consumers maintaining
/// per-unit aggregate tables (the scheduler's incremental load/power
/// sums) can map a group to its table slot in O(1) instead of scanning
/// the group's CPUs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GroupUnit {
    /// The group is a single logical CPU.
    Cpu(CpuId),
    /// The group spans one core's hardware threads.
    Core(CoreId),
    /// The group spans one physical package.
    Package(PackageId),
    /// The group spans one NUMA node.
    Node(NodeId),
}

/// A set of CPUs forming one balancing unit inside a domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CpuGroup {
    cpus: Vec<CpuId>,
    unit: Option<GroupUnit>,
}

impl CpuGroup {
    /// Creates a group over the given CPUs, with no unit tag (aggregate
    /// consumers fall back to scanning such groups).
    ///
    /// # Panics
    ///
    /// Panics if the group is empty.
    pub fn new(cpus: Vec<CpuId>) -> Self {
        assert!(!cpus.is_empty(), "CPU group must not be empty");
        CpuGroup { cpus, unit: None }
    }

    /// Creates a group tagged with the hardware unit it spans. The
    /// caller guarantees the CPU list is exactly that unit's CPUs (the
    /// generated hierarchies construct groups from the unit listings,
    /// so this holds by construction).
    pub fn with_unit(cpus: Vec<CpuId>, unit: GroupUnit) -> Self {
        let mut g = CpuGroup::new(cpus);
        g.unit = Some(unit);
        g
    }

    /// The hardware unit this group coincides with, if tagged.
    pub fn unit(&self) -> Option<GroupUnit> {
        self.unit
    }

    /// The group's CPUs.
    pub fn cpus(&self) -> &[CpuId] {
        &self.cpus
    }

    /// Whether the group contains `cpu`.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.cpus.contains(&cpu)
    }

    /// Number of CPUs in the group.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Whether the group is empty (never true for constructed groups).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }
}

/// One scheduler domain: a span of CPUs partitioned into groups.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchedDomain {
    level: DomainLevel,
    flags: DomainFlags,
    groups: Vec<CpuGroup>,
}

impl SchedDomain {
    /// Creates a domain from its groups.
    ///
    /// # Panics
    ///
    /// Panics if there are no groups or a CPU appears in two groups.
    pub fn new(level: DomainLevel, flags: DomainFlags, groups: Vec<CpuGroup>) -> Self {
        assert!(!groups.is_empty(), "domain must have at least one group");
        let mut seen: Vec<CpuId> = Vec::new();
        for g in &groups {
            for &c in g.cpus() {
                assert!(!seen.contains(&c), "{c} appears in two groups");
                seen.push(c);
            }
        }
        SchedDomain {
            level,
            flags,
            groups,
        }
    }

    /// The domain's level.
    pub fn level(&self) -> DomainLevel {
        self.level
    }

    /// The domain's flags.
    pub fn flags(&self) -> DomainFlags {
        self.flags
    }

    /// The domain's groups.
    pub fn groups(&self) -> &[CpuGroup] {
        &self.groups
    }

    /// All CPUs spanned by the domain, in group order.
    pub fn span(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.groups.iter().flat_map(|g| g.cpus().iter().copied())
    }

    /// Whether the domain's span contains `cpu`.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.groups.iter().any(|g| g.contains(cpu))
    }

    /// Index of the group containing `cpu`, if any — the *local group*
    /// from that CPU's perspective.
    pub fn local_group_index(&self, cpu: CpuId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(cpu))
    }

    /// The balancing interval for this domain level: higher levels
    /// balance less often because their migrations are costlier
    /// (Linux scales the interval with the level; we follow suit).
    pub fn balance_interval(&self) -> SimDuration {
        match self.level {
            DomainLevel::Smt => SimDuration::from_millis(64),
            DomainLevel::Core => SimDuration::from_millis(96),
            DomainLevel::Node => SimDuration::from_millis(128),
            DomainLevel::Top => SimDuration::from_millis(256),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpus(ids: &[usize]) -> Vec<CpuId> {
        ids.iter().map(|&i| CpuId(i)).collect()
    }

    #[test]
    fn group_membership() {
        let g = CpuGroup::new(cpus(&[0, 8]));
        assert!(g.contains(CpuId(0)));
        assert!(g.contains(CpuId(8)));
        assert!(!g.contains(CpuId(1)));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_group_rejected() {
        let _ = CpuGroup::new(vec![]);
    }

    #[test]
    fn unit_tags_round_trip() {
        use crate::ids::PackageId;
        assert_eq!(CpuGroup::new(cpus(&[0, 1])).unit(), None);
        let g = CpuGroup::with_unit(cpus(&[0, 1]), GroupUnit::Package(PackageId(3)));
        assert_eq!(g.unit(), Some(GroupUnit::Package(PackageId(3))));
        assert_eq!(g.cpus(), cpus(&[0, 1]).as_slice());
    }

    #[test]
    fn domain_span_and_local_group() {
        let d = SchedDomain::new(
            DomainLevel::Node,
            DomainFlags::default(),
            vec![CpuGroup::new(cpus(&[0, 8])), CpuGroup::new(cpus(&[1, 9]))],
        );
        assert_eq!(d.span().collect::<Vec<_>>(), cpus(&[0, 8, 1, 9]));
        assert_eq!(d.local_group_index(CpuId(9)), Some(1));
        assert_eq!(d.local_group_index(CpuId(2)), None);
        assert!(d.contains(CpuId(8)));
        assert!(!d.contains(CpuId(4)));
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn overlapping_groups_rejected() {
        let _ = SchedDomain::new(
            DomainLevel::Top,
            DomainFlags::default(),
            vec![CpuGroup::new(cpus(&[0, 1])), CpuGroup::new(cpus(&[1, 2]))],
        );
    }

    #[test]
    fn balance_interval_grows_with_level() {
        let mk = |level| {
            SchedDomain::new(
                level,
                DomainFlags::default(),
                vec![CpuGroup::new(cpus(&[0]))],
            )
        };
        assert!(mk(DomainLevel::Smt).balance_interval() < mk(DomainLevel::Core).balance_interval());
        assert!(
            mk(DomainLevel::Core).balance_interval() < mk(DomainLevel::Node).balance_interval()
        );
        assert!(mk(DomainLevel::Node).balance_interval() < mk(DomainLevel::Top).balance_interval());
    }

    #[test]
    fn level_names() {
        assert_eq!(DomainLevel::Smt.name(), "smt");
        assert_eq!(DomainLevel::Core.name(), "core");
        assert_eq!(DomainLevel::Node.name(), "node");
        assert_eq!(DomainLevel::Top.name(), "top");
    }
}
