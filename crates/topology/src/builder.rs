//! Construction of arbitrary machine shapes.
//!
//! The paper evaluates on exactly one machine — the 8-way xSeries 445.
//! Scenario sweeps need machines of many shapes, so [`TopologyBuilder`]
//! assembles any `nodes × packages × cores × SMT` box (the domain
//! hierarchy is generated, not tabled), and [`TopologyPreset`] names a
//! ladder of reference shapes from a 2-package workstation to a
//! 64-package rack, with the paper's testbed as one rung.

use crate::machine::Topology;

/// Fluent constructor for arbitrary machine shapes.
///
/// # Examples
///
/// ```
/// use ebs_topology::TopologyBuilder;
///
/// // 4 NUMA nodes of 4 dual-core packages, SMT off: 32 CPUs.
/// let topo = TopologyBuilder::new()
///     .nodes(4)
///     .packages_per_node(4)
///     .cores_per_package(2)
///     .threads_per_core(1)
///     .build();
/// assert_eq!(topo.n_cpus(), 32);
/// assert_eq!(topo.n_packages(), 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyBuilder {
    nodes: usize,
    packages_per_node: usize,
    cores_per_package: usize,
    threads_per_core: usize,
    perf_cores_per_package: usize,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder::new()
    }
}

impl TopologyBuilder {
    /// Starts from the smallest machine: 1 node × 1 package × 1 core
    /// × 1 thread.
    pub const fn new() -> Self {
        TopologyBuilder {
            nodes: 1,
            packages_per_node: 1,
            cores_per_package: 1,
            threads_per_core: 1,
            perf_cores_per_package: 0,
        }
    }

    /// Sets the NUMA node count.
    pub const fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    /// Sets the physical packages per node.
    pub const fn packages_per_node(mut self, n: usize) -> Self {
        self.packages_per_node = n;
        self
    }

    /// Sets the cores per package (1 = the paper's machine).
    pub const fn cores_per_package(mut self, n: usize) -> Self {
        self.cores_per_package = n;
        self
    }

    /// Sets the hardware threads per core (1 = SMT off).
    pub const fn threads_per_core(mut self, n: usize) -> Self {
        self.threads_per_core = n;
        self
    }

    /// Convenience toggle for two-way SMT.
    pub const fn smt(self, on: bool) -> Self {
        self.threads_per_core(if on { 2 } else { 1 })
    }

    /// Makes the shape hybrid: the leading `n` cores of every package
    /// become class 0 (performance), the rest class 1 (efficiency).
    /// `0` (the default) keeps the machine homogeneous.
    pub const fn perf_cores_per_package(mut self, n: usize) -> Self {
        self.perf_cores_per_package = n;
        self
    }

    /// NUMA nodes of the shape.
    pub const fn n_nodes(&self) -> usize {
        self.nodes
    }

    /// Packages per node of the shape.
    pub const fn n_packages_per_node(&self) -> usize {
        self.packages_per_node
    }

    /// Cores per package of the shape.
    pub const fn n_cores_per_package(&self) -> usize {
        self.cores_per_package
    }

    /// Threads per core of the shape.
    pub const fn n_threads_per_core(&self) -> usize {
        self.threads_per_core
    }

    /// Performance cores leading each package (0 = homogeneous).
    pub const fn n_perf_cores_per_package(&self) -> usize {
        self.perf_cores_per_package
    }

    /// Whether the shape mixes core classes.
    pub const fn is_hybrid(&self) -> bool {
        self.perf_cores_per_package > 0
    }

    /// Total physical packages.
    pub const fn n_packages(&self) -> usize {
        self.nodes * self.packages_per_node
    }

    /// Total cores.
    pub const fn n_cores(&self) -> usize {
        self.n_packages() * self.cores_per_package
    }

    /// Total logical CPUs.
    pub const fn n_cpus(&self) -> usize {
        self.n_packages() * self.cores_per_package * self.threads_per_core
    }

    /// Builds the topology (domain hierarchy included).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn build(&self) -> Topology {
        Topology::build_hybrid(
            self.nodes,
            self.packages_per_node,
            self.cores_per_package,
            self.threads_per_core,
            self.perf_cores_per_package,
        )
    }
}

/// Named reference shapes for scenario sweeps, ordered by package
/// count. The paper's xSeries 445 testbed is one preset among peers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyPreset {
    /// A 2-package dual-core SMT workstation (8 CPUs).
    Dual,
    /// The paper's testbed: 2 NUMA nodes × 4 single-core packages
    /// (8 packages; 8 or 16 CPUs depending on SMT).
    XSeries445 {
        /// Whether the hyperthreads are enabled.
        smt: bool,
    },
    /// 4 NUMA nodes × 4 dual-core packages, SMT off (16 packages,
    /// 32 CPUs).
    Numa16,
    /// 4 NUMA nodes × 8 dual-core packages, SMT off (32 packages,
    /// 64 CPUs).
    Numa32,
    /// 8 NUMA nodes × 8 dual-core SMT packages (64 packages,
    /// 256 CPUs).
    Numa64,
    /// A hybrid desktop: 1 package of 4 performance + 4 efficiency
    /// cores, SMT off (8 CPUs, 2 classes).
    Hybrid8,
    /// A big.LITTLE-style part: 2 packages of 4 performance + 4
    /// efficiency cores each, SMT off (16 CPUs, 2 classes).
    BigLittle16,
    /// A hybrid rack building block: 4 NUMA nodes × 2 packages of
    /// 4 performance + 4 efficiency cores, SMT off (64 CPUs,
    /// 2 classes).
    Hybrid64,
}

impl TopologyPreset {
    /// Every preset, smallest first (xSeries with SMT off, matching
    /// the paper's main evaluation).
    pub fn all() -> Vec<TopologyPreset> {
        vec![
            TopologyPreset::Dual,
            TopologyPreset::XSeries445 { smt: false },
            TopologyPreset::Numa16,
            TopologyPreset::Numa32,
            TopologyPreset::Numa64,
        ]
    }

    /// The hybrid (two-class) presets, smallest first.
    pub fn hybrids() -> Vec<TopologyPreset> {
        vec![
            TopologyPreset::Hybrid8,
            TopologyPreset::BigLittle16,
            TopologyPreset::Hybrid64,
        ]
    }

    /// A short name for tables and CSV rows.
    pub const fn name(self) -> &'static str {
        match self {
            TopologyPreset::Dual => "dual2",
            TopologyPreset::XSeries445 { smt: false } => "xseries445",
            TopologyPreset::XSeries445 { smt: true } => "xseries445-smt",
            TopologyPreset::Numa16 => "numa16",
            TopologyPreset::Numa32 => "numa32",
            TopologyPreset::Numa64 => "numa64",
            TopologyPreset::Hybrid8 => "hybrid8",
            TopologyPreset::BigLittle16 => "biglittle16",
            TopologyPreset::Hybrid64 => "hybrid64",
        }
    }

    /// The preset's shape as a builder (tweak further if needed).
    pub const fn builder(self) -> TopologyBuilder {
        let b = TopologyBuilder::new();
        match self {
            TopologyPreset::Dual => b
                .nodes(1)
                .packages_per_node(2)
                .cores_per_package(2)
                .threads_per_core(2),
            TopologyPreset::XSeries445 { smt } => b
                .nodes(2)
                .packages_per_node(4)
                .cores_per_package(1)
                .smt(smt),
            TopologyPreset::Numa16 => b
                .nodes(4)
                .packages_per_node(4)
                .cores_per_package(2)
                .threads_per_core(1),
            TopologyPreset::Numa32 => b
                .nodes(4)
                .packages_per_node(8)
                .cores_per_package(2)
                .threads_per_core(1),
            TopologyPreset::Numa64 => b
                .nodes(8)
                .packages_per_node(8)
                .cores_per_package(2)
                .threads_per_core(2),
            TopologyPreset::Hybrid8 => b
                .nodes(1)
                .packages_per_node(1)
                .cores_per_package(8)
                .threads_per_core(1)
                .perf_cores_per_package(4),
            TopologyPreset::BigLittle16 => b
                .nodes(1)
                .packages_per_node(2)
                .cores_per_package(8)
                .threads_per_core(1)
                .perf_cores_per_package(4),
            TopologyPreset::Hybrid64 => b
                .nodes(4)
                .packages_per_node(2)
                .cores_per_package(8)
                .threads_per_core(1)
                .perf_cores_per_package(4),
        }
    }

    /// Builds the preset's topology.
    pub fn build(self) -> Topology {
        self.builder().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CpuId;

    #[test]
    fn builder_defaults_to_single_cpu() {
        let b = TopologyBuilder::new();
        assert_eq!(b.n_cpus(), 1);
        assert_eq!(b.build().n_cpus(), 1);
    }

    #[test]
    fn builder_dimensions_round_trip() {
        let b = TopologyBuilder::new()
            .nodes(3)
            .packages_per_node(2)
            .cores_per_package(4)
            .threads_per_core(2);
        assert_eq!(b.n_nodes(), 3);
        assert_eq!(b.n_packages_per_node(), 2);
        assert_eq!(b.n_cores_per_package(), 4);
        assert_eq!(b.n_threads_per_core(), 2);
        assert_eq!(b.n_packages(), 6);
        assert_eq!(b.n_cpus(), 48);
        let t = b.build();
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.n_packages(), 6);
        assert_eq!(t.n_cores(), 24);
        assert_eq!(t.n_cpus(), 48);
    }

    #[test]
    fn smt_toggle_sets_thread_count() {
        assert_eq!(TopologyBuilder::new().smt(true).n_threads_per_core(), 2);
        assert_eq!(TopologyBuilder::new().smt(false).n_threads_per_core(), 1);
    }

    #[test]
    fn xseries_preset_matches_legacy_constructor() {
        for smt in [false, true] {
            let preset = TopologyPreset::XSeries445 { smt }.build();
            let legacy = Topology::xseries445(smt);
            assert_eq!(preset.n_cpus(), legacy.n_cpus());
            assert_eq!(preset.n_packages(), legacy.n_packages());
            assert_eq!(preset.n_nodes(), legacy.n_nodes());
            for cpu in preset.cpu_ids() {
                assert_eq!(preset.domains(cpu), legacy.domains(cpu));
            }
        }
    }

    #[test]
    fn preset_package_ladder() {
        let counts: Vec<usize> = TopologyPreset::all()
            .into_iter()
            .map(|p| p.build().n_packages())
            .collect();
        assert_eq!(counts, vec![2, 8, 16, 32, 64]);
    }

    #[test]
    fn preset_cpu_counts() {
        assert_eq!(TopologyPreset::Dual.build().n_cpus(), 8);
        assert_eq!(TopologyPreset::Numa16.build().n_cpus(), 32);
        assert_eq!(TopologyPreset::Numa32.build().n_cpus(), 64);
        assert_eq!(TopologyPreset::Numa64.build().n_cpus(), 256);
    }

    #[test]
    fn preset_names_are_distinct() {
        let names: Vec<&str> = TopologyPreset::all()
            .into_iter()
            .map(|p| p.name())
            .collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn generated_hierarchies_are_complete() {
        for preset in TopologyPreset::all() {
            let t = preset.build();
            for cpu in t.cpu_ids() {
                let stack = t.domains(cpu);
                assert!(!stack.is_empty(), "{}: empty stack", preset.name());
                let top: Vec<CpuId> = stack.last().unwrap().span().collect();
                assert_eq!(top.len(), t.n_cpus(), "{}: top span", preset.name());
            }
        }
    }
}
