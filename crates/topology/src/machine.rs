//! Machine topology: nodes, packages, cores, logical CPUs, and the
//! per-CPU domain hierarchy built from them.

use crate::domain::{CpuGroup, DomainFlags, DomainLevel, GroupUnit, SchedDomain};
use crate::ids::{ClassId, CoreId, CpuId, NodeId, PackageId};

/// Static description of one logical CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CpuInfo {
    core: CoreId,
    package: PackageId,
    node: NodeId,
    /// Hardware-thread index within the core.
    thread: usize,
    /// Core class (0 = performance / the only class). A per-core
    /// property: SMT siblings always share it.
    class: ClassId,
}

/// A machine's CPU topology and scheduler-domain hierarchy.
///
/// Logical CPU numbering follows the paper's testbed: thread `t` of
/// global core `g` is CPU `g + t * n_cores`, so SMT siblings "differ
/// in the most significant bit". On the paper's machine every package
/// has exactly one core, so cores and packages coincide; the CMP
/// builder ([`Topology::build_cmp`]) adds the extra *core* layer the
/// paper's Section 7 describes ("extending energy-aware scheduling for
/// use on a CMP is a matter of adding an additional layer to the
/// domain hierarchy").
#[derive(Clone, Debug)]
pub struct Topology {
    n_nodes: usize,
    packages_per_node: usize,
    cores_per_package: usize,
    threads_per_core: usize,
    /// Leading cores of each package assigned to class 0; 0 means the
    /// whole machine is a single class.
    perf_cores_per_package: usize,
    cpus: Vec<CpuInfo>,
    /// Per-CPU domain stacks, bottom-up.
    domains: Vec<Vec<SchedDomain>>,
}

impl Topology {
    /// Builds a single-core-per-package topology (the paper's machine
    /// shape).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn build(n_nodes: usize, packages_per_node: usize, threads_per_package: usize) -> Self {
        Topology::build_cmp(n_nodes, packages_per_node, 1, threads_per_package)
    }

    /// Builds a chip-multiprocessor topology: each package holds
    /// `cores_per_package` cores of `threads_per_core` hardware
    /// threads.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn build_cmp(
        n_nodes: usize,
        packages_per_node: usize,
        cores_per_package: usize,
        threads_per_core: usize,
    ) -> Self {
        Topology::build_hybrid(
            n_nodes,
            packages_per_node,
            cores_per_package,
            threads_per_core,
            0,
        )
    }

    /// Builds a (possibly hybrid) CMP topology. The leading
    /// `perf_cores_per_package` cores of every package belong to class
    /// 0 (performance) and the remainder to class 1 (efficiency);
    /// `perf_cores_per_package == 0` builds a homogeneous single-class
    /// machine. The class layout is uniform across packages so a
    /// per-package shard of the machine sees the same shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or if
    /// `perf_cores_per_package >= cores_per_package` would leave no
    /// efficiency cores (a hybrid shape needs both classes).
    pub fn build_hybrid(
        n_nodes: usize,
        packages_per_node: usize,
        cores_per_package: usize,
        threads_per_core: usize,
        perf_cores_per_package: usize,
    ) -> Self {
        assert!(n_nodes > 0, "need at least one node");
        assert!(packages_per_node > 0, "need at least one package per node");
        assert!(cores_per_package > 0, "need at least one core per package");
        assert!(threads_per_core > 0, "need at least one thread per core");
        assert!(
            perf_cores_per_package < cores_per_package,
            "a hybrid package needs at least one efficiency core"
        );
        let n_packages = n_nodes * packages_per_node;
        let n_cores = n_packages * cores_per_package;
        let n_cpus = n_cores * threads_per_core;

        let mut cpus = vec![
            CpuInfo {
                core: CoreId(0),
                package: PackageId(0),
                node: NodeId(0),
                thread: 0,
                class: ClassId(0),
            };
            n_cpus
        ];
        for core in 0..n_cores {
            let pkg = core / cores_per_package;
            let in_pkg = core % cores_per_package;
            let class = if perf_cores_per_package == 0 || in_pkg < perf_cores_per_package {
                ClassId(0)
            } else {
                ClassId(1)
            };
            for thread in 0..threads_per_core {
                let cpu = core + thread * n_cores;
                cpus[cpu] = CpuInfo {
                    core: CoreId(core),
                    package: PackageId(pkg),
                    node: NodeId(pkg / packages_per_node),
                    thread,
                    class,
                };
            }
        }

        let mut topo = Topology {
            n_nodes,
            packages_per_node,
            cores_per_package,
            threads_per_core,
            perf_cores_per_package,
            cpus,
            domains: Vec::new(),
        };
        topo.domains = (0..n_cpus).map(|c| topo.build_domains(CpuId(c))).collect();
        topo
    }

    /// The paper's testbed: an IBM xSeries 445 with two NUMA nodes of
    /// four two-way multithreaded Pentium 4 Xeon processors. With
    /// `smt == false` the hyperthreads are disabled, leaving 8 CPUs.
    /// Equivalent to [`crate::TopologyPreset::XSeries445`].
    pub fn xseries445(smt: bool) -> Self {
        Topology::build(2, 4, if smt { 2 } else { 1 })
    }

    /// Starts a [`crate::TopologyBuilder`] for an arbitrary shape.
    pub fn builder() -> crate::TopologyBuilder {
        crate::TopologyBuilder::new()
    }

    /// Number of logical CPUs.
    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of physical packages.
    pub fn n_packages(&self) -> usize {
        self.n_nodes * self.packages_per_node
    }

    /// Number of cores across the machine.
    pub fn n_cores(&self) -> usize {
        self.n_packages() * self.cores_per_package
    }

    /// Number of NUMA nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Cores per package (1 = the paper's machine).
    pub fn cores_per_package(&self) -> usize {
        self.cores_per_package
    }

    /// Hardware threads per core (1 = SMT disabled).
    pub fn threads_per_core(&self) -> usize {
        self.threads_per_core
    }

    /// Hardware threads per package.
    pub fn threads_per_package(&self) -> usize {
        self.cores_per_package * self.threads_per_core
    }

    /// Whether SMT is enabled.
    pub fn smt_enabled(&self) -> bool {
        self.threads_per_core > 1
    }

    /// Number of distinct core classes (1 = homogeneous).
    pub fn n_classes(&self) -> usize {
        if self.perf_cores_per_package == 0 {
            1
        } else {
            2
        }
    }

    /// Whether the machine mixes core classes.
    pub fn is_hybrid(&self) -> bool {
        self.n_classes() > 1
    }

    /// Performance (class 0) cores leading each package; 0 on
    /// homogeneous machines.
    pub fn perf_cores_per_package(&self) -> usize {
        self.perf_cores_per_package
    }

    /// The core class of a logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn class_of(&self, cpu: CpuId) -> ClassId {
        self.cpus[cpu.0].class
    }

    /// The core class of a core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn class_of_core(&self, core: CoreId) -> ClassId {
        let in_pkg = core.0 % self.cores_per_package;
        if self.perf_cores_per_package == 0 || in_pkg < self.perf_cores_per_package {
            ClassId(0)
        } else {
            ClassId(1)
        }
    }

    /// Whether two CPUs run on cores of the same class.
    pub fn same_class(&self, a: CpuId, b: CpuId) -> bool {
        self.class_of(a) == self.class_of(b)
    }

    /// All logical CPU ids.
    pub fn cpu_ids(&self) -> impl Iterator<Item = CpuId> {
        (0..self.n_cpus()).map(CpuId)
    }

    /// The core of a logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn core_of(&self, cpu: CpuId) -> CoreId {
        self.cpus[cpu.0].core
    }

    /// The physical package of a logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn package_of(&self, cpu: CpuId) -> PackageId {
        self.cpus[cpu.0].package
    }

    /// The NUMA node of a logical CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn node_of(&self, cpu: CpuId) -> NodeId {
        self.cpus[cpu.0].node
    }

    /// The logical CPUs of a core, in thread order.
    pub fn cpus_of_core(&self, core: CoreId) -> Vec<CpuId> {
        (0..self.threads_per_core)
            .map(|t| CpuId(core.0 + t * self.n_cores()))
            .collect()
    }

    /// The cores of a package.
    pub fn cores_of_package(&self, pkg: PackageId) -> Vec<CoreId> {
        (0..self.cores_per_package)
            .map(|i| CoreId(pkg.0 * self.cores_per_package + i))
            .collect()
    }

    /// The logical CPUs of a package, core-major order.
    pub fn cpus_of_package(&self, pkg: PackageId) -> Vec<CpuId> {
        self.cores_of_package(pkg)
            .into_iter()
            .flat_map(|c| self.cpus_of_core(c))
            .collect()
    }

    /// The logical CPUs of a node.
    pub fn cpus_of_node(&self, node: NodeId) -> Vec<CpuId> {
        self.cpu_ids()
            .filter(|&c| self.node_of(c) == node)
            .collect()
    }

    /// The SMT sibling threads of `cpu` (same core, excluding `cpu`).
    pub fn siblings(&self, cpu: CpuId) -> Vec<CpuId> {
        self.cpus_of_core(self.core_of(cpu))
            .into_iter()
            .filter(|&c| c != cpu)
            .collect()
    }

    /// Whether two CPUs are hardware threads of the same core.
    pub fn same_core(&self, a: CpuId, b: CpuId) -> bool {
        self.core_of(a) == self.core_of(b)
    }

    /// Whether two CPUs share one physical package.
    pub fn same_package(&self, a: CpuId, b: CpuId) -> bool {
        self.package_of(a) == self.package_of(b)
    }

    /// Whether two CPUs reside on the same NUMA node.
    pub fn same_node(&self, a: CpuId, b: CpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The domain stack of `cpu`, bottom-up (cheapest balancing first).
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn domains(&self, cpu: CpuId) -> &[SchedDomain] {
        &self.domains[cpu.0]
    }

    fn build_domains(&self, cpu: CpuId) -> Vec<SchedDomain> {
        // Every group is tagged with the hardware unit it spans, so the
        // incremental aggregate tree can map groups to per-unit sums in
        // O(1) (see `GroupUnit`).
        let mut out = Vec::new();
        // SMT level: groups are the hardware threads of this core.
        if self.threads_per_core > 1 {
            let groups = self
                .cpus_of_core(self.core_of(cpu))
                .into_iter()
                .map(|c| CpuGroup::with_unit(vec![c], GroupUnit::Cpu(c)))
                .collect();
            out.push(SchedDomain::new(
                DomainLevel::Smt,
                DomainFlags {
                    share_cpu_power: true,
                    crosses_node: false,
                },
                groups,
            ));
        }
        // Core level: groups are the cores of this package. Cores have
        // their own pipelines and (transiently) their own temperatures,
        // so energy balancing *does* run here (Section 7).
        if self.cores_per_package > 1 {
            let groups = self
                .cores_of_package(self.package_of(cpu))
                .into_iter()
                .map(|c| CpuGroup::with_unit(self.cpus_of_core(c), GroupUnit::Core(c)))
                .collect();
            out.push(SchedDomain::new(
                DomainLevel::Core,
                DomainFlags::default(),
                groups,
            ));
        }
        // Node level: groups are the packages of this CPU's node.
        if self.packages_per_node > 1 {
            let node = self.node_of(cpu);
            let groups = (0..self.packages_per_node)
                .map(|i| {
                    let pkg = PackageId(node.0 * self.packages_per_node + i);
                    CpuGroup::with_unit(self.cpus_of_package(pkg), GroupUnit::Package(pkg))
                })
                .collect();
            out.push(SchedDomain::new(
                DomainLevel::Node,
                DomainFlags::default(),
                groups,
            ));
        }
        // Top level: groups are the nodes.
        if self.n_nodes > 1 {
            let groups = (0..self.n_nodes)
                .map(|n| {
                    CpuGroup::with_unit(self.cpus_of_node(NodeId(n)), GroupUnit::Node(NodeId(n)))
                })
                .collect();
            out.push(SchedDomain::new(
                DomainLevel::Top,
                DomainFlags {
                    share_cpu_power: false,
                    crosses_node: true,
                },
                groups,
            ));
        }
        // Degenerate single-core single-node machines still need one
        // domain so the balancer has something to walk.
        if out.is_empty() {
            out.push(SchedDomain::new(
                DomainLevel::Top,
                DomainFlags::default(),
                vec![CpuGroup::with_unit(vec![cpu], GroupUnit::Cpu(cpu))],
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xseries_smt_shape() {
        let t = Topology::xseries445(true);
        assert_eq!(t.n_cpus(), 16);
        assert_eq!(t.n_packages(), 8);
        assert_eq!(t.n_cores(), 8);
        assert_eq!(t.n_nodes(), 2);
        assert!(t.smt_enabled());
    }

    #[test]
    fn xseries_no_smt_shape() {
        let t = Topology::xseries445(false);
        assert_eq!(t.n_cpus(), 8);
        assert_eq!(t.n_packages(), 8);
        assert!(!t.smt_enabled());
        // No SMT level in the hierarchy.
        let levels: Vec<_> = t.domains(CpuId(0)).iter().map(|d| d.level()).collect();
        assert_eq!(levels, vec![DomainLevel::Node, DomainLevel::Top]);
    }

    #[test]
    fn paper_sibling_numbering() {
        // "CPU 0 is the sibling of CPU 8, CPU 1 is the sibling of CPU 9,
        // and so forth."
        let t = Topology::xseries445(true);
        for i in 0..8 {
            assert_eq!(t.siblings(CpuId(i)), vec![CpuId(i + 8)]);
            assert_eq!(t.siblings(CpuId(i + 8)), vec![CpuId(i)]);
            assert!(t.same_package(CpuId(i), CpuId(i + 8)));
            assert!(t.same_core(CpuId(i), CpuId(i + 8)));
        }
        assert!(!t.same_package(CpuId(0), CpuId(1)));
    }

    #[test]
    fn paper_node_assignment() {
        // "CPUs 0 to 3 (with their siblings 8 to 11) reside on node 0,
        // whereas CPUs 4 to 7 (with their siblings 12 to 15) reside on
        // node 1."
        let t = Topology::xseries445(true);
        for i in 0..4 {
            assert_eq!(t.node_of(CpuId(i)), NodeId(0));
            assert_eq!(t.node_of(CpuId(i + 8)), NodeId(0));
        }
        for i in 4..8 {
            assert_eq!(t.node_of(CpuId(i)), NodeId(1));
            assert_eq!(t.node_of(CpuId(i + 8)), NodeId(1));
        }
    }

    #[test]
    fn three_level_hierarchy_with_smt() {
        let t = Topology::xseries445(true);
        let stack = t.domains(CpuId(0));
        let levels: Vec<_> = stack.iter().map(|d| d.level()).collect();
        assert_eq!(
            levels,
            vec![DomainLevel::Smt, DomainLevel::Node, DomainLevel::Top]
        );
        // The SMT domain spans exactly the two siblings and carries the
        // share-cpu-power flag the energy balancer checks.
        assert_eq!(
            stack[0].span().collect::<Vec<_>>(),
            vec![CpuId(0), CpuId(8)]
        );
        assert!(stack[0].flags().share_cpu_power);
        assert!(!stack[1].flags().share_cpu_power);
        assert!(stack[2].flags().crosses_node);
        // Node domain: 4 groups (packages), spanning 8 logical CPUs.
        assert_eq!(stack[1].groups().len(), 4);
        assert_eq!(stack[1].span().count(), 8);
        // Top domain: 2 groups (nodes), spanning all 16.
        assert_eq!(stack[2].groups().len(), 2);
        assert_eq!(stack[2].span().count(), 16);
    }

    #[test]
    fn cmp_adds_a_core_level() {
        // Section 7: a dual-core version of the testbed gets a fourth
        // hierarchy layer.
        let t = Topology::build_cmp(2, 4, 2, 2);
        assert_eq!(t.n_cpus(), 32);
        assert_eq!(t.n_cores(), 16);
        assert_eq!(t.n_packages(), 8);
        let stack = t.domains(CpuId(0));
        let levels: Vec<_> = stack.iter().map(|d| d.level()).collect();
        assert_eq!(
            levels,
            vec![
                DomainLevel::Smt,
                DomainLevel::Core,
                DomainLevel::Node,
                DomainLevel::Top
            ]
        );
        // The core level spans the package's 4 hardware threads,
        // grouped per core, and energy balancing is allowed there.
        assert_eq!(stack[1].span().count(), 4);
        assert_eq!(stack[1].groups().len(), 2);
        assert!(!stack[1].flags().share_cpu_power);
        // The SMT level still shares chip power.
        assert!(stack[0].flags().share_cpu_power);
    }

    #[test]
    fn cmp_core_and_package_relations() {
        let t = Topology::build_cmp(1, 2, 2, 2);
        // 8 CPUs: cores 0..4, packages 0..2. CPU = core + thread*4.
        assert_eq!(t.core_of(CpuId(0)), CoreId(0));
        assert_eq!(t.core_of(CpuId(4)), CoreId(0)); // Thread 1 of core 0.
        assert_eq!(t.core_of(CpuId(1)), CoreId(1));
        assert!(t.same_core(CpuId(0), CpuId(4)));
        assert!(!t.same_core(CpuId(0), CpuId(1)));
        // Cores 0 and 1 share package 0.
        assert!(t.same_package(CpuId(0), CpuId(1)));
        assert!(!t.same_package(CpuId(0), CpuId(2)));
        assert_eq!(t.cores_of_package(PackageId(1)), vec![CoreId(2), CoreId(3)]);
        assert_eq!(
            t.cpus_of_package(PackageId(0)),
            vec![CpuId(0), CpuId(4), CpuId(1), CpuId(5)]
        );
        assert_eq!(t.siblings(CpuId(1)), vec![CpuId(5)]);
    }

    #[test]
    fn every_domain_contains_its_cpu() {
        for topo in [
            Topology::xseries445(false),
            Topology::xseries445(true),
            Topology::build_cmp(2, 2, 2, 2),
        ] {
            for cpu in topo.cpu_ids() {
                for d in topo.domains(cpu) {
                    assert!(d.contains(cpu), "{cpu} missing from {:?}", d.level());
                    assert!(d.local_group_index(cpu).is_some());
                }
            }
        }
    }

    #[test]
    fn domain_spans_nest_upward() {
        for topo in [Topology::xseries445(true), Topology::build_cmp(2, 2, 4, 2)] {
            for cpu in topo.cpu_ids() {
                let stack = topo.domains(cpu);
                for pair in stack.windows(2) {
                    let lower: Vec<_> = pair[0].span().collect();
                    let upper: Vec<_> = pair[1].span().collect();
                    for c in &lower {
                        assert!(upper.contains(c), "span of lower level not nested");
                    }
                    assert!(lower.len() < upper.len());
                }
            }
        }
    }

    #[test]
    fn groups_partition_span() {
        for topo in [
            Topology::xseries445(false),
            Topology::xseries445(true),
            Topology::build_cmp(1, 2, 4, 2),
        ] {
            for cpu in topo.cpu_ids() {
                for d in topo.domains(cpu) {
                    let total: usize = d.groups().iter().map(|g| g.len()).sum();
                    assert_eq!(total, d.span().count());
                }
            }
        }
    }

    #[test]
    fn package_cpu_listing() {
        let t = Topology::xseries445(true);
        assert_eq!(t.cpus_of_package(PackageId(2)), vec![CpuId(2), CpuId(10)]);
        assert_eq!(
            t.cpus_of_node(NodeId(1)),
            vec![
                CpuId(4),
                CpuId(5),
                CpuId(6),
                CpuId(7),
                CpuId(12),
                CpuId(13),
                CpuId(14),
                CpuId(15)
            ]
        );
    }

    #[test]
    fn generated_groups_are_unit_tagged() {
        // Every group of a generated hierarchy names the hardware unit
        // it spans, and the tag's CPU listing is exactly the group's.
        for topo in [
            Topology::xseries445(true),
            Topology::xseries445(false),
            Topology::build_cmp(2, 2, 2, 2),
            Topology::build(1, 1, 1),
        ] {
            for cpu in topo.cpu_ids() {
                for d in topo.domains(cpu) {
                    for g in d.groups() {
                        let unit = g.unit().expect("generated groups are tagged");
                        let cpus = match unit {
                            GroupUnit::Cpu(c) => vec![c],
                            GroupUnit::Core(c) => topo.cpus_of_core(c),
                            GroupUnit::Package(p) => topo.cpus_of_package(p),
                            GroupUnit::Node(n) => topo.cpus_of_node(n),
                        };
                        assert_eq!(g.cpus(), cpus.as_slice(), "{:?} mistagged", d.level());
                    }
                }
            }
        }
    }

    #[test]
    fn single_cpu_machine_gets_degenerate_domain() {
        let t = Topology::build(1, 1, 1);
        assert_eq!(t.n_cpus(), 1);
        let stack = t.domains(CpuId(0));
        assert_eq!(stack.len(), 1);
        assert_eq!(stack[0].span().collect::<Vec<_>>(), vec![CpuId(0)]);
    }

    #[test]
    fn uma_smp_has_single_level() {
        // A 1-node 4-package machine without SMT: only the node level.
        let t = Topology::build(1, 4, 1);
        let stack = t.domains(CpuId(2));
        assert_eq!(stack.len(), 1);
        assert_eq!(stack[0].level(), DomainLevel::Node);
        assert_eq!(stack[0].groups().len(), 4);
    }

    #[test]
    fn single_package_cmp_has_core_level_only_plus_smt() {
        // One package with 4 dual-threaded cores: SMT + Core levels.
        let t = Topology::build_cmp(1, 1, 4, 2);
        let stack = t.domains(CpuId(0));
        let levels: Vec<_> = stack.iter().map(|d| d.level()).collect();
        assert_eq!(levels, vec![DomainLevel::Smt, DomainLevel::Core]);
        assert_eq!(stack[1].groups().len(), 4);
    }

    #[test]
    fn homogeneous_machines_are_single_class() {
        for topo in [
            Topology::xseries445(true),
            Topology::build_cmp(2, 2, 4, 2),
            Topology::build(1, 1, 1),
        ] {
            assert_eq!(topo.n_classes(), 1);
            assert!(!topo.is_hybrid());
            for cpu in topo.cpu_ids() {
                assert_eq!(topo.class_of(cpu), ClassId(0));
            }
        }
    }

    #[test]
    fn hybrid_class_layout_is_per_package_uniform() {
        // 2 packages x 8 cores, 4 performance + 4 efficiency, SMT on
        // the whole machine.
        let t = Topology::build_hybrid(1, 2, 8, 2, 4);
        assert_eq!(t.n_classes(), 2);
        assert!(t.is_hybrid());
        assert_eq!(t.perf_cores_per_package(), 4);
        for core in 0..t.n_cores() {
            let expect = if core % 8 < 4 { ClassId(0) } else { ClassId(1) };
            assert_eq!(t.class_of_core(CoreId(core)), expect, "core {core}");
            for cpu in t.cpus_of_core(CoreId(core)) {
                assert_eq!(t.class_of(cpu), expect, "{cpu}");
            }
        }
        // SMT siblings share a class by construction.
        for cpu in t.cpu_ids() {
            for sib in t.siblings(cpu) {
                assert!(t.same_class(cpu, sib));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one efficiency core")]
    fn all_perf_hybrid_rejected() {
        let _ = Topology::build_hybrid(1, 1, 4, 1, 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = Topology::build(0, 4, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Topology::build_cmp(1, 1, 0, 1);
    }
}
