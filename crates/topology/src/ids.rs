//! Identifier newtypes for logical CPUs, physical packages, and NUMA
//! nodes.

use core::fmt;

/// A logical CPU (hardware thread) identifier.
///
/// Numbering follows the paper's testbed convention: sibling hardware
/// threads differ in the most significant bit, i.e. on a 16-way system
/// CPU 0's sibling is CPU 8, CPU 1's is CPU 9, and so on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CpuId(pub usize);

/// A core identifier, global across the machine. On the paper's
/// single-core-per-package testbed cores and packages coincide; the
/// CMP extension (paper Section 7) separates them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(pub usize);

/// A physical processor (package/socket) identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PackageId(pub usize);

/// A NUMA node identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

/// A core-class identifier (heterogeneous/hybrid machines).
///
/// Class 0 is the performance class on hybrid shapes and the only
/// class on homogeneous ones; higher indices are progressively more
/// efficiency-oriented. The class is a per-*core* property: SMT
/// siblings always share their core's class.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClassId(pub usize);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for PackageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkg{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(CoreId(2).to_string(), "core2");
        assert_eq!(PackageId(1).to_string(), "pkg1");
        assert_eq!(NodeId(0).to_string(), "node0");
        assert_eq!(ClassId(1).to_string(), "class1");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CpuId(1) < CpuId(8));
        assert!(PackageId(0) < PackageId(7));
    }
}
