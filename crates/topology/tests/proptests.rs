//! Property-based tests: structural invariants of arbitrary machine
//! shapes.

use ebs_topology::{ClassId, CpuId, Topology, TopologyBuilder, TopologyPreset};
use proptest::prelude::*;

proptest! {
    /// Builder-generated machines are well-formed: the dimensions
    /// round-trip, and at every domain level of every CPU's stack the
    /// groups partition the span with the CPU in *exactly one* group.
    #[test]
    fn builder_domains_are_well_formed(
        nodes in 1usize..4,
        packages in 1usize..5,
        cores in 1usize..4,
        threads in 1usize..4,
    ) {
        let builder = TopologyBuilder::new()
            .nodes(nodes)
            .packages_per_node(packages)
            .cores_per_package(cores)
            .threads_per_core(threads);
        prop_assert_eq!(builder.n_cpus(), nodes * packages * cores * threads);
        let topo = builder.build();
        prop_assert_eq!(topo.n_cpus(), builder.n_cpus());
        prop_assert_eq!(topo.n_packages(), builder.n_packages());
        for cpu in topo.cpu_ids() {
            for d in topo.domains(cpu) {
                // Exactly one group holds the CPU...
                let holding = d.groups().iter().filter(|g| g.contains(cpu)).count();
                prop_assert_eq!(holding, 1, "cpu in {} groups", holding);
                prop_assert!(d.local_group_index(cpu).is_some());
                // ...no group is empty, and the groups partition the
                // span (sizes sum up and no CPU repeats).
                let mut span: Vec<CpuId> = Vec::new();
                for g in d.groups() {
                    prop_assert!(!g.is_empty());
                    span.extend_from_slice(g.cpus());
                }
                let len = span.len();
                span.sort_unstable();
                span.dedup();
                prop_assert_eq!(span.len(), len, "a CPU repeats across groups");
                prop_assert_eq!(len, d.span().count());
            }
        }
    }

    /// Every preset builds a well-formed machine whose top level spans
    /// every CPU (sampled alongside random shapes so the ladder stays
    /// covered as presets change).
    #[test]
    fn presets_are_well_formed(idx in 0usize..5) {
        let preset = TopologyPreset::all()[idx];
        let topo = preset.build();
        prop_assert_eq!(topo.n_cpus(), preset.builder().n_cpus());
        for cpu in topo.cpu_ids() {
            let stack = topo.domains(cpu);
            prop_assert!(!stack.is_empty());
            prop_assert!(stack.iter().all(|d| d.local_group_index(cpu).is_some()));
            if topo.n_cpus() > 1 {
                prop_assert_eq!(stack.last().unwrap().span().count(), topo.n_cpus());
            }
        }
    }

    /// For any machine shape: groups partition spans, spans nest
    /// strictly upward, and the top level spans the whole machine.
    #[test]
    fn domain_structure_invariants(
        nodes in 1usize..4,
        packages in 1usize..5,
        cores in 1usize..4,
        threads in 1usize..3,
    ) {
        let topo = Topology::build_cmp(nodes, packages, cores, threads);
        prop_assert_eq!(topo.n_cpus(), nodes * packages * cores * threads);
        for cpu in topo.cpu_ids() {
            let stack = topo.domains(cpu);
            prop_assert!(!stack.is_empty());
            for d in stack {
                prop_assert!(d.contains(cpu));
                let total: usize = d.groups().iter().map(|g| g.len()).sum();
                prop_assert_eq!(total, d.span().count());
                // No CPU appears twice in a span.
                let mut seen: Vec<CpuId> = d.span().collect();
                seen.sort_unstable();
                let len = seen.len();
                seen.dedup();
                prop_assert_eq!(seen.len(), len);
            }
            for pair in stack.windows(2) {
                let lower: Vec<CpuId> = pair[0].span().collect();
                let upper: Vec<CpuId> = pair[1].span().collect();
                prop_assert!(lower.len() < upper.len());
                prop_assert!(lower.iter().all(|c| upper.contains(c)));
            }
            let top: Vec<CpuId> = stack.last().unwrap().span().collect();
            // The top level spans everything (or the machine is a
            // single CPU with its degenerate domain).
            if topo.n_cpus() > 1 {
                prop_assert_eq!(top.len(), topo.n_cpus());
            }
        }
    }

    /// Sibling relations are symmetric and consistent with packages.
    #[test]
    fn sibling_symmetry(
        nodes in 1usize..4,
        packages in 1usize..5,
        cores in 1usize..3,
        threads in 1usize..4,
    ) {
        let topo = Topology::build_cmp(nodes, packages, cores, threads);
        for cpu in topo.cpu_ids() {
            for sib in topo.siblings(cpu) {
                prop_assert_ne!(sib, cpu);
                prop_assert!(topo.same_core(cpu, sib));
                prop_assert!(topo.same_package(cpu, sib));
                prop_assert!(topo.siblings(sib).contains(&cpu));
            }
            prop_assert_eq!(topo.siblings(cpu).len(), threads - 1);
        }
    }

    /// Every CPU belongs to exactly one package and node, and the
    /// package listing round-trips.
    #[test]
    fn package_membership_round_trips(
        nodes in 1usize..4,
        packages in 1usize..5,
        cores in 1usize..3,
        threads in 1usize..4,
    ) {
        let topo = Topology::build_cmp(nodes, packages, cores, threads);
        for cpu in topo.cpu_ids() {
            let core = topo.core_of(cpu);
            prop_assert!(topo.cpus_of_core(core).contains(&cpu));
            let pkg = topo.package_of(cpu);
            prop_assert!(topo.cores_of_package(pkg).contains(&core));
            prop_assert!(topo.cpus_of_package(pkg).contains(&cpu));
            let node = topo.node_of(cpu);
            prop_assert!(topo.cpus_of_node(node).contains(&cpu));
        }
        // Packages partition the CPU set.
        let mut all: Vec<CpuId> = (0..topo.n_packages())
            .flat_map(|p| topo.cpus_of_package(ebs_topology::PackageId(p)))
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, topo.cpu_ids().collect::<Vec<_>>());
    }

    /// Hybrid shapes are well-formed: every core has exactly one
    /// class, SMT siblings share their core's class, the per-package
    /// class split matches the builder's perf-core count, and the
    /// domain stacks carry the same structural invariants as the
    /// homogeneous shapes.
    #[test]
    fn hybrid_shapes_are_well_formed(
        nodes in 1usize..4,
        packages in 1usize..4,
        cores in 2usize..6,
        threads in 1usize..3,
        perf_frac in 1usize..5,
    ) {
        let perf = perf_frac.min(cores - 1); // At least one E core.
        let builder = TopologyBuilder::new()
            .nodes(nodes)
            .packages_per_node(packages)
            .cores_per_package(cores)
            .threads_per_core(threads)
            .perf_cores_per_package(perf);
        prop_assert!(builder.is_hybrid());
        let topo = builder.build();
        prop_assert_eq!(topo.n_classes(), 2);
        prop_assert_eq!(topo.perf_cores_per_package(), perf);
        // Every core has exactly one class, uniform per package.
        for core in 0..topo.n_cores() {
            let core = ebs_topology::CoreId(core);
            let class = topo.class_of_core(core);
            let expect = if core.0 % cores < perf { ClassId(0) } else { ClassId(1) };
            prop_assert_eq!(class, expect);
            for cpu in topo.cpus_of_core(core) {
                prop_assert_eq!(topo.class_of(cpu), class);
            }
        }
        // SMT siblings share a class.
        for cpu in topo.cpu_ids() {
            for sib in topo.siblings(cpu) {
                prop_assert!(topo.same_class(cpu, sib));
            }
        }
        // Per-package class census matches the split.
        for p in 0..topo.n_packages() {
            let pkg = ebs_topology::PackageId(p);
            let perf_cores = topo
                .cores_of_package(pkg)
                .into_iter()
                .filter(|&c| topo.class_of_core(c) == ClassId(0))
                .count();
            prop_assert_eq!(perf_cores, perf);
        }
        // Domain stacks keep the homogeneous invariants.
        for cpu in topo.cpu_ids() {
            for d in topo.domains(cpu) {
                let holding = d.groups().iter().filter(|g| g.contains(cpu)).count();
                prop_assert_eq!(holding, 1);
                let total: usize = d.groups().iter().map(|g| g.len()).sum();
                prop_assert_eq!(total, d.span().count());
            }
        }
    }

    /// The hybrid presets build two-class machines whose builder
    /// dimensions round-trip.
    #[test]
    fn hybrid_presets_are_well_formed(idx in 0usize..3) {
        let preset = TopologyPreset::hybrids()[idx];
        let topo = preset.build();
        prop_assert_eq!(topo.n_cpus(), preset.builder().n_cpus());
        prop_assert_eq!(topo.n_classes(), 2);
        prop_assert!(topo.is_hybrid());
        let mut seen = [false; 2];
        for cpu in topo.cpu_ids() {
            seen[topo.class_of(cpu).0] = true;
            prop_assert!(!topo.domains(cpu).is_empty());
        }
        prop_assert!(seen[0] && seen[1], "both classes populated");
    }

    /// SMT domains carry the share-cpu-power flag; higher levels never
    /// do, and only the top level crosses nodes.
    #[test]
    fn domain_flags_match_levels(
        nodes in 1usize..3,
        packages in 2usize..5,
        smt in any::<bool>(),
    ) {
        let topo = Topology::build(nodes, packages, if smt { 2 } else { 1 });
        for cpu in topo.cpu_ids() {
            for d in topo.domains(cpu) {
                match d.level() {
                    ebs_topology::DomainLevel::Smt => {
                        prop_assert!(d.flags().share_cpu_power);
                        prop_assert!(!d.flags().crosses_node);
                    }
                    ebs_topology::DomainLevel::Core | ebs_topology::DomainLevel::Node => {
                        prop_assert!(!d.flags().share_cpu_power);
                        prop_assert!(!d.flags().crosses_node);
                    }
                    ebs_topology::DomainLevel::Top => {
                        prop_assert!(!d.flags().share_cpu_power);
                    }
                }
            }
        }
    }
}
