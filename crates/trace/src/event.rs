//! Typed scheduling events and the trace sinks that collect them.

use core::fmt;
use ebs_units::{SimDuration, SimTime};

/// One scheduling-relevant event. Identities are raw ids (`u64` tasks
/// and binaries, `u32` CPUs and packages) so producers anywhere in the
/// workspace can emit events without depending on scheduler types.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EventKind {
    /// One engine step of the given span completed.
    EngineStep { stride: SimDuration },
    /// A task entered the system (explicit spawn, respawn, or open
    /// arrival) and was placed on a CPU.
    Spawn { task: u64, cpu: u32, binary: u64 },
    /// A blocked task woke up and re-entered its runqueue.
    Wakeup { task: u64 },
    /// A CPU switched to running `Some(task)`, or went idle (`None`).
    ContextSwitch { cpu: u32, task: Option<u64> },
    /// A migrated task was dispatched on its new CPU.
    Migration {
        task: u64,
        cpu: u32,
        reason: &'static str,
    },
    /// A task finished its total work.
    Completion { task: u64, cpu: u32 },
    /// A governor decided a P-state for a frequency domain. The
    /// `package` field carries the *domain* index — under per-package
    /// scope domain `i` is package `i` (the historical meaning), under
    /// per-core scope it is the machine-global domain number.
    GovernorDecision { package: u32, pstate: u32 },
    /// The decided P-state differed from the previous one. Keyed like
    /// [`EventKind::GovernorDecision`]: the `package` field is the
    /// frequency-domain index.
    PStateTransition { package: u32, from: u32, to: u32 },
    /// The throttle controller halted a package.
    ThrottleEngage { package: u32 },
    /// The throttle controller released a halted package.
    ThrottleRelease { package: u32 },
    /// A balancer round on a CPU pulled tasks.
    BalancerRound { cpu: u32, pulled: u32 },
}

impl EventKind {
    /// Short stable label of the event class (metrics names, diffs).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::EngineStep { .. } => "step",
            EventKind::Spawn { .. } => "spawn",
            EventKind::Wakeup { .. } => "wakeup",
            EventKind::ContextSwitch { .. } => "switch",
            EventKind::Migration { .. } => "migration",
            EventKind::Completion { .. } => "completion",
            EventKind::GovernorDecision { .. } => "governor",
            EventKind::PStateTransition { .. } => "pstate",
            EventKind::ThrottleEngage { .. } => "throttle-engage",
            EventKind::ThrottleRelease { .. } => "throttle-release",
            EventKind::BalancerRound { .. } => "balance",
        }
    }

    /// The CPU the event is anchored to, if it has one.
    pub fn cpu(&self) -> Option<u32> {
        match *self {
            EventKind::Spawn { cpu, .. }
            | EventKind::ContextSwitch { cpu, .. }
            | EventKind::Migration { cpu, .. }
            | EventKind::Completion { cpu, .. }
            | EventKind::BalancerRound { cpu, .. } => Some(cpu),
            _ => None,
        }
    }

    /// The event with its CPU, package, and frequency-domain ids
    /// shifted by the given offsets — used when per-partition streams
    /// from the parallel engine (each numbered from zero) merge into
    /// one machine-global stream. Governor and P-state events shift by
    /// `domain_offset` (their id field is a domain index, which under
    /// per-core scope advances by domains-per-package per partition);
    /// throttle events shift by `package_offset`. Task ids stay
    /// partition-local: partitions allocate them independently, so no
    /// global renumbering exists.
    #[must_use]
    pub fn offset_ids(self, cpu_offset: u32, package_offset: u32, domain_offset: u32) -> EventKind {
        match self {
            EventKind::Spawn { task, cpu, binary } => EventKind::Spawn {
                task,
                cpu: cpu + cpu_offset,
                binary,
            },
            EventKind::ContextSwitch { cpu, task } => EventKind::ContextSwitch {
                cpu: cpu + cpu_offset,
                task,
            },
            EventKind::Migration { task, cpu, reason } => EventKind::Migration {
                task,
                cpu: cpu + cpu_offset,
                reason,
            },
            EventKind::Completion { task, cpu } => EventKind::Completion {
                task,
                cpu: cpu + cpu_offset,
            },
            EventKind::BalancerRound { cpu, pulled } => EventKind::BalancerRound {
                cpu: cpu + cpu_offset,
                pulled,
            },
            EventKind::GovernorDecision { package, pstate } => EventKind::GovernorDecision {
                package: package + domain_offset,
                pstate,
            },
            EventKind::PStateTransition { package, from, to } => EventKind::PStateTransition {
                package: package + domain_offset,
                from,
                to,
            },
            EventKind::ThrottleEngage { package } => EventKind::ThrottleEngage {
                package: package + package_offset,
            },
            EventKind::ThrottleRelease { package } => EventKind::ThrottleRelease {
                package: package + package_offset,
            },
            e @ (EventKind::EngineStep { .. } | EventKind::Wakeup { .. }) => e,
        }
    }
}

/// Merges per-partition event streams — each already in timestamp
/// order — into one stream in global timestamp order. Ties break by
/// stream index (then intra-stream order), so the merge is
/// deterministic and independent of how many worker threads produced
/// the streams.
pub fn merge_streams(streams: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = streams.into_iter().flatten().collect();
    // Stable sort: equal timestamps keep the flattened (stream index,
    // position) order.
    all.sort_by_key(|e| e.t);
    all
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventKind::EngineStep { stride } => write!(f, "step {stride}"),
            EventKind::Spawn { task, cpu, binary } => {
                write!(f, "spawn task{task} (bin{binary}) on cpu{cpu}")
            }
            EventKind::Wakeup { task } => write!(f, "wakeup task{task}"),
            EventKind::ContextSwitch { cpu, task: Some(t) } => {
                write!(f, "cpu{cpu} switch -> task{t}")
            }
            EventKind::ContextSwitch { cpu, task: None } => write!(f, "cpu{cpu} switch -> idle"),
            EventKind::Migration { task, cpu, reason } => {
                write!(f, "task{task} migrated to cpu{cpu} ({reason})")
            }
            EventKind::Completion { task, cpu } => write!(f, "task{task} completed on cpu{cpu}"),
            EventKind::GovernorDecision { package, pstate } => {
                write!(f, "pkg{package} governor -> P{pstate}")
            }
            EventKind::PStateTransition { package, from, to } => {
                write!(f, "pkg{package} P{from} -> P{to}")
            }
            EventKind::ThrottleEngage { package } => write!(f, "pkg{package} throttle engaged"),
            EventKind::ThrottleRelease { package } => write!(f, "pkg{package} throttle released"),
            EventKind::BalancerRound { cpu, pulled } => {
                write!(f, "cpu{cpu} balance pulled {pulled}")
            }
        }
    }
}

/// An event stamped with the simulated instant it occurred at.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceEvent {
    /// When the event occurred.
    pub t: SimTime,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}] {}", self.t, self.kind)
    }
}

/// A consumer of trace events. The engine emits into one sink; the
/// default is the [`EventTrace`] buffer, but tests and tools can plug
/// in counting or filtering sinks.
pub trait TraceSink {
    /// Records one event at instant `t`.
    fn record(&mut self, t: SimTime, kind: EventKind);
}

/// The default sink: an in-memory event buffer, unbounded by default
/// or bounded as a ring (oldest events dropped) via
/// [`EventTrace::with_capacity`].
#[derive(Clone, Debug, Default)]
pub struct EventTrace {
    buf: Vec<TraceEvent>,
    /// Start of the logical sequence within `buf` (ring mode only).
    head: usize,
    cap: Option<usize>,
    dropped: u64,
}

impl EventTrace {
    /// An unbounded event buffer.
    pub fn new() -> Self {
        EventTrace::default()
    }

    /// A ring buffer keeping only the most recent `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventTrace {
            cap: Some(cap.max(1)),
            ..EventTrace::default()
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// The buffered events as a contiguous vector, oldest first.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }
}

impl TraceSink for EventTrace {
    fn record(&mut self, t: SimTime, kind: EventKind) {
        let ev = TraceEvent { t, kind };
        match self.cap {
            Some(cap) if self.buf.len() >= cap => {
                self.buf[self.head] = ev;
                self.head = (self.head + 1) % cap;
                self.dropped += 1;
            }
            _ => self.buf.push(ev),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_buffer_keeps_everything_in_order() {
        let mut trace = EventTrace::new();
        for i in 0..100 {
            trace.record(SimTime::from_millis(i), EventKind::Wakeup { task: i });
        }
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.dropped(), 0);
        let v = trace.to_vec();
        assert_eq!(v[0].kind, EventKind::Wakeup { task: 0 });
        assert_eq!(v[99].t, SimTime::from_millis(99));
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut trace = EventTrace::with_capacity(10);
        for i in 0..25 {
            trace.record(SimTime::from_millis(i), EventKind::Wakeup { task: i });
        }
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.dropped(), 15);
        let v = trace.to_vec();
        assert_eq!(v[0].kind, EventKind::Wakeup { task: 15 });
        assert_eq!(v[9].kind, EventKind::Wakeup { task: 24 });
        // Oldest-first even when the ring has wrapped mid-way.
        assert!(v.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn display_is_readable() {
        let ev = TraceEvent {
            t: SimTime::from_millis(1500),
            kind: EventKind::Migration {
                task: 7,
                cpu: 3,
                reason: "hot-task",
            },
        };
        assert_eq!(
            format!("{ev}"),
            "[t+1.500000s] task7 migrated to cpu3 (hot-task)"
        );
        assert_eq!(ev.kind.label(), "migration");
        assert_eq!(ev.kind.cpu(), Some(3));
        assert_eq!(EventKind::Wakeup { task: 1 }.cpu(), None);
    }
}
