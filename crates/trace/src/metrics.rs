//! A registry of named metrics: monotonic counters and time-weighted
//! gauges, snapshotted periodically into a time-series CSV.
//!
//! Naming convention: `subsystem.metric[.instance]`, e.g.
//! `sched.context_switches`, `thermal.power_w.cpu3`,
//! `dvfs.freq_ghz.pkg0` (per-package frequency domains) or
//! `dvfs.freq_ghz.dom5` (per-core domains on hybrid machines).
//! Subsystems in use: `engine`, `sched`, `dvfs`, `thermal`,
//! `workloads`.

use ebs_units::SimTime;

/// Handle of a registered counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GaugeId(usize);

#[derive(Clone, Debug)]
struct Gauge {
    name: String,
    value: f64,
    /// Integral of the gauge over time (value · seconds), maintained
    /// on every set so means are time-weighted, not sample-weighted.
    integral: f64,
    last_set: SimTime,
}

/// One periodic snapshot of every registered metric.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The instant the snapshot was taken.
    pub t: SimTime,
    /// Counter values, in registration order.
    pub counters: Vec<u64>,
    /// Gauge values, in registration order.
    pub gauges: Vec<f64>,
}

/// Named monotonic counters and time-weighted gauges.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<Gauge>,
    snapshots: Vec<Snapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) a monotonic counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Increments a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Sets a counter to an absolute total. Totals must be monotone;
    /// producers that already keep a cumulative statistic publish it
    /// here instead of instrumenting every increment site.
    pub fn set_total(&mut self, id: CounterId, total: u64) {
        debug_assert!(
            total >= self.counters[id.0].1,
            "counter {} went backwards: {} -> {}",
            self.counters[id.0].0,
            self.counters[id.0].1,
            total
        );
        self.counters[id.0].1 = total;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers (or looks up) a time-weighted gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(Gauge {
            name: name.to_string(),
            value: 0.0,
            integral: 0.0,
            last_set: SimTime::ZERO,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge at instant `t`, accumulating the previous value
    /// over the elapsed time into the gauge's integral.
    pub fn set_gauge(&mut self, id: GaugeId, t: SimTime, value: f64) {
        let g = &mut self.gauges[id.0];
        g.integral += g.value * t.saturating_since(g.last_set).as_secs_f64();
        g.last_set = t;
        g.value = value;
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].value
    }

    /// Time-weighted mean of a gauge over `[0, t]`.
    pub fn gauge_mean(&self, id: GaugeId, t: SimTime) -> f64 {
        if t == SimTime::ZERO {
            return self.gauges[id.0].value;
        }
        let g = &self.gauges[id.0];
        let integral = g.integral + g.value * t.saturating_since(g.last_set).as_secs_f64();
        integral / t.as_secs_f64()
    }

    /// Records a snapshot of every metric at instant `t`.
    pub fn snapshot(&mut self, t: SimTime) {
        self.snapshots.push(Snapshot {
            t,
            counters: self.counters.iter().map(|&(_, v)| v).collect(),
            gauges: self.gauges.iter().map(|g| g.value).collect(),
        });
    }

    /// The recorded snapshots, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Registered counter names, in registration order.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Registered gauge names, in registration order.
    pub fn gauge_names(&self) -> Vec<&str> {
        self.gauges.iter().map(|g| g.name.as_str()).collect()
    }

    /// The snapshot time series as CSV: one `time_s` column, then one
    /// column per counter and per gauge, in registration order.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for (name, _) in &self.counters {
            out.push(',');
            out.push_str(name);
        }
        for g in &self.gauges {
            out.push(',');
            out.push_str(&g.name);
        }
        out.push('\n');
        for snap in &self.snapshots {
            out.push_str(&format!("{:.3}", snap.t.as_secs_f64()));
            for v in &snap.counters {
                out.push_str(&format!(",{v}"));
            }
            for v in &snap.gauges {
                out.push_str(&format!(",{v:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_dedup_and_count() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("sched.migrations");
        let b = reg.counter("sched.migrations");
        assert_eq!(a, b);
        reg.inc(a, 3);
        reg.set_total(a, 10);
        assert_eq!(reg.counter_value(a), 10);
        assert_eq!(reg.counter_names(), vec!["sched.migrations"]);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    #[cfg(debug_assertions)]
    fn counters_reject_regressions() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("engine.steps");
        reg.set_total(a, 5);
        reg.set_total(a, 4);
    }

    #[test]
    fn gauge_mean_is_time_weighted() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("thermal.power_w.cpu0");
        // 10 W for 1 s, then 30 W for 3 s: mean = (10 + 90) / 4 = 25.
        reg.set_gauge(g, SimTime::ZERO, 10.0);
        reg.set_gauge(g, SimTime::from_secs(1), 30.0);
        let mean = reg.gauge_mean(g, SimTime::from_secs(4));
        assert!((mean - 25.0).abs() < 1e-9, "{mean}");
        assert_eq!(reg.gauge_value(g), 30.0);
    }

    #[test]
    fn csv_has_header_and_one_row_per_snapshot() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("engine.steps");
        let g = reg.gauge("dvfs.freq_ghz.pkg0");
        reg.set_total(c, 7);
        reg.set_gauge(g, SimTime::ZERO, 2.2);
        reg.snapshot(SimTime::from_millis(100));
        reg.set_total(c, 14);
        reg.snapshot(SimTime::from_millis(200));
        let csv = reg.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time_s,engine.steps,dvfs.freq_ghz.pkg0");
        assert_eq!(lines[1], "0.100,7,2.200000");
        assert_eq!(lines[2], "0.200,14,2.200000");
    }
}
