//! Observability for the EBS workspace: structured event traces, a
//! metrics registry, a Perfetto/Chrome trace-event exporter, engine
//! self-profiling, and trace diffing.
//!
//! The paper's evidence *is* traces — thermal-power curves (Figs. 6/7)
//! and task-to-CPU placement timelines (Fig. 9) — and this crate turns
//! the simulator's internals into first-class observable streams:
//!
//! - [`EventKind`]/[`TraceEvent`]: typed scheduling-relevant events
//!   (context switches, wakeups, migrations with reasons, arrivals and
//!   completions, governor decisions and P-state transitions, throttle
//!   flips, balancer rounds, engine strides), collected by any
//!   [`TraceSink`] — by default the [`EventTrace`] vec/ring buffer.
//! - [`MetricsRegistry`]: named monotonic counters and time-weighted
//!   gauges, registered by subsystem, snapshotted periodically into a
//!   time-series CSV.
//! - [`perfetto`]: renders an event stream plus gauge snapshots as
//!   Chrome trace-event JSON — per-CPU tracks with task slices,
//!   instants for policy decisions (on per-package or per-frequency-
//!   domain tracks, matching the machine's domain scope), counter
//!   tracks for thermal power, per-domain frequency, runqueue depth,
//!   and utilization — openable directly in `ui.perfetto.dev`.
//! - [`PhaseProfiler`]: host wall-time accounting per engine phase,
//!   the baseline for any future parallel engine core.
//! - [`first_divergence`]: trace diffing, so two runs that drift can be
//!   pinned to the first divergent event instead of eyeballed CSVs.
//!
//! The crate depends only on `ebs-units`: events carry raw ids
//! (`u64` tasks/binaries, `u32` CPUs/packages), so every layer of the
//! workspace can emit into it without dependency cycles.

mod diff;
mod event;
mod json;
mod metrics;
pub mod perfetto;
mod profile;

pub use diff::{first_divergence, Divergence};
pub use event::{merge_streams, EventKind, EventTrace, TraceEvent, TraceSink};
pub use json::{parse as parse_json, Json};
pub use metrics::{CounterId, GaugeId, MetricsRegistry};
pub use profile::{PhaseProfiler, PhaseRow};
