//! Trace diffing: pinpointing where two event streams first disagree.
//!
//! Used by the equivalence suites and `exp_scaling_gate`: when two
//! engine configurations that should agree drift apart, the diff names
//! the first divergent event (instant, CPU, kind) instead of leaving a
//! pile of aggregate-metric deltas to eyeball.

use crate::event::TraceEvent;
use core::fmt;

/// The first position at which two event streams disagree.
#[derive(Clone, Copy, Debug)]
pub struct Divergence {
    /// Index into both streams (the first differing position).
    pub index: usize,
    /// The left stream's event there, if any.
    pub left: Option<TraceEvent>,
    /// The right stream's event there, if any.
    pub right: Option<TraceEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |ev: &Option<TraceEvent>| match ev {
            Some(ev) => format!("{ev}"),
            None => "stream ended".to_string(),
        };
        write!(
            f,
            "event #{}: {} vs {}",
            self.index,
            side(&self.left),
            side(&self.right)
        )
    }
}

/// The first divergence between two event streams, or `None` when they
/// are identical (same events in the same order, same length).
pub fn first_divergence(left: &[TraceEvent], right: &[TraceEvent]) -> Option<Divergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        let l = left.get(i).copied();
        let r = right.get(i).copied();
        if l != r {
            return Some(Divergence {
                index: i,
                left: l,
                right: r,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use ebs_units::SimTime;

    fn ev(t_ms: u64, task: u64) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_millis(t_ms),
            kind: EventKind::Wakeup { task },
        }
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let a = vec![ev(1, 1), ev(2, 2)];
        assert!(first_divergence(&a, &a.clone()).is_none());
        assert!(first_divergence(&[], &[]).is_none());
    }

    #[test]
    fn first_difference_is_reported_with_both_sides() {
        let a = vec![ev(1, 1), ev(2, 2), ev(3, 3)];
        let b = vec![ev(1, 1), ev(2, 9), ev(3, 3)];
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left, Some(ev(2, 2)));
        assert_eq!(d.right, Some(ev(2, 9)));
        let text = format!("{d}");
        assert!(text.contains("event #1"), "{text}");
        assert!(text.contains("wakeup task2"), "{text}");
        assert!(text.contains("wakeup task9"), "{text}");
    }

    #[test]
    fn length_mismatch_diverges_at_the_short_end() {
        let a = vec![ev(1, 1)];
        let b = vec![ev(1, 1), ev(2, 2)];
        let d = first_divergence(&a, &b).expect("diverges");
        assert_eq!(d.index, 1);
        assert!(d.left.is_none());
        assert_eq!(d.right, Some(ev(2, 2)));
        assert!(format!("{d}").contains("stream ended"));
    }
}
