//! Chrome trace-event JSON export, openable directly in
//! `ui.perfetto.dev` (or `chrome://tracing`).
//!
//! Layout:
//!
//! - process 1 ("machine"): one thread track per CPU carrying task
//!   slices (`B`/`E` pairs reconstructed from the context-switch
//!   stream) and instants for spawns, completions, migrations, and
//!   balancer rounds; one thread track per package carrying throttle
//!   instants (and, under per-package frequency domains, the governor
//!   and P-state instants); under per-core domains ([`export_scoped`])
//!   one thread track per frequency domain carries those instead.
//! - process 2 ("metrics"): one counter track (`C` events) per
//!   registered gauge — thermal power, frequency, runqueue depth,
//!   windowed utilization — fed from the registry's snapshots.
//!
//! Engine-step and wakeup events are deliberately not rendered (pure
//! volume, no track to pin them to); the raw event buffer keeps them.

use crate::event::{EventKind, TraceEvent};
use crate::json::escape;
use crate::metrics::MetricsRegistry;
use std::collections::HashMap;

const PID_MACHINE: u32 = 1;
const PID_METRICS: u32 = 2;
/// Package tracks live above any plausible CPU id.
const PKG_TID_BASE: u32 = 4000;
/// Frequency-domain tracks (per-core scope only) live above the
/// package tracks — a hybrid machine's domain ids overlap its package
/// ids numerically while meaning different hardware.
const DOM_TID_BASE: u32 = 8000;

fn meta(pid: u32, tid: u32, key: &str, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{key}\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

fn instant(ts: u64, tid: u32, name: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":{PID_MACHINE},\"tid\":{tid},\"ts\":{ts},\
         \"s\":\"t\",\"name\":\"{}\"}}",
        escape(name)
    )
}

/// Renders an event stream (and optionally a metrics registry's gauge
/// snapshots) as a Chrome trace-event JSON document. `binary_names`
/// labels task slices by the program each task runs (tasks map to
/// binaries via their `Spawn` events; unknown binaries fall back to
/// `bin<id>`).
///
/// Governor and P-state instants land on the `package{i}` tracks —
/// correct for per-package frequency domains, where domain `i` *is*
/// package `i`. Machines running per-core domains (hybrid shapes)
/// should use [`export_scoped`] so those instants get their own
/// `domain{i}` tracks.
pub fn export(
    events: &[TraceEvent],
    metrics: Option<&MetricsRegistry>,
    binary_names: &HashMap<u64, String>,
) -> String {
    export_scoped(events, metrics, binary_names, false)
}

/// [`export`] with explicit frequency-domain granularity. With
/// `per_core_domains` the governor/P-state instants (whose id field
/// carries a *domain* index) render on dedicated `domain{i}` tracks,
/// one per frequency domain, while throttle instants stay on the
/// `package{i}` tracks they are keyed by — on a hybrid machine the
/// two id spaces overlap numerically but name different hardware.
pub fn export_scoped(
    events: &[TraceEvent],
    metrics: Option<&MetricsRegistry>,
    binary_names: &HashMap<u64, String>,
    per_core_domains: bool,
) -> String {
    let mut out: Vec<String> = Vec::new();
    let mut cpus: Vec<u32> = Vec::new();
    let mut packages: Vec<u32> = Vec::new();
    let mut domains: Vec<u32> = Vec::new();
    let mut labels: HashMap<u64, String> = HashMap::new();
    // Open slice per CPU: the label of the task currently on it.
    let mut open: HashMap<u32, String> = HashMap::new();
    let mut last_ts = 0u64;

    let label_of = |labels: &HashMap<u64, String>, task: u64| -> String {
        labels
            .get(&task)
            .cloned()
            .unwrap_or_else(|| format!("task{task}"))
    };

    for ev in events {
        let ts = ev.t.as_micros();
        last_ts = last_ts.max(ts);
        if let Some(cpu) = ev.kind.cpu() {
            if !cpus.contains(&cpu) {
                cpus.push(cpu);
            }
        }
        match ev.kind {
            EventKind::EngineStep { .. } | EventKind::Wakeup { .. } => {}
            EventKind::Spawn { task, cpu, binary } => {
                let name = binary_names
                    .get(&binary)
                    .cloned()
                    .unwrap_or_else(|| format!("bin{binary}"));
                labels.insert(task, format!("{name} t{task}"));
                out.push(instant(
                    ts,
                    cpu,
                    &format!("spawn {}", label_of(&labels, task)),
                ));
            }
            EventKind::ContextSwitch { cpu, task } => {
                if open.remove(&cpu).is_some() {
                    out.push(format!(
                        "{{\"ph\":\"E\",\"pid\":{PID_MACHINE},\"tid\":{cpu},\"ts\":{ts}}}"
                    ));
                }
                if let Some(task) = task {
                    let label = label_of(&labels, task);
                    out.push(format!(
                        "{{\"ph\":\"B\",\"pid\":{PID_MACHINE},\"tid\":{cpu},\"ts\":{ts},\
                         \"name\":\"{}\"}}",
                        escape(&label)
                    ));
                    open.insert(cpu, label);
                }
            }
            EventKind::Migration { task, cpu, reason } => {
                out.push(instant(
                    ts,
                    cpu,
                    &format!("migrate {} ({reason})", label_of(&labels, task)),
                ));
            }
            EventKind::Completion { task, cpu } => {
                out.push(instant(
                    ts,
                    cpu,
                    &format!("done {}", label_of(&labels, task)),
                ));
            }
            EventKind::BalancerRound { cpu, pulled } => {
                out.push(instant(ts, cpu, &format!("balance pulled {pulled}")));
            }
            EventKind::GovernorDecision { package, pstate } => {
                let tid = if per_core_domains {
                    if !domains.contains(&package) {
                        domains.push(package);
                    }
                    DOM_TID_BASE + package
                } else {
                    if !packages.contains(&package) {
                        packages.push(package);
                    }
                    PKG_TID_BASE + package
                };
                out.push(instant(ts, tid, &format!("governor P{pstate}")));
            }
            EventKind::PStateTransition { package, from, to } => {
                let tid = if per_core_domains {
                    if !domains.contains(&package) {
                        domains.push(package);
                    }
                    DOM_TID_BASE + package
                } else {
                    if !packages.contains(&package) {
                        packages.push(package);
                    }
                    PKG_TID_BASE + package
                };
                out.push(instant(ts, tid, &format!("P{from} -> P{to}")));
            }
            EventKind::ThrottleEngage { package } => {
                if !packages.contains(&package) {
                    packages.push(package);
                }
                out.push(instant(ts, PKG_TID_BASE + package, "throttle engage"));
            }
            EventKind::ThrottleRelease { package } => {
                if !packages.contains(&package) {
                    packages.push(package);
                }
                out.push(instant(ts, PKG_TID_BASE + package, "throttle release"));
            }
        }
    }
    // Close slices still open at the end of the trace.
    let mut still_open: Vec<u32> = open.into_keys().collect();
    still_open.sort_unstable();
    for cpu in still_open {
        out.push(format!(
            "{{\"ph\":\"E\",\"pid\":{PID_MACHINE},\"tid\":{cpu},\"ts\":{last_ts}}}"
        ));
    }

    // Counter tracks from the gauge snapshots.
    if let Some(reg) = metrics {
        let names = reg.gauge_names();
        for snap in reg.snapshots() {
            let ts = snap.t.as_micros();
            for (name, value) in names.iter().zip(&snap.gauges) {
                out.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID_METRICS},\"tid\":0,\"ts\":{ts},\
                     \"name\":\"{}\",\"args\":{{\"value\":{value:.6}}}}}",
                    escape(name)
                ));
            }
        }
    }

    // Track naming metadata.
    let mut head = vec![
        meta(PID_MACHINE, 0, "process_name", "machine"),
        meta(PID_METRICS, 0, "process_name", "metrics"),
    ];
    cpus.sort_unstable();
    for cpu in cpus {
        head.push(meta(PID_MACHINE, cpu, "thread_name", &format!("cpu{cpu}")));
    }
    packages.sort_unstable();
    for pkg in packages {
        head.push(meta(
            PID_MACHINE,
            PKG_TID_BASE + pkg,
            "thread_name",
            &format!("package{pkg}"),
        ));
    }
    domains.sort_unstable();
    for dom in domains {
        head.push(meta(
            PID_MACHINE,
            DOM_TID_BASE + dom,
            "thread_name",
            &format!("domain{dom}"),
        ));
    }
    head.extend(out);
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\"}}\n",
        head.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use ebs_units::SimTime;

    fn ev(t_ms: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            t: SimTime::from_millis(t_ms),
            kind,
        }
    }

    #[test]
    fn export_round_trips_with_matched_slices_and_counters() {
        let events = vec![
            ev(
                0,
                EventKind::Spawn {
                    task: 1,
                    cpu: 0,
                    binary: 9,
                },
            ),
            ev(
                0,
                EventKind::ContextSwitch {
                    cpu: 0,
                    task: Some(1),
                },
            ),
            ev(
                5,
                EventKind::Migration {
                    task: 1,
                    cpu: 2,
                    reason: "hot-task",
                },
            ),
            ev(5, EventKind::ContextSwitch { cpu: 0, task: None }),
            ev(
                5,
                EventKind::ContextSwitch {
                    cpu: 2,
                    task: Some(1),
                },
            ),
            ev(
                7,
                EventKind::GovernorDecision {
                    package: 0,
                    pstate: 2,
                },
            ),
            ev(9, EventKind::Completion { task: 1, cpu: 2 }),
            // Task 1 keeps running past the end: closed synthetically.
        ];
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("thermal.power_w.cpu0");
        reg.set_gauge(g, SimTime::ZERO, 13.5);
        reg.snapshot(SimTime::from_millis(4));
        let mut names = HashMap::new();
        names.insert(9u64, "bitcnts".to_string());

        let doc = export(&events, Some(&reg), &names);
        let parsed = parse(&doc).expect("valid JSON");
        let list = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");

        // Slices balance per (pid, tid), with monotone timestamps.
        let mut open: HashMap<(u64, u64), f64> = HashMap::new();
        let mut counters = 0;
        for item in list {
            let ph = item.get("ph").and_then(Json::as_str).expect("ph");
            let tid = item.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let pid = item.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            let ts = item.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
            match ph {
                "B" => {
                    assert!(open.insert((pid, tid), ts).is_none(), "nested slice");
                }
                "E" => {
                    let begin = open.remove(&(pid, tid)).expect("E without B");
                    assert!(ts >= begin, "slice ends before it begins");
                }
                "C" => {
                    counters += 1;
                    assert!(item.get("args").and_then(|a| a.get("value")).is_some());
                }
                _ => {}
            }
        }
        assert!(open.is_empty(), "unclosed slices: {open:?}");
        assert_eq!(counters, 1);
        // The slice is labelled with the program name.
        assert!(doc.contains("bitcnts t1"));
        assert!(doc.contains("thermal.power_w.cpu0"));
        assert!(doc.contains("hot-task"));
    }

    #[test]
    fn per_core_scope_renders_domain_tracks() {
        let events = vec![
            ev(
                1,
                EventKind::GovernorDecision {
                    package: 5,
                    pstate: 1,
                },
            ),
            ev(
                2,
                EventKind::PStateTransition {
                    package: 5,
                    from: 0,
                    to: 1,
                },
            ),
            ev(3, EventKind::ThrottleEngage { package: 0 }),
        ];
        let names = HashMap::new();

        // Legacy export: everything on package tracks.
        let flat = export(&events, None, &names);
        assert!(flat.contains("package5"));
        assert!(!flat.contains("domain5"));

        // Per-core domains: governor/P-state instants move to their
        // own domain track; the throttle stays per package.
        let scoped = export_scoped(&events, None, &names, true);
        assert!(scoped.contains("domain5"), "{scoped}");
        assert!(!scoped.contains("package5"), "{scoped}");
        assert!(scoped.contains("package0"), "{scoped}");
        assert!(parse(&scoped).is_ok(), "valid JSON");
    }

    #[test]
    fn offset_ids_shifts_domains_independently_of_packages() {
        let gov = EventKind::GovernorDecision {
            package: 3,
            pstate: 1,
        }
        .offset_ids(0, 1, 8);
        assert_eq!(
            gov,
            EventKind::GovernorDecision {
                package: 11,
                pstate: 1
            }
        );
        let thr = EventKind::ThrottleEngage { package: 0 }.offset_ids(0, 1, 8);
        assert_eq!(thr, EventKind::ThrottleEngage { package: 1 });
    }
}
