//! Host wall-time accounting per engine phase.
//!
//! The profiler answers "where does a simulated second go?" — the
//! baseline any parallel engine core must beat. Assertions about
//! profiling should stay counter-based (call counts, not wall time):
//! wall times are for human eyes and vary with the host.

use core::fmt;
use std::time::Duration;

/// Per-phase totals of host wall time.
#[derive(Clone, Debug)]
pub struct PhaseProfiler {
    names: Vec<&'static str>,
    totals: Vec<Duration>,
    calls: Vec<u64>,
}

/// One row of the profile table.
#[derive(Clone, Copy, Debug)]
pub struct PhaseRow {
    /// Phase name.
    pub name: &'static str,
    /// Times the phase ran.
    pub calls: u64,
    /// Total host wall time spent in the phase, seconds.
    pub total_s: f64,
    /// Mean host wall time per call, nanoseconds.
    pub mean_ns: f64,
    /// Fraction of the profiled total spent in this phase.
    pub share: f64,
}

impl PhaseProfiler {
    /// A profiler over the given phases (indices are positional).
    pub fn new(names: &[&'static str]) -> Self {
        PhaseProfiler {
            names: names.to_vec(),
            totals: vec![Duration::ZERO; names.len()],
            calls: vec![0; names.len()],
        }
    }

    /// Adds one timed call to phase `phase`.
    pub fn record(&mut self, phase: usize, elapsed: Duration) {
        self.totals[phase] += elapsed;
        self.calls[phase] += 1;
    }

    /// Total calls recorded into phase `phase`.
    pub fn calls(&self, phase: usize) -> u64 {
        self.calls[phase]
    }

    /// The profile as rows, in phase order.
    pub fn rows(&self) -> Vec<PhaseRow> {
        let grand: f64 = self.totals.iter().map(|d| d.as_secs_f64()).sum();
        self.names
            .iter()
            .zip(self.totals.iter().zip(&self.calls))
            .map(|(&name, (total, &calls))| PhaseRow {
                name,
                calls,
                total_s: total.as_secs_f64(),
                mean_ns: if calls == 0 {
                    0.0
                } else {
                    total.as_secs_f64() * 1e9 / calls as f64
                },
                share: if grand == 0.0 {
                    0.0
                } else {
                    total.as_secs_f64() / grand
                },
            })
            .collect()
    }
}

impl fmt::Display for PhaseProfiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>12} {:>12} {:>10} {:>7}",
            "phase", "calls", "total_ms", "mean_ns", "share"
        )?;
        for row in self.rows() {
            writeln!(
                f,
                "{:<12} {:>12} {:>12.3} {:>10.0} {:>6.1}%",
                row.name,
                row.calls,
                row.total_s * 1e3,
                row.mean_ns,
                row.share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_share_and_means_add_up() {
        let mut p = PhaseProfiler::new(&["physics", "sched"]);
        p.record(0, Duration::from_micros(30));
        p.record(0, Duration::from_micros(30));
        p.record(1, Duration::from_micros(40));
        let rows = p.rows();
        assert_eq!(rows[0].calls, 2);
        assert_eq!(rows[1].calls, 1);
        assert!((rows[0].mean_ns - 30_000.0).abs() < 1.0);
        let total_share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((total_share - 1.0).abs() < 1e-12);
        assert!((rows[0].share - 0.6).abs() < 1e-9);
        // The table renders one line per phase plus a header.
        assert_eq!(format!("{p}").lines().count(), 3);
    }

    #[test]
    fn empty_profiler_renders_zeros() {
        let p = PhaseProfiler::new(&["only"]);
        let rows = p.rows();
        assert_eq!(rows[0].calls, 0);
        assert_eq!(rows[0].mean_ns, 0.0);
        assert_eq!(rows[0].share, 0.0);
    }
}
