//! A minimal JSON parser, used to validate the Perfetto exporter's
//! output (round-trip tests) without external dependencies.

use std::collections::HashMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(HashMap<String, Json>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = HashMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Escapes a string for embedding in a JSON document (used by the
/// Perfetto exporter).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": "x\"y", "c": null, "d": true}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
