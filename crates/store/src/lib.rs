//! Versioned, content-hashable snapshot store.
//!
//! Every piece of mutable simulation state implements [`Snapshot`]:
//! it serialises itself into a *keyed byte layout* (each logical
//! section is prefixed with a short string key, in the spirit of
//! merk's keyed-node-over-backing-store design) and restores itself
//! from the same layout. The byte encoding is fully deterministic —
//! little-endian integers, floats by `to_bits`, map entries in sorted
//! key order — so two simulations in the same state produce the same
//! bytes and therefore the same [`StateImage::hash`]. That hash is an
//! equality oracle far sharper than any aggregate-metric tolerance:
//! the equivalence gates compare it directly.
//!
//! A finished image carries a header — magic, format version, content
//! hash, payload length — and refuses to open when any of them
//! disagrees, so stale artifacts fail loudly instead of restoring
//! garbage.
//!
//! The section keys exist for *mismatch localisation*: a restore that
//! drifts from the save layout fails at the first wrong key, naming
//! both sides, instead of silently misinterpreting bytes downstream.

use ebs_units::{Celsius, Joules, SimDuration, SimTime, Watts};
use std::collections::HashSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Image magic: "EBSS" (EBS Snapshot).
pub const MAGIC: [u8; 4] = *b"EBSS";

/// Format version of the snapshot layout. Bump on any change to what
/// the engines save or how the store encodes it; [`StateImage::open`]
/// refuses images of another version, while
/// [`StateImage::open_migrating`] also accepts older versions the
/// engines still know how to read.
///
/// History:
/// - **v1** — the original layout: homogeneous machines, dvfs state
///   keyed per package, no per-task core-class tag.
/// - **v2** — heterogeneous hardware: each task runtime carries the
///   core class it last executed on (`last_class`), and dvfs state is
///   keyed per frequency domain (identical byte shape to v1 on
///   per-package machines, one extra `usize` per task).
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version the migrating reader still accepts. Version-
/// conditional `restore` code may be dropped when this moves past the
/// version it covers.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// A restore failure. Every variant names enough context to locate
/// the divergence in the byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The image header is not a snapshot or is truncated.
    BadMagic,
    /// The image was written by a different format version.
    Version { found: u32, expected: u32 },
    /// The stored content hash does not match the payload.
    HashMismatch { stored: u64, computed: u64 },
    /// A section key differed from what the reader expected.
    KeyMismatch { expected: String, found: String },
    /// The byte stream ended before a read completed.
    Truncated { wanted: usize, left: usize },
    /// A value failed a semantic check on restore.
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic => write!(f, "not a snapshot image (bad magic)"),
            StoreError::Version { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            StoreError::HashMismatch { stored, computed } => write!(
                f,
                "content hash mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            StoreError::KeyMismatch { expected, found } => {
                write!(
                    f,
                    "section key mismatch: expected {expected:?}, found {found:?}"
                )
            }
            StoreError::Truncated { wanted, left } => {
                write!(f, "truncated image: wanted {wanted} bytes, {left} left")
            }
            StoreError::Invalid(what) => write!(f, "invalid snapshot value: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a over a byte slice — the store's stable content hash. Not
/// cryptographic; it is a drift detector, and 64 bits of avalanche is
/// plenty for "did two deterministic engines compute the same state".
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialises state into the keyed byte layout.
#[derive(Debug)]
pub struct StateWriter {
    buf: Vec<u8>,
    version: u32,
}

impl Default for StateWriter {
    fn default() -> Self {
        StateWriter::new()
    }
}

impl StateWriter {
    /// An empty writer targeting the current [`FORMAT_VERSION`].
    pub fn new() -> Self {
        StateWriter {
            buf: Vec::new(),
            version: FORMAT_VERSION,
        }
    }

    /// An empty writer targeting an *older* still-supported format
    /// version. Version-conditional `save` code consults
    /// [`StateWriter::format_version`] to emit the matching layout —
    /// this is how tests fabricate genuine old-format images for the
    /// migration path without keeping byte fixtures around.
    ///
    /// # Panics
    ///
    /// Panics when `version` is outside
    /// [`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`].
    pub fn versioned(version: u32) -> Self {
        assert!(
            (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version),
            "unsupported target format version {version}"
        );
        StateWriter {
            buf: Vec::new(),
            version,
        }
    }

    /// The format version this writer targets; `save` implementations
    /// with version-dependent layout branch on it.
    pub fn format_version(&self) -> u32 {
        self.version
    }

    /// Marks the start of a keyed section. Purely structural: the
    /// matching [`StateReader::key`] call validates it on restore.
    pub fn key(&mut self, key: &str) {
        debug_assert!(key.len() < 256, "section keys are short labels");
        self.buf.push(key.len() as u8);
        self.buf.extend_from_slice(key.as_bytes());
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so images are architecture-stable.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Floats travel by bit pattern: restore is exact and NaNs hash
    /// stably.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_micros());
    }

    pub fn duration(&mut self, d: SimDuration) {
        self.u64(d.as_micros());
    }

    pub fn watts(&mut self, w: Watts) {
        self.f64(w.0);
    }

    pub fn joules(&mut self, j: Joules) {
        self.f64(j.0);
    }

    pub fn celsius(&mut self, c: Celsius) {
        self.f64(c.0);
    }

    /// `Some`/`None` prefix plus the value via `f`.
    pub fn opt<T>(&mut self, v: &Option<T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(inner) => {
                self.bool(true);
                f(self, inner);
            }
            None => self.bool(false),
        }
    }

    /// Length-prefixed sequence via `f` per element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.usize(items.len());
        for item in items {
            f(self, item);
        }
    }

    /// Serialised payload length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seals the payload into a versioned, hashed image.
    pub fn finish(self) -> StateImage {
        StateImage::seal(self.version, self.buf)
    }
}

/// Deserialises state from the keyed byte layout.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> StateReader<'a> {
    /// The format version of the image being read. `restore`
    /// implementations whose layout changed across versions branch on
    /// it — that branch *is* the migration shim: old sections restore
    /// into the current in-memory state, which then snapshots as the
    /// current version.
    pub fn format_version(&self) -> u32 {
        self.version
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let left = self.buf.len() - self.pos;
        if n > left {
            return Err(StoreError::Truncated { wanted: n, left });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes a section key and checks it matches `expected`.
    ///
    /// # Errors
    ///
    /// [`StoreError::KeyMismatch`] naming both sides when the stream
    /// holds a different key — the first point of layout drift.
    pub fn key(&mut self, expected: &str) -> Result<(), StoreError> {
        let len = usize::from(self.take(1)?[0]);
        let found = String::from_utf8_lossy(self.take(len)?).into_owned();
        if found != expected {
            return Err(StoreError::KeyMismatch {
                expected: expected.to_string(),
                found,
            });
        }
        Ok(())
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn usize(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| StoreError::Invalid(format!("usize overflow: {v}")))
    }

    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StoreError::Invalid(format!("bool byte {other}"))),
        }
    }

    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| StoreError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    pub fn time(&mut self) -> Result<SimTime, StoreError> {
        Ok(SimTime::from_micros(self.u64()?))
    }

    pub fn duration(&mut self) -> Result<SimDuration, StoreError> {
        Ok(SimDuration::from_micros(self.u64()?))
    }

    pub fn watts(&mut self) -> Result<Watts, StoreError> {
        Ok(Watts(self.f64()?))
    }

    pub fn joules(&mut self) -> Result<Joules, StoreError> {
        Ok(Joules(self.f64()?))
    }

    pub fn celsius(&mut self) -> Result<Celsius, StoreError> {
        Ok(Celsius(self.f64()?))
    }

    /// Reads an `Option` written by [`StateWriter::opt`].
    ///
    /// # Errors
    ///
    /// Propagates any decoding failure of the inner value.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, StoreError>,
    ) -> Result<Option<T>, StoreError> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`StateWriter::seq`].
    ///
    /// # Errors
    ///
    /// Propagates any decoding failure of an element.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, StoreError>,
    ) -> Result<Vec<T>, StoreError> {
        let n = self.usize()?;
        // Guard against corrupt lengths allocating the moon; the cap
        // is far above any real section.
        if n > (1 << 32) {
            return Err(StoreError::Invalid(format!("sequence length {n}")));
        }
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// A sealed snapshot: header (magic, version, content hash, payload
/// length) plus the keyed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateImage {
    bytes: Vec<u8>,
}

/// Header layout: magic(4) + version(4) + hash(8) + payload_len(8).
const HEADER_LEN: usize = 24;

impl StateImage {
    fn seal(version: u32, payload: Vec<u8>) -> Self {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&version.to_le_bytes());
        // The hash covers the version too: a layout change under an
        // unbumped version still flips nothing, but a bumped version
        // with identical bytes hashes differently — version confusion
        // can never alias.
        let mut hashed = version.to_le_bytes().to_vec();
        hashed.extend_from_slice(&payload);
        bytes.extend_from_slice(&fnv1a(&hashed).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        StateImage { bytes }
    }

    /// Wraps raw image bytes (e.g. read from a file) without
    /// validating them; [`StateImage::open`] validates.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        StateImage { bytes }
    }

    /// The full image bytes (header + payload).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The stored content hash — the state fingerprint the gates
    /// compare.
    ///
    /// # Panics
    ///
    /// Panics on an image too short to hold a header; images from
    /// [`StateWriter::finish`] always are long enough.
    pub fn hash(&self) -> u64 {
        u64::from_le_bytes(self.bytes[8..16].try_into().expect("header hash"))
    }

    /// The format version stamped in the header.
    ///
    /// # Panics
    ///
    /// Panics on an image too short to hold a header; images from
    /// [`StateWriter::finish`] always are long enough.
    pub fn version(&self) -> u32 {
        u32::from_le_bytes(self.bytes[4..8].try_into().expect("header version"))
    }

    /// Validates the header and returns a reader over the payload.
    /// Strict: only the current [`FORMAT_VERSION`] opens — the right
    /// call when the image was produced in-process (the equivalence
    /// gates, fork sweeps). Use [`StateImage::open_migrating`] for
    /// images from disk that may predate a format bump.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the magic, version, length, or content
    /// hash disagrees with the payload.
    pub fn open(&self) -> Result<StateReader<'_>, StoreError> {
        self.open_range(FORMAT_VERSION..=FORMAT_VERSION)
    }

    /// Validates the header and returns a reader over the payload,
    /// accepting any still-supported format version
    /// ([`MIN_FORMAT_VERSION`]`..=`[`FORMAT_VERSION`]). The reader
    /// reports the image's version via
    /// [`StateReader::format_version`]; version-conditional `restore`
    /// code upgrades old sections in place, so a restored engine
    /// re-snapshots as the current version.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the magic, version, length, or content
    /// hash disagrees with the payload. The content hash is checked
    /// under the image's *own* version, so old images are validated
    /// exactly as they were sealed.
    pub fn open_migrating(&self) -> Result<StateReader<'_>, StoreError> {
        self.open_range(MIN_FORMAT_VERSION..=FORMAT_VERSION)
    }

    fn open_range(
        &self,
        accepted: std::ops::RangeInclusive<u32>,
    ) -> Result<StateReader<'_>, StoreError> {
        if self.bytes.len() < HEADER_LEN || self.bytes[..4] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = self.version();
        if !accepted.contains(&version) {
            return Err(StoreError::Version {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let stored = self.hash();
        let len = u64::from_le_bytes(self.bytes[16..24].try_into().expect("length")) as usize;
        let payload = &self.bytes[HEADER_LEN..];
        if payload.len() != len {
            return Err(StoreError::Truncated {
                wanted: len,
                left: payload.len(),
            });
        }
        let mut hashed = version.to_le_bytes().to_vec();
        hashed.extend_from_slice(payload);
        let computed = fnv1a(&hashed);
        if stored != computed {
            return Err(StoreError::HashMismatch { stored, computed });
        }
        Ok(StateReader {
            buf: payload,
            pos: 0,
            version,
        })
    }

    /// Writes the image to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from the filesystem.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, &self.bytes)
    }

    /// Reads an image from `path` (unvalidated until opened).
    ///
    /// # Errors
    ///
    /// Any I/O error from the filesystem.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(StateImage::from_bytes(std::fs::read(path)?))
    }
}

/// A piece of mutable simulation state that can serialise itself into
/// the keyed layout and restore from it.
///
/// `restore` mutates a *freshly constructed* value of the same
/// configuration: immutable, config-derived parts (topologies, power
/// models, p-state tables) are never serialised — only what evolves
/// during a run. Restoring a snapshot into a value built from the
/// same config is bit-exact; the whole-sim composition additionally
/// supports *forking* into a different policy config, where sections
/// whose shape no longer matches are skipped in favour of the fresh
/// config's defaults.
pub trait Snapshot {
    /// Serialises the mutable state.
    fn save(&self, w: &mut StateWriter);

    /// Restores the mutable state saved by [`Snapshot::save`].
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the byte stream does not match the layout
    /// `save` produces (version drift, truncation, key mismatch).
    fn restore(&mut self, r: &mut StateReader<'_>) -> Result<(), StoreError>;
}

/// Interns a string, returning a `&'static str` — the bridge between
/// serialised strings and the `&'static str` fields used throughout
/// the simulator (program names, phase labels). Each distinct string
/// leaks once, process-wide; the universe of names in any run is
/// small and fixed, so the leak is bounded.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut pool = pool.lock().expect("intern pool poisoned");
    if let Some(found) = pool.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = StateWriter::new();
        w.key("prims");
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.usize(123_456);
        w.f64(-0.125);
        w.f64(f64::NAN);
        w.bool(true);
        w.str("hello");
        w.time(SimTime::from_micros(987));
        w.duration(SimDuration::from_millis(5));
        w.watts(Watts(13.6));
        w.opt(&Some(9u64), |w, v| w.u64(*v));
        w.opt(&None::<u64>, |w, v| w.u64(*v));
        w.seq(&[1u64, 2, 3], |w, v| w.u64(*v));
        let image = w.finish();
        let mut r = image.open().expect("valid image");
        r.key("prims").unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize().unwrap(), 123_456);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.time().unwrap(), SimTime::from_micros(987));
        assert_eq!(r.duration().unwrap(), SimDuration::from_millis(5));
        assert_eq!(r.watts().unwrap(), Watts(13.6));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(9));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn identical_payloads_hash_identically() {
        let image = |x: u64| {
            let mut w = StateWriter::new();
            w.u64(x);
            w.finish()
        };
        assert_eq!(image(5).hash(), image(5).hash());
        assert_ne!(image(5).hash(), image(6).hash());
    }

    #[test]
    fn header_validation_rejects_corruption() {
        let mut w = StateWriter::new();
        w.u64(1);
        let image = w.finish();
        assert!(image.open().is_ok());

        let mut bad_magic = image.as_bytes().to_vec();
        bad_magic[0] = b'X';
        assert_eq!(
            StateImage::from_bytes(bad_magic).open().unwrap_err(),
            StoreError::BadMagic
        );

        let mut bad_version = image.as_bytes().to_vec();
        bad_version[4] = 99;
        assert!(matches!(
            StateImage::from_bytes(bad_version).open().unwrap_err(),
            StoreError::Version { found: 99, .. }
        ));

        let mut flipped = image.as_bytes().to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert!(matches!(
            StateImage::from_bytes(flipped).open().unwrap_err(),
            StoreError::HashMismatch { .. }
        ));

        let truncated = image.as_bytes()[..image.as_bytes().len() - 2].to_vec();
        assert!(matches!(
            StateImage::from_bytes(truncated).open().unwrap_err(),
            StoreError::Truncated { .. }
        ));
    }

    #[test]
    fn migrating_open_accepts_supported_old_versions() {
        let mut w = StateWriter::versioned(1);
        assert_eq!(w.format_version(), 1);
        w.key("old");
        w.u64(0xfeed);
        let image = w.finish();
        assert_eq!(image.version(), 1);

        // Strict open refuses v1 outright.
        assert_eq!(
            image.open().unwrap_err(),
            StoreError::Version {
                found: 1,
                expected: FORMAT_VERSION,
            }
        );

        // The migrating reader opens it, validates the hash under v1,
        // and reports the image's own version.
        let mut r = image.open_migrating().expect("v1 opens migrating");
        assert_eq!(r.format_version(), 1);
        r.key("old").unwrap();
        assert_eq!(r.u64().unwrap(), 0xfeed);
        assert_eq!(r.remaining(), 0);

        // Corruption in a v1 payload still fails its (v1) hash check.
        let mut flipped = image.as_bytes().to_vec();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        assert!(matches!(
            StateImage::from_bytes(flipped)
                .open_migrating()
                .unwrap_err(),
            StoreError::HashMismatch { .. }
        ));
    }

    #[test]
    fn migrating_open_rejects_unknown_versions() {
        let mut w = StateWriter::new();
        w.u64(1);
        let image = w.finish();
        // A future version is rejected by both open paths.
        let mut future = image.as_bytes().to_vec();
        future[4] = (FORMAT_VERSION + 1) as u8;
        let future = StateImage::from_bytes(future);
        assert!(matches!(
            future.open_migrating().unwrap_err(),
            StoreError::Version { .. }
        ));
        assert!(matches!(
            future.open().unwrap_err(),
            StoreError::Version { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "unsupported target format version")]
    fn writer_refuses_unsupported_target_versions() {
        let _ = StateWriter::versioned(FORMAT_VERSION + 1);
    }

    #[test]
    fn key_mismatch_names_both_sides() {
        let mut w = StateWriter::new();
        w.key("alpha");
        w.u64(1);
        let image = w.finish();
        let mut r = image.open().unwrap();
        let err = r.key("beta").unwrap_err();
        assert_eq!(
            err,
            StoreError::KeyMismatch {
                expected: "beta".into(),
                found: "alpha".into(),
            }
        );
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn file_round_trip() {
        let mut w = StateWriter::new();
        w.key("file");
        w.u64(0xabcd);
        let image = w.finish();
        let dir = std::env::temp_dir().join("ebs-store-test");
        let path = dir.join("probe.snap");
        image.write_file(&path).expect("write");
        let back = StateImage::read_file(&path).expect("read");
        assert_eq!(back.hash(), image.hash());
        let mut r = back.open().expect("open");
        r.key("file").unwrap();
        assert_eq!(r.u64().unwrap(), 0xabcd);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn intern_returns_stable_references() {
        let a = intern("bitcnts");
        let b = intern(&String::from("bitcnts"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(intern("other"), "other");
    }
}
