//! Minimal dense linear algebra for least-squares calibration.
//!
//! The calibration problem (recover nine event weights from a few dozen
//! measurement runs) is tiny, so a self-contained column-major matrix
//! with Gaussian elimination is simpler and more auditable than pulling
//! in an external linear-algebra crate.

use core::fmt;

/// Errors from linear-system solving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so) at the given
    /// pivot column.
    Singular { pivot: usize },
    /// Operand shapes do not line up.
    DimensionMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::DimensionMismatch => write!(f, "operand dimensions do not match"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `self^T * self` — the Gram matrix of the columns.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut out = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self.get(r, i) * self.get(r, j);
                }
                out.set(i, j, acc);
                out.set(j, i, acc);
            }
        }
        out
    }

    /// `self^T * v` for a column vector `v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len()` differs
    /// from the row count.
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            for (c, slot) in out.iter_mut().enumerate() {
                *slot += self.get(r, c) * vr;
            }
        }
        Ok(out)
    }

    /// `self * v` for a column vector `v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len()` differs
    /// from the column count.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch);
        }
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, &vc) in v.iter().enumerate() {
                acc += self.get(r, c) * vc;
            }
            *slot = acc;
        }
        Ok(out)
    }
}

/// Solves the square system `a * x = b` by Gaussian elimination with
/// partial pivoting. `a` and `b` are consumed as working storage.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if a pivot is numerically zero and
/// [`LinalgError::DimensionMismatch`] for non-square or mismatched
/// inputs.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    // Scale-aware singularity threshold.
    let scale = (0..n)
        .flat_map(|r| (0..n).map(move |c| (r, c)))
        .map(|(r, c)| a.get(r, c).abs())
        .fold(0.0_f64, f64::max)
        .max(1.0);
    let eps = scale * 1e-12;

    for col in 0..n {
        // Partial pivoting: bring the largest remaining entry up.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| {
                a.get(r1, col)
                    .abs()
                    .partial_cmp(&a.get(r2, col).abs())
                    .expect("pivot comparison on finite values")
            })
            .expect("non-empty pivot range");
        if a.get(pivot_row, col).abs() <= eps {
            return Err(LinalgError::Singular { pivot: col });
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = a.get(col, c);
                a.set(col, c, a.get(pivot_row, c));
                a.set(pivot_row, c, tmp);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = a.get(col, col);
        for row in (col + 1)..n {
            let factor = a.get(row, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = a.get(row, c) - factor * a.get(col, c);
                a.set(row, c, v);
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for (c, xc) in x.iter().enumerate().skip(row + 1) {
            acc -= a.get(row, c) * xc;
        }
        x[row] = acc / a.get(row, row);
    }
    Ok(x)
}

/// Solves the least-squares problem `min ||a * x - b||` via the normal
/// equations `(a^T a) x = a^T b`.
///
/// Adequate for the well-conditioned, low-dimensional calibration
/// systems in this workspace.
///
/// # Errors
///
/// Propagates [`LinalgError`] from the underlying solve, e.g. when the
/// design matrix does not have full column rank.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let gram = a.gram();
    let rhs = a.transpose_mul_vec(b)?;
    solve(gram, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            a.set(i, i, 1.0);
        }
        let x = solve(a, vec![3.0, -1.0, 2.5]).unwrap();
        assert_eq!(x, vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(a, vec![5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(a, vec![2.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            solve(a, vec![1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(
            solve(a.clone(), vec![1.0]),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(
            a.transpose_mul_vec(&[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(a.mul_vec(&[1.0]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn least_squares_exact_fit() {
        // Overdetermined but consistent: x = [2, -1].
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let b = vec![2.0, -1.0, 1.0, 3.0];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimises_residual() {
        // Fit a line through three non-collinear points; the residual of
        // the LS solution must not exceed the residual of nearby
        // perturbed solutions.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
        let b = vec![0.0, 1.1, 1.9];
        let x = least_squares(&a, &b).unwrap();
        let resid = |x: &[f64]| -> f64 {
            a.mul_vec(x)
                .unwrap()
                .iter()
                .zip(&b)
                .map(|(p, t)| (p - t) * (p - t))
                .sum()
        };
        let base = resid(&x);
        for d in [-0.01, 0.01] {
            assert!(base <= resid(&[x[0] + d, x[1]]) + 1e-12);
            assert!(base <= resid(&[x[0], x[1] + d]) + 1e-12);
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let g = a.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
        // Spot-check one entry: col0 . col1 = 1*2 + 4*5 = 22.
        assert_eq!(g.get(0, 1), 22.0);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            LinalgError::Singular { pivot: 3 }.to_string(),
            "matrix is singular at pivot column 3"
        );
        assert_eq!(
            LinalgError::DimensionMismatch.to_string(),
            "operand dimensions do not match"
        );
    }
}
