//! The linear counter-to-energy model (paper Eq. 1) and the simulator's
//! ground truth.
//!
//! Two instances of the same [`EnergyModel`] type appear in the system:
//!
//! - The **ground truth** drives the simulated physics. Its weights are
//!   what a perfect multimeter would see; on top of the linear part, the
//!   physical power includes a small temperature-dependent leakage term
//!   ([`LeakageModel`]) that no counter observes.
//! - The **calibrated model** is what the kernel-side estimator uses.
//!   It is produced by [`crate::calibration`] from noisy measurements
//!   and therefore differs slightly from the truth — reproducing the
//!   <10 % estimation error the paper reports.

use crate::event::{EventCounts, EventKind, N_EVENTS};
use crate::rates::EventRates;
use ebs_units::{Celsius, Joules, Watts};

/// Per-event energy weights in nanojoules; evaluates Eq. 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    weights_nj: [f64; N_EVENTS],
}

impl EnergyModel {
    /// Creates a model from per-event weights in nanojoules.
    ///
    /// Negative weights are accepted: least-squares calibration can
    /// produce slightly negative weights for collinear events, and the
    /// paper's estimator tolerates this as long as total estimates stay
    /// accurate.
    ///
    /// # Panics
    ///
    /// Panics if any weight is non-finite.
    pub fn from_weights_nj(weights_nj: [f64; N_EVENTS]) -> Self {
        for (i, w) in weights_nj.iter().enumerate() {
            assert!(w.is_finite(), "weight {i} must be finite, got {w}");
        }
        EnergyModel { weights_nj }
    }

    /// The ground-truth weights of the simulated processor.
    ///
    /// Chosen so that the workload programs of the paper's Table 2 land
    /// at their published power levels on a 2.2 GHz part (see
    /// `ebs-workloads` for the per-program activity vectors).
    pub fn ground_truth_weights() -> Self {
        let mut w = [0.0; N_EVENTS];
        w[EventKind::Cycles.index()] = 6.0;
        w[EventKind::UopsRetired.index()] = 7.0;
        w[EventKind::FpUops.index()] = 11.0;
        w[EventKind::MemLoads.index()] = 3.5;
        w[EventKind::MemStores.index()] = 4.5;
        w[EventKind::L2References.index()] = 25.0;
        w[EventKind::L2Misses.index()] = 70.0;
        w[EventKind::BusTransactions.index()] = 110.0;
        w[EventKind::BranchMispredictions.index()] = 55.0;
        EnergyModel { weights_nj: w }
    }

    /// The raw weights in nanojoules, index order of [`EventKind::ALL`].
    pub const fn weights_nj(&self) -> &[f64; N_EVENTS] {
        &self.weights_nj
    }

    /// Evaluates Eq. 1: the energy attributed to the given counter
    /// deltas.
    pub fn estimate(&self, counts: &EventCounts) -> Joules {
        let mut nanojoules = 0.0;
        for (i, &w) in self.weights_nj.iter().enumerate() {
            nanojoules += w * counts.as_array()[i] as f64;
        }
        Joules(nanojoules * 1e-9)
    }

    /// The steady power of a CPU continuously executing activity
    /// `rates` at clock frequency `freq_hz`.
    pub fn power_for_rates(&self, rates: &EventRates, freq_hz: f64) -> Watts {
        let mut nj_per_cycle = 0.0;
        for (i, &w) in self.weights_nj.iter().enumerate() {
            nj_per_cycle += w * rates.as_array()[i];
        }
        Watts(nj_per_cycle * 1e-9 * freq_hz)
    }

    /// Mean absolute relative deviation from another model's weights,
    /// weighting each event by its weight magnitude in `self`.
    ///
    /// Used by calibration tests to quantify recovery quality.
    pub fn relative_deviation(&self, other: &EnergyModel) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..N_EVENTS {
            num += (self.weights_nj[i] - other.weights_nj[i]).abs();
            den += self.weights_nj[i].abs();
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

/// Temperature-dependent leakage power, invisible to the counters.
///
/// Real CMOS leakage grows with die temperature. A linear approximation
/// around the operating range is enough to give the counter-based
/// estimator a realistic irreducible error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeakageModel {
    /// Additional watts per kelvin above the reference temperature.
    pub watts_per_kelvin: f64,
    /// Reference temperature at which leakage is folded into the static
    /// (per-cycle) weight.
    pub reference: Celsius,
}

impl LeakageModel {
    /// The simulated processor's leakage: ~0.15 W/K above ambient.
    pub fn default_p4() -> Self {
        LeakageModel {
            watts_per_kelvin: 0.15,
            reference: Celsius::AMBIENT,
        }
    }

    /// A model with no leakage (makes the linear model exact).
    pub fn none() -> Self {
        LeakageModel {
            watts_per_kelvin: 0.0,
            reference: Celsius::AMBIENT,
        }
    }

    /// Leakage power at die temperature `t`, clamped to be non-negative.
    pub fn power(&self, t: Celsius) -> Watts {
        Watts((self.watts_per_kelvin * t.delta(self.reference)).max(0.0))
    }
}

/// The simulated processor's true power behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GroundTruth {
    /// The linear activity-to-power part (perfectly counter-observable).
    pub model: EnergyModel,
    /// The counter-invisible leakage part.
    pub leakage: LeakageModel,
    /// Power drawn while halted (`hlt`); the paper measures 13.6 W.
    pub halt_power: Watts,
    /// Core clock in hertz (2.2 GHz Xeon in the paper's testbed).
    pub freq_hz: f64,
}

impl GroundTruth {
    /// The paper-testbed processor: 2.2 GHz, 13.6 W halt power.
    pub fn p4_xeon_2200() -> Self {
        GroundTruth {
            model: EnergyModel::ground_truth_weights(),
            leakage: LeakageModel::default_p4(),
            halt_power: Watts(13.6),
            freq_hz: 2.2e9,
        }
    }

    /// A hypothetical efficiency core paired with the Xeon class on
    /// hybrid shapes: 1.6 GHz nominal clock, per-event energies scaled
    /// to ~55 % of the performance class (its supply voltage is far
    /// lower, and event energy goes with V²), a 4.5 W halt floor, and
    /// roughly half the leakage slope of the big core's die area.
    pub fn efficiency_core() -> Self {
        let mut w = *EnergyModel::ground_truth_weights().weights_nj();
        for v in &mut w {
            *v *= 0.55;
        }
        GroundTruth {
            model: EnergyModel::from_weights_nj(w),
            leakage: LeakageModel {
                watts_per_kelvin: 0.08,
                reference: Celsius::AMBIENT,
            },
            halt_power: Watts(4.5),
            freq_hz: 1.6e9,
        }
    }

    /// True power of a logical CPU running activity `rates` at die
    /// temperature `t`. `None` rates mean the CPU is halted.
    pub fn power(&self, rates: Option<&EventRates>, t: Celsius) -> Watts {
        match rates {
            Some(r) => self.model.power_for_rates(r, self.freq_hz) + self.leakage.power(t),
            None => self.halt_power,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rates::EventRates;

    #[test]
    fn zero_counts_estimate_zero_energy() {
        let m = EnergyModel::ground_truth_weights();
        assert_eq!(m.estimate(&EventCounts::ZERO), Joules::ZERO);
    }

    #[test]
    fn estimate_is_linear_in_counts() {
        let m = EnergyModel::ground_truth_weights();
        let rates = EventRates::builder()
            .uops_retired(2.0)
            .mem_loads(0.5)
            .build();
        let once = m.estimate(&rates.counts_for_cycles(1_000_000));
        let thrice = m.estimate(&rates.counts_for_cycles(3_000_000));
        assert!((thrice.0 - 3.0 * once.0).abs() < 1e-9);
    }

    #[test]
    fn power_matches_energy_rate() {
        // Power for rates should equal energy of one second of counts.
        let m = EnergyModel::ground_truth_weights();
        let rates = EventRates::builder()
            .uops_retired(1.7)
            .l2_references(0.01)
            .build();
        let freq = 2.2e9;
        let p = m.power_for_rates(&rates, freq);
        let e = m.estimate(&rates.counts_for_cycles(freq as u64));
        assert!((p.0 - e.0).abs() < 1e-6, "{p:?} vs {e:?}");
    }

    #[test]
    fn idle_cycle_power_is_static_floor() {
        // A CPU spinning without retiring anything burns the per-cycle
        // static power: 6 nJ * 2.2 GHz = 13.2 W.
        let m = EnergyModel::ground_truth_weights();
        let idle = EventRates::builder().build();
        let p = m.power_for_rates(&idle, 2.2e9);
        assert!((p.0 - 13.2).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn leakage_grows_with_temperature_and_clamps() {
        let leak = LeakageModel::default_p4();
        assert_eq!(leak.power(Celsius::AMBIENT), Watts::ZERO);
        let hot = leak.power(Celsius(42.0));
        assert!((hot.0 - 3.0).abs() < 1e-9, "{hot:?}");
        assert_eq!(leak.power(Celsius(10.0)), Watts::ZERO);
        assert_eq!(LeakageModel::none().power(Celsius(80.0)), Watts::ZERO);
    }

    #[test]
    fn ground_truth_halt_power() {
        let gt = GroundTruth::p4_xeon_2200();
        assert_eq!(gt.power(None, Celsius(45.0)), Watts(13.6));
    }

    #[test]
    fn ground_truth_running_power_includes_leakage() {
        let gt = GroundTruth::p4_xeon_2200();
        let rates = EventRates::builder().uops_retired(2.0).build();
        let cool = gt.power(Some(&rates), Celsius::AMBIENT);
        let warm = gt.power(Some(&rates), Celsius(42.0));
        assert!(warm > cool);
        assert!((warm.0 - cool.0 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn efficiency_core_is_cheaper_per_event_and_slower() {
        let p = GroundTruth::p4_xeon_2200();
        let e = GroundTruth::efficiency_core();
        assert!(e.freq_hz < p.freq_hz);
        assert!(e.halt_power < p.halt_power);
        assert!(e.leakage.watts_per_kelvin < p.leakage.watts_per_kelvin);
        let rates = EventRates::builder().uops_retired(2.0).build();
        // Same activity vector: the E core burns less power both from
        // the cheaper events and the slower clock.
        let pe = e.model.power_for_rates(&rates, e.freq_hz);
        let pp = p.model.power_for_rates(&rates, p.freq_hz);
        assert!(pe.0 < 0.5 * pp.0, "{pe:?} vs {pp:?}");
        // Energy per fixed work (counts, not rates) is ~55 %.
        let counts = rates.counts_for_cycles(1_000_000);
        let ratio = e.model.estimate(&counts).0 / p.model.estimate(&counts).0;
        assert!((ratio - 0.55).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn relative_deviation_zero_for_identical() {
        let m = EnergyModel::ground_truth_weights();
        assert_eq!(m.relative_deviation(&m), 0.0);
        let mut w = *m.weights_nj();
        for v in &mut w {
            *v *= 1.1;
        }
        let off = EnergyModel::from_weights_nj(w);
        let dev = m.relative_deviation(&off);
        assert!((dev - 0.1).abs() < 1e-9, "{dev}");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_weight_rejected() {
        let mut w = [0.0; N_EVENTS];
        w[3] = f64::NAN;
        let _ = EnergyModel::from_weights_nj(w);
    }
}
