//! Simulated event-monitoring counters and counter-based energy
//! estimation.
//!
//! Merkel & Bellosa estimate the energy a CPU spends during an interval
//! as a linear combination of event-monitoring counter values (Eq. 1):
//!
//! ```text
//! E = sum(i = 1..n) a_i * c_i
//! ```
//!
//! where `c_i` is the number of occurrences of event `i` during the
//! interval and `a_i` is a per-event energy weight calibrated against a
//! multimeter. This crate provides the whole pipeline in simulation:
//!
//! - [`EventKind`]/[`EventCounts`]: the counted events, modelled after
//!   the Pentium 4 event set used by the paper's estimator.
//! - [`EventRates`]: per-cycle event rates; a program phase is described
//!   by such a vector, and executing `n` cycles accrues `rate * n`
//!   events into a [`CounterBank`].
//! - [`EnergyModel`]: weights `a_i` plus the evaluation of Eq. 1. The
//!   simulator's *ground-truth* model and the estimator's *calibrated*
//!   model are both instances of this type.
//! - [`calibration`]: recovers weights from noisy "multimeter" readings
//!   by least squares, reproducing the <10 % estimation error regime the
//!   paper reports for the real implementation.
//!
//! # Examples
//!
//! ```
//! use ebs_counters::{CounterBank, EnergyModel, EventRates};
//!
//! let model = EnergyModel::ground_truth_weights();
//! let mut bank = CounterBank::new();
//! let rates = EventRates::builder()
//!     .uops_retired(2.0)
//!     .mem_loads(0.3)
//!     .build();
//! // Execute 2.2e9 cycles (one second at 2.2 GHz) worth of this phase.
//! bank.record(&rates.counts_for_cycles(2_200_000_000));
//! let energy = model.estimate(&bank.snapshot().counts());
//! assert!(energy.0 > 0.0);
//! ```

mod counter;
mod energy_model;
mod event;
mod rates;

pub mod calibration;
pub mod linalg;

pub use counter::{CounterBank, CounterSnapshot};
pub use energy_model::{EnergyModel, GroundTruth, LeakageModel};
pub use event::{EventCounts, EventKind, N_EVENTS};
pub use rates::EventRates;
