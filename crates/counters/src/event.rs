//! The set of counted processor events.
//!
//! The paper's estimator runs on a Pentium 4 and counts a fixed set of
//! events that correlate with energy-relevant chip activity. We model a
//! nine-event set: elapsed unhalted cycles (which folds the static,
//! activity-independent part of the power into the linear model, as in
//! Bellosa's event-driven accounting) plus eight activity events.

use core::fmt;
use core::ops::{Add, AddAssign, Index, IndexMut, Sub};

/// Number of simultaneously counted events.
pub const N_EVENTS: usize = 9;

/// A processor event observable through the event-monitoring counters.
///
/// The discriminants double as indices into [`EventCounts`] and
/// [`crate::EventRates`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(usize)]
pub enum EventKind {
    /// Unhalted clock cycles. Carries the static (per-cycle) power.
    Cycles = 0,
    /// Retired micro-operations; the bulk of dynamic integer power.
    UopsRetired = 1,
    /// Retired floating-point micro-operations (x87/SSE).
    FpUops = 2,
    /// Retired load micro-operations hitting the L1.
    MemLoads = 3,
    /// Retired store micro-operations.
    MemStores = 4,
    /// L2 cache references (L1 misses).
    L2References = 5,
    /// L2 cache misses.
    L2Misses = 6,
    /// Front-side-bus transactions (memory traffic).
    BusTransactions = 7,
    /// Mispredicted branches (pipeline flush energy).
    BranchMispredictions = 8,
}

impl EventKind {
    /// All events, in index order.
    pub const ALL: [EventKind; N_EVENTS] = [
        EventKind::Cycles,
        EventKind::UopsRetired,
        EventKind::FpUops,
        EventKind::MemLoads,
        EventKind::MemStores,
        EventKind::L2References,
        EventKind::L2Misses,
        EventKind::BusTransactions,
        EventKind::BranchMispredictions,
    ];

    /// The event's index into count/rate vectors.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// A short mnemonic resembling the hardware event name.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            EventKind::Cycles => "global_power_events",
            EventKind::UopsRetired => "uops_retired",
            EventKind::FpUops => "x87_fp_uop",
            EventKind::MemLoads => "ld_port_replay",
            EventKind::MemStores => "st_port_replay",
            EventKind::L2References => "bsq_cache_reference",
            EventKind::L2Misses => "bsq_cache_miss",
            EventKind::BusTransactions => "fsb_data_activity",
            EventKind::BranchMispredictions => "mispred_branch_retired",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A vector of event occurrence counts, one entry per [`EventKind`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EventCounts([u64; N_EVENTS]);

impl EventCounts {
    /// The all-zero count vector.
    pub const ZERO: EventCounts = EventCounts([0; N_EVENTS]);

    /// Creates counts from a raw array (index order of [`EventKind::ALL`]).
    pub const fn from_array(counts: [u64; N_EVENTS]) -> Self {
        EventCounts(counts)
    }

    /// The raw array, in index order.
    pub const fn as_array(&self) -> &[u64; N_EVENTS] {
        &self.0
    }

    /// Count for one event.
    pub fn get(&self, kind: EventKind) -> u64 {
        self.0[kind.index()]
    }

    /// Total number of events across all kinds (useful as a cheap
    /// activity proxy in tests).
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Whether every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Component-wise saturating difference `self - earlier`.
    ///
    /// Counter reads are monotone within one accounting interval, but a
    /// counter bank may be reset between snapshots; saturation keeps the
    /// difference well-defined in that case.
    pub fn saturating_sub(&self, earlier: &EventCounts) -> EventCounts {
        let mut out = [0u64; N_EVENTS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i].saturating_sub(earlier.0[i]);
        }
        EventCounts(out)
    }
}

impl Index<EventKind> for EventCounts {
    type Output = u64;
    fn index(&self, kind: EventKind) -> &u64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<EventKind> for EventCounts {
    fn index_mut(&mut self, kind: EventKind) -> &mut u64 {
        &mut self.0[kind.index()]
    }
}

impl Add for EventCounts {
    type Output = EventCounts;
    fn add(self, rhs: EventCounts) -> EventCounts {
        let mut out = [0u64; N_EVENTS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i] + rhs.0[i];
        }
        EventCounts(out)
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, rhs: EventCounts) {
        for i in 0..N_EVENTS {
            self.0[i] += rhs.0[i];
        }
    }
}

impl Sub for EventCounts {
    type Output = EventCounts;
    /// Component-wise difference.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any component underflows; use
    /// [`EventCounts::saturating_sub`] across bank resets.
    fn sub(self, rhs: EventCounts) -> EventCounts {
        let mut out = [0u64; N_EVENTS];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.0[i] - rhs.0[i];
        }
        EventCounts(out)
    }
}

impl ebs_store::Snapshot for EventCounts {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        for &c in self.as_array() {
            w.u64(c);
        }
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let mut counts = [0u64; N_EVENTS];
        for slot in &mut counts {
            *slot = r.u64()?;
        }
        *self = EventCounts::from_array(counts);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_index_once() {
        let mut seen = [false; N_EVENTS];
        for kind in EventKind::ALL {
            assert!(!seen[kind.index()], "duplicate index {}", kind.index());
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mnemonics_are_unique() {
        for (i, a) in EventKind::ALL.iter().enumerate() {
            for b in &EventKind::ALL[i + 1..] {
                assert_ne!(a.mnemonic(), b.mnemonic());
            }
        }
    }

    #[test]
    fn indexing_round_trips() {
        let mut counts = EventCounts::ZERO;
        counts[EventKind::L2Misses] = 42;
        assert_eq!(counts.get(EventKind::L2Misses), 42);
        assert_eq!(counts[EventKind::L2Misses], 42);
        assert_eq!(counts.get(EventKind::Cycles), 0);
    }

    #[test]
    fn addition_and_total() {
        let a = EventCounts::from_array([1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let b = EventCounts::from_array([9, 8, 7, 6, 5, 4, 3, 2, 1]);
        let sum = a + b;
        assert_eq!(sum.as_array(), &[10; N_EVENTS]);
        assert_eq!(sum.total(), 90);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, sum);
    }

    #[test]
    fn subtraction_and_saturation() {
        let a = EventCounts::from_array([5, 5, 5, 5, 5, 5, 5, 5, 5]);
        let b = EventCounts::from_array([1, 2, 3, 4, 5, 0, 0, 0, 0]);
        assert_eq!(a - b, EventCounts::from_array([4, 3, 2, 1, 0, 5, 5, 5, 5]));
        // Saturating difference across a reset (b "after", a "before").
        assert_eq!(
            b.saturating_sub(&a),
            EventCounts::from_array([0, 0, 0, 0, 0, 0, 0, 0, 0])
        );
    }

    #[test]
    fn zero_predicate() {
        assert!(EventCounts::ZERO.is_zero());
        assert!(!EventCounts::from_array([0, 0, 0, 1, 0, 0, 0, 0, 0]).is_zero());
    }
}
