//! Per-CPU counter banks.
//!
//! Each simulated logical CPU owns one [`CounterBank`]. The execution
//! engine records events into the bank as the CPU runs; the energy
//! estimator reads the bank *on every task switch and at the end of each
//! timeslice* (paper Section 5) and attributes the difference since the
//! previous read to the task that just ran.

use crate::event::EventCounts;

/// The event-monitoring counter registers of one logical CPU.
///
/// Counts are cumulative since the last [`CounterBank::reset`]. Hardware
/// counters wrap; at 64 bits a 2.2 GHz CPU would need centuries to wrap,
/// so the simulation treats counters as non-wrapping and the snapshot
/// diff uses saturating arithmetic purely as a defensive measure.
#[derive(Clone, Debug, Default)]
pub struct CounterBank {
    counts: EventCounts,
    reads: u64,
}

/// A point-in-time copy of a counter bank's registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    counts: EventCounts,
}

impl CounterBank {
    /// Creates a zeroed counter bank.
    pub fn new() -> Self {
        CounterBank::default()
    }

    /// Accumulates events observed during a stretch of execution.
    pub fn record(&mut self, events: &EventCounts) {
        self.counts += *events;
    }

    /// Reads the current register values without disturbing them.
    pub fn snapshot(&mut self) -> CounterSnapshot {
        self.reads += 1;
        CounterSnapshot {
            counts: self.counts,
        }
    }

    /// Number of snapshot reads since creation; the estimation overhead
    /// accounting in the simulator charges a fixed cost per read.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Clears all registers.
    pub fn reset(&mut self) {
        self.counts = EventCounts::ZERO;
    }
}

impl CounterSnapshot {
    /// A snapshot with all registers zero, for seeding the "previous
    /// read" at CPU bring-up.
    pub const ZERO: CounterSnapshot = CounterSnapshot {
        counts: EventCounts::ZERO,
    };

    /// The raw register values.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// Events that occurred between `earlier` and `self`.
    pub fn since(&self, earlier: &CounterSnapshot) -> EventCounts {
        self.counts.saturating_sub(&earlier.counts)
    }
}

impl ebs_store::Snapshot for CounterBank {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        self.counts.save(w);
        w.u64(self.reads);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.counts.restore(r)?;
        self.reads = r.u64()?;
        Ok(())
    }
}

impl ebs_store::Snapshot for CounterSnapshot {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        self.counts.save(w);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.counts.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventCounts, EventKind};

    fn counts(cycles: u64, uops: u64) -> EventCounts {
        let mut c = EventCounts::ZERO;
        c[EventKind::Cycles] = cycles;
        c[EventKind::UopsRetired] = uops;
        c
    }

    #[test]
    fn record_accumulates() {
        let mut bank = CounterBank::new();
        bank.record(&counts(100, 200));
        bank.record(&counts(50, 25));
        let snap = bank.snapshot();
        assert_eq!(snap.counts().get(EventKind::Cycles), 150);
        assert_eq!(snap.counts().get(EventKind::UopsRetired), 225);
    }

    #[test]
    fn snapshot_diff_attributes_interval() {
        let mut bank = CounterBank::new();
        bank.record(&counts(100, 200));
        let first = bank.snapshot();
        bank.record(&counts(70, 10));
        let second = bank.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.get(EventKind::Cycles), 70);
        assert_eq!(delta.get(EventKind::UopsRetired), 10);
    }

    #[test]
    fn diff_across_reset_saturates() {
        let mut bank = CounterBank::new();
        bank.record(&counts(100, 100));
        let before = bank.snapshot();
        bank.reset();
        bank.record(&counts(10, 10));
        let after = bank.snapshot();
        // The interval spans a reset: saturating diff yields zeros
        // rather than wrapping garbage.
        assert!(after.since(&before).is_zero());
    }

    #[test]
    fn read_count_tracks_snapshots() {
        let mut bank = CounterBank::new();
        assert_eq!(bank.reads(), 0);
        let _ = bank.snapshot();
        let _ = bank.snapshot();
        assert_eq!(bank.reads(), 2);
    }

    #[test]
    fn zero_snapshot_is_identity_baseline() {
        let mut bank = CounterBank::new();
        bank.record(&counts(5, 7));
        let snap = bank.snapshot();
        assert_eq!(snap.since(&CounterSnapshot::ZERO), snap.counts());
    }
}
