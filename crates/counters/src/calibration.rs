//! Weight calibration: recovering the per-event energies from
//! "multimeter" measurements.
//!
//! The paper calibrates the weights `a_i` of Eq. 1 by running test
//! applications, measuring true consumption with a multimeter, counting
//! events, and solving the resulting linear equations. This module
//! reproduces that procedure against the simulated ground truth:
//!
//! 1. [`synthesize_runs`] executes a spread of synthetic calibration
//!    workloads and produces (counter values, measured energy) pairs;
//!    the measurement includes multimeter noise and the
//!    counter-invisible leakage term.
//! 2. [`calibrate`] solves the least-squares system for the weights.
//! 3. [`evaluate`] quantifies the resulting estimation error, which for
//!    realistic noise levels lands below the paper's 10 % bound.

use crate::energy_model::{EnergyModel, GroundTruth};
use crate::event::{EventCounts, EventKind, N_EVENTS};
use crate::linalg::{self, LinalgError, Matrix};
use crate::rates::EventRates;
use ebs_units::{Celsius, Joules, SimDuration};
use rand::Rng;

/// One calibration measurement: the events counted during a run and the
/// energy a multimeter attributed to it.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationRun {
    /// Counter deltas over the run.
    pub counts: EventCounts,
    /// Multimeter-measured energy over the run.
    pub measured: Joules,
}

/// Errors produced by weight calibration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CalibrationError {
    /// Fewer runs than unknown weights.
    TooFewRuns { runs: usize, needed: usize },
    /// The calibration workloads do not span the event space.
    DegenerateDesign(LinalgError),
}

impl core::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CalibrationError::TooFewRuns { runs, needed } => {
                write!(
                    f,
                    "{runs} calibration runs cannot determine {needed} weights"
                )
            }
            CalibrationError::DegenerateDesign(e) => {
                write!(f, "calibration workloads are degenerate: {e}")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Quality metrics of a calibrated model against a set of runs.
#[derive(Clone, Copy, Debug)]
pub struct CalibrationReport {
    /// Root-mean-square relative energy error across the runs.
    pub rms_relative_error: f64,
    /// Worst-case relative energy error.
    pub max_relative_error: f64,
}

/// Generates `n_runs` calibration measurements against the ground truth.
///
/// Each run executes a random activity mix for `duration`, at an
/// operating temperature drawn from the realistic range, and reads the
/// "multimeter" with multiplicative noise of the given relative
/// magnitude (1 % is typical bench equipment).
///
/// # Panics
///
/// Panics if `duration` is zero or `noise` is negative.
pub fn synthesize_runs<R: Rng>(
    truth: &GroundTruth,
    n_runs: usize,
    duration: SimDuration,
    noise: f64,
    rng: &mut R,
) -> Vec<CalibrationRun> {
    assert!(!duration.is_zero(), "calibration runs need a duration");
    assert!(noise >= 0.0, "noise magnitude must be non-negative");
    let cycles = (truth.freq_hz * duration.as_secs_f64()) as u64;
    (0..n_runs)
        .map(|i| {
            let rates = random_activity(i, rng);
            let counts = rates.counts_for_cycles(cycles);
            // The die warms with activity; calibration rigs run hot.
            let temp = Celsius(30.0 + rng.gen_range(0.0..14.0));
            let true_power = truth.power(Some(&rates), temp);
            let noisy = true_power.0 * (1.0 + rng.gen_range(-noise..=noise));
            CalibrationRun {
                counts,
                measured: Joules(noisy * duration.as_secs_f64()),
            }
        })
        .collect()
}

/// Draws a random but plausible activity vector.
///
/// The first [`N_EVENTS`] runs are near-pure single-event microbenchmarks
/// (like the paper's synthetic calibration suite), which guarantees the
/// design matrix has full column rank; later runs are mixed workloads.
fn random_activity<R: Rng>(index: usize, rng: &mut R) -> EventRates {
    let mut rates = [0.0; N_EVENTS];
    rates[EventKind::Cycles.index()] = 1.0;
    let maxima = activity_maxima();
    if index > 0 && index < N_EVENTS {
        // Stress one event class, mildly exercise uops.
        rates[index] = maxima[index] * rng.gen_range(0.6..1.0);
        if index != EventKind::UopsRetired.index() {
            rates[EventKind::UopsRetired.index()] = rng.gen_range(0.1..0.4);
        }
    } else {
        for (i, slot) in rates.iter_mut().enumerate().skip(1) {
            *slot = maxima[i] * rng.gen_range(0.0..1.0);
        }
    }
    EventRates::from_array(rates)
}

/// Per-event maximum plausible rates (events per cycle).
fn activity_maxima() -> [f64; N_EVENTS] {
    let mut m = [0.0; N_EVENTS];
    m[EventKind::Cycles.index()] = 1.0;
    m[EventKind::UopsRetired.index()] = 3.0;
    m[EventKind::FpUops.index()] = 1.0;
    m[EventKind::MemLoads.index()] = 1.0;
    m[EventKind::MemStores.index()] = 0.6;
    m[EventKind::L2References.index()] = 0.08;
    m[EventKind::L2Misses.index()] = 0.04;
    m[EventKind::BusTransactions.index()] = 0.05;
    m[EventKind::BranchMispredictions.index()] = 0.03;
    m
}

/// Recovers an [`EnergyModel`] from calibration runs by least squares.
///
/// # Errors
///
/// Returns [`CalibrationError::TooFewRuns`] with fewer runs than
/// unknowns, or [`CalibrationError::DegenerateDesign`] when the runs do
/// not span the event space.
pub fn calibrate(runs: &[CalibrationRun]) -> Result<EnergyModel, CalibrationError> {
    if runs.len() < N_EVENTS {
        return Err(CalibrationError::TooFewRuns {
            runs: runs.len(),
            needed: N_EVENTS,
        });
    }
    // Work in units of (events * 1e9, joules) so the weights come out in
    // nanojoules directly and the Gram matrix stays well-scaled.
    let rows: Vec<Vec<f64>> = runs
        .iter()
        .map(|run| {
            run.counts
                .as_array()
                .iter()
                .map(|&c| c as f64 * 1e-9)
                .collect()
        })
        .collect();
    let design = Matrix::from_rows(&rows);
    let rhs: Vec<f64> = runs.iter().map(|r| r.measured.0).collect();
    let weights =
        linalg::least_squares(&design, &rhs).map_err(CalibrationError::DegenerateDesign)?;
    let mut arr = [0.0; N_EVENTS];
    arr.copy_from_slice(&weights);
    Ok(EnergyModel::from_weights_nj(arr))
}

/// Measures how well `model` predicts the measured energies of `runs`.
pub fn evaluate(model: &EnergyModel, runs: &[CalibrationRun]) -> CalibrationReport {
    let mut sum_sq = 0.0;
    let mut max = 0.0_f64;
    let mut n = 0usize;
    for run in runs {
        if run.measured.0 == 0.0 {
            continue;
        }
        let predicted = model.estimate(&run.counts);
        let rel = ((predicted.0 - run.measured.0) / run.measured.0).abs();
        sum_sq += rel * rel;
        max = max.max(rel);
        n += 1;
    }
    CalibrationReport {
        rms_relative_error: if n == 0 {
            0.0
        } else {
            (sum_sq / n as f64).sqrt()
        },
        max_relative_error: max,
    }
}

/// Convenience: synthesize, calibrate, and return the calibrated model,
/// using the standard rig (40 runs of 1 s, 1 % multimeter noise).
///
/// This is the model the simulated kernel boots with.
pub fn standard_calibration<R: Rng>(truth: &GroundTruth, rng: &mut R) -> EnergyModel {
    let runs = synthesize_runs(truth, 40, SimDuration::from_secs(1), 0.01, rng);
    calibrate(&runs).expect("standard calibration rig is well-posed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn truth() -> GroundTruth {
        GroundTruth::p4_xeon_2200()
    }

    #[test]
    fn noise_free_leakage_free_calibration_is_exact() {
        let mut gt = truth();
        gt.leakage = crate::LeakageModel::none();
        let mut rng = StdRng::seed_from_u64(7);
        let runs = synthesize_runs(&gt, 30, SimDuration::from_secs(1), 0.0, &mut rng);
        let model = calibrate(&runs).unwrap();
        let dev = gt.model.relative_deviation(&model);
        assert!(dev < 1e-6, "deviation {dev}");
    }

    #[test]
    fn realistic_calibration_is_under_ten_percent() {
        // The paper reports <10 % estimation error for real workloads.
        let gt = truth();
        let mut rng = StdRng::seed_from_u64(42);
        let model = standard_calibration(&gt, &mut rng);
        let fresh = synthesize_runs(&gt, 50, SimDuration::from_secs(1), 0.0, &mut rng);
        let report = evaluate(&model, &fresh);
        assert!(
            report.max_relative_error < 0.10,
            "max error {}",
            report.max_relative_error
        );
        assert!(
            report.rms_relative_error < 0.05,
            "rms error {}",
            report.rms_relative_error
        );
    }

    #[test]
    fn calibration_error_is_not_zero_with_leakage() {
        // Leakage is invisible to counters, so some bias must remain.
        let gt = truth();
        let mut rng = StdRng::seed_from_u64(3);
        let model = standard_calibration(&gt, &mut rng);
        let dev = gt.model.relative_deviation(&model);
        assert!(dev > 1e-4, "calibration suspiciously exact: {dev}");
    }

    #[test]
    fn too_few_runs_rejected() {
        let gt = truth();
        let mut rng = StdRng::seed_from_u64(1);
        let runs = synthesize_runs(&gt, 4, SimDuration::from_secs(1), 0.0, &mut rng);
        assert_eq!(
            calibrate(&runs),
            Err(CalibrationError::TooFewRuns {
                runs: 4,
                needed: N_EVENTS
            })
        );
    }

    #[test]
    fn degenerate_design_rejected() {
        // All runs identical: rank 1 design matrix.
        let run = CalibrationRun {
            counts: EventRates::builder()
                .uops_retired(1.0)
                .build()
                .counts_for_cycles(1_000_000),
            measured: Joules(0.05),
        };
        let runs = vec![run; 20];
        assert!(matches!(
            calibrate(&runs),
            Err(CalibrationError::DegenerateDesign(_))
        ));
    }

    #[test]
    fn evaluate_on_perfect_model_reports_zero() {
        let mut gt = truth();
        gt.leakage = crate::LeakageModel::none();
        let mut rng = StdRng::seed_from_u64(11);
        let runs = synthesize_runs(&gt, 20, SimDuration::from_secs(1), 0.0, &mut rng);
        // Counter counts are rounded to whole events, so the error is
        // not exactly zero, only vanishingly small.
        let report = evaluate(&gt.model, &runs);
        assert!(report.max_relative_error < 1e-6);
        assert!(report.rms_relative_error < 1e-6);
    }

    #[test]
    fn error_messages() {
        let e = CalibrationError::TooFewRuns { runs: 2, needed: 9 };
        assert_eq!(
            e.to_string(),
            "2 calibration runs cannot determine 9 weights"
        );
    }
}
