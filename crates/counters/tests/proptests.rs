//! Property-based tests for the counter and calibration machinery.

use ebs_counters::{
    calibration, linalg, CounterBank, EnergyModel, EventCounts, EventRates, GroundTruth,
    LeakageModel, N_EVENTS,
};
use ebs_units::SimDuration;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Gaussian elimination actually solves the system: for random
    /// diagonally dominant (hence well-conditioned) matrices,
    /// `a * solve(a, b) == b` up to rounding.
    #[test]
    fn solve_satisfies_the_system(
        n in 1usize..7,
        entries in prop::collection::vec(-10.0f64..10.0, 49),
        rhs in prop::collection::vec(-100.0f64..100.0, 7),
    ) {
        let mut a = linalg::Matrix::zeros(n, n);
        for r in 0..n {
            let mut off_diag = 0.0;
            for c in 0..n {
                if r != c {
                    let v = entries[r * 7 + c];
                    a.set(r, c, v);
                    off_diag += v.abs();
                }
            }
            // Diagonal dominance guarantees solvability.
            a.set(r, r, off_diag + 1.0);
        }
        let b: Vec<f64> = rhs[..n].to_vec();
        let x = linalg::solve(a.clone(), b.clone()).expect("dominant matrix is regular");
        let back = a.mul_vec(&x).unwrap();
        for (lhs, rhs) in back.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
        }
    }

    /// Eq. 1 is linear: estimating the sum of two count vectors equals
    /// the sum of the estimates.
    #[test]
    fn estimation_is_additive(
        a in prop::collection::vec(0u64..1_000_000, N_EVENTS),
        b in prop::collection::vec(0u64..1_000_000, N_EVENTS),
    ) {
        let model = EnergyModel::ground_truth_weights();
        let mut ca = [0u64; N_EVENTS];
        let mut cb = [0u64; N_EVENTS];
        ca.copy_from_slice(&a);
        cb.copy_from_slice(&b);
        let ca = EventCounts::from_array(ca);
        let cb = EventCounts::from_array(cb);
        let separate = model.estimate(&ca).0 + model.estimate(&cb).0;
        let together = model.estimate(&(ca + cb)).0;
        prop_assert!((separate - together).abs() < 1e-9);
    }

    /// Counter snapshots attribute intervals exactly: recording in any
    /// chunking produces the same total counts.
    #[test]
    fn counter_accumulation_is_chunking_invariant(
        uops_rate in 0.0f64..3.0,
        chunks in prop::collection::vec(1u64..1_000_000, 1..10),
    ) {
        let rates = EventRates::builder().uops_retired(uops_rate).build();
        let total: u64 = chunks.iter().sum();
        let mut chunked = CounterBank::new();
        for &c in &chunks {
            chunked.record(&rates.counts_for_cycles(c));
        }
        let mut whole = CounterBank::new();
        whole.record(&rates.counts_for_cycles(total));
        let diff = chunked.snapshot().counts().get(ebs_counters::EventKind::UopsRetired) as i64
            - whole.snapshot().counts().get(ebs_counters::EventKind::UopsRetired) as i64;
        // Rounding once per chunk can drift by at most half an event
        // per chunk.
        prop_assert!(diff.unsigned_abs() <= chunks.len() as u64);
    }

    /// Noise-free calibration recovers the weights for any leakage-free
    /// ground truth scaled within a plausible range.
    #[test]
    fn calibration_recovers_scaled_truths(scale in 0.5f64..2.0, seed in 0u64..500) {
        let mut weights = *EnergyModel::ground_truth_weights().weights_nj();
        for w in &mut weights {
            *w *= scale;
        }
        let truth = GroundTruth {
            model: EnergyModel::from_weights_nj(weights),
            leakage: LeakageModel::none(),
            halt_power: ebs_units::Watts(13.6),
            freq_hz: 2.2e9,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let runs = calibration::synthesize_runs(&truth, 30, SimDuration::from_secs(1), 0.0, &mut rng);
        let model = calibration::calibrate(&runs).unwrap();
        prop_assert!(truth.model.relative_deviation(&model) < 1e-4);
    }

    /// Activity scaling never touches the cycle self-count and scales
    /// all other rates linearly.
    #[test]
    fn scale_activity_is_linear(factor in 0.0f64..2.0, uops in 0.0f64..3.0) {
        let base = EventRates::builder().uops_retired(uops).build();
        let scaled = base.scale_activity(factor);
        prop_assert_eq!(scaled.get(ebs_counters::EventKind::Cycles), 1.0);
        prop_assert!(
            (scaled.get(ebs_counters::EventKind::UopsRetired) - uops * factor).abs() < 1e-12
        );
    }
}
