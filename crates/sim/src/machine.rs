//! The physical machine: ground-truth power, per-package thermal
//! nodes, counter banks, and throttle controllers.

use crate::config::{MaxPowerSpec, SimConfig};
use ebs_counters::{CounterBank, GroundTruth};
use ebs_dvfs::{FrequencyDomain, PStateTable};
use ebs_thermal::{RcThermalModel, ThermalNode, ThrottleController};
use ebs_topology::{CpuId, PackageId, Topology};
use ebs_units::{Celsius, Hertz, Volts, Watts};

/// The hardware-side state of the simulated machine.
#[derive(Clone, Debug)]
pub struct PhysicalMachine {
    truth: GroundTruth,
    /// Per-logical-CPU event counter banks.
    pub banks: Vec<CounterBank>,
    /// Per-package thermal state.
    pub thermals: Vec<ThermalNode>,
    /// Per-*package* throttle controllers: only physical processors
    /// overheat, so `hlt` enforcement compares the package's thermal
    /// power sum against the package budget and halts all its hardware
    /// threads together (the paper's "this processor would have to be
    /// throttled 33 % of the time to enforce the 40 W limit").
    pub throttles: Vec<ThrottleController>,
    /// Per-*package* frequency domains: SMT siblings share one clock
    /// and one voltage plane, just as they share one thermal budget.
    /// Without DVFS every domain has a single nominal P-state.
    pub freq_domains: Vec<FrequencyDomain>,
    max_power_per_logical: Vec<Watts>,
    threads_per_package: usize,
}

impl PhysicalMachine {
    /// Builds the machine for a configuration and topology.
    ///
    /// # Panics
    ///
    /// Panics if `cooling_factors` is non-empty but does not match the
    /// package count.
    pub fn new(cfg: &SimConfig, topo: &Topology) -> Self {
        let truth = GroundTruth::p4_xeon_2200();
        let n_packages = topo.n_packages();
        let n_cpus = topo.n_cpus();
        let threads = topo.threads_per_package();

        let factors: Vec<f64> = if cfg.cooling_factors.is_empty() {
            vec![1.0; n_packages]
        } else {
            assert_eq!(
                cfg.cooling_factors.len(),
                n_packages,
                "need one cooling factor per package"
            );
            cfg.cooling_factors.clone()
        };
        let models: Vec<RcThermalModel> = factors
            .iter()
            .map(|&f| RcThermalModel::reference().with_cooling_factor(f))
            .collect();

        // Derive the per-logical budgets.
        let max_power_per_logical: Vec<Watts> = (0..n_cpus)
            .map(|c| {
                let pkg = topo.package_of(CpuId(c));
                match &cfg.max_power {
                    MaxPowerSpec::PerLogical(w) => *w,
                    MaxPowerSpec::PerPackage(w) => *w / threads as f64,
                    MaxPowerSpec::FromThermalLimit(limit) => {
                        models[pkg.0].max_power_for_limit(*limit) / threads as f64
                    }
                }
            })
            .collect();

        // Package budget = sum of its logical budgets.
        let throttles = (0..n_packages)
            .map(|p| {
                let budget: Watts = (0..n_cpus)
                    .filter(|&c| topo.package_of(CpuId(c)) == PackageId(p))
                    .map(|c| max_power_per_logical[c])
                    .sum();
                ThrottleController::new(budget)
            })
            .collect();
        // The scaling ladder; a machine without DVFS support is a
        // single-state ladder pinned at the nominal clock.
        let table = match &cfg.dvfs {
            Some(spec) => spec.table.clone(),
            None => PStateTable::nominal_only(Hertz(cfg.freq_hz), Volts(1.5)),
        };
        let freq_domains = (0..n_packages)
            .map(|_| FrequencyDomain::new(table.clone()))
            .collect();
        PhysicalMachine {
            truth,
            banks: (0..n_cpus).map(|_| CounterBank::new()).collect(),
            thermals: models.into_iter().map(ThermalNode::new).collect(),
            throttles,
            freq_domains,
            max_power_per_logical,
            threads_per_package: threads,
        }
    }

    /// The ground-truth power model.
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// The budget of one logical CPU.
    pub fn max_power(&self, cpu: CpuId) -> Watts {
        self.max_power_per_logical[cpu.0]
    }

    /// All per-logical budgets.
    pub fn max_powers(&self) -> &[Watts] {
        &self.max_power_per_logical
    }

    /// Package halt power attributed to one logical CPU.
    pub fn halt_power_share(&self) -> Watts {
        self.truth.halt_power / self.threads_per_package as f64
    }

    /// Die temperature of a package.
    pub fn package_temp(&self, pkg: PackageId) -> Celsius {
        self.thermals[pkg.0].temperature()
    }

    /// The frequency domain of a package.
    pub fn freq_domain(&self, pkg: PackageId) -> &FrequencyDomain {
        &self.freq_domains[pkg.0]
    }

    /// Current effective clock of a package.
    pub fn package_frequency(&self, pkg: PackageId) -> Hertz {
        self.freq_domains[pkg.0].frequency()
    }
}

impl ebs_store::Snapshot for PhysicalMachine {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.key("machine");
        w.seq(&self.banks, |w, b| b.save(w));
        w.seq(&self.thermals, |w, t| t.save(w));
        w.seq(&self.throttles, |w, t| t.save(w));
        w.seq(&self.freq_domains, |w, d| d.save(w));
    }

    /// Restores into a machine freshly built from the same config and
    /// topology; the ground-truth model and budget tables are
    /// config-derived and stay as constructed.
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        r.key("machine")?;
        restore_shaped(r, &mut self.banks, "counter banks")?;
        restore_shaped(r, &mut self.thermals, "thermal nodes")?;
        restore_shaped(r, &mut self.throttles, "throttle controllers")?;
        restore_shaped(r, &mut self.freq_domains, "frequency domains")
    }
}

/// Restores a fixed-shape table of snapshot sections, rejecting a
/// count mismatch (a snapshot from a differently shaped machine).
fn restore_shaped<T: ebs_store::Snapshot>(
    r: &mut ebs_store::StateReader<'_>,
    items: &mut [T],
    what: &str,
) -> Result<(), ebs_store::StoreError> {
    let n = r.usize()?;
    if n != items.len() {
        return Err(ebs_store::StoreError::Invalid(format!(
            "snapshot has {n} {what}, machine has {}",
            items.len()
        )));
    }
    for item in items {
        item.restore(r)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_units::SimDuration;

    fn topo(smt: bool) -> Topology {
        Topology::xseries445(smt)
    }

    #[test]
    fn per_logical_budget_is_uniform() {
        let cfg = SimConfig::xseries445().max_power(MaxPowerSpec::PerLogical(Watts(60.0)));
        let m = PhysicalMachine::new(&cfg, &topo(true));
        assert!(m.max_powers().iter().all(|&w| w == Watts(60.0)));
    }

    #[test]
    fn per_package_budget_splits_between_siblings() {
        let cfg = SimConfig::xseries445().max_power(MaxPowerSpec::PerPackage(Watts(40.0)));
        let m = PhysicalMachine::new(&cfg, &topo(true));
        assert!(m.max_powers().iter().all(|&w| w == Watts(20.0)));
        // Without SMT the full package budget goes to the one thread.
        let cfg = SimConfig::xseries445()
            .smt(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)));
        let m = PhysicalMachine::new(&cfg, &topo(false));
        assert!(m.max_powers().iter().all(|&w| w == Watts(40.0)));
    }

    #[test]
    fn thermal_limit_budget_reflects_cooling() {
        let mut factors = vec![1.0; 8];
        factors[3] = 1.3; // Poorly cooled package 3.
        let cfg = SimConfig::xseries445()
            .smt(false)
            .cooling_factors(factors)
            .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)));
        let m = PhysicalMachine::new(&cfg, &topo(false));
        assert!(
            m.max_power(CpuId(3)) < m.max_power(CpuId(0)),
            "poor cooling must shrink the budget"
        );
        // Steady state at the budget hits the limit exactly.
        let model = RcThermalModel::reference().with_cooling_factor(1.3);
        let t = model.steady_state(m.max_power(CpuId(3)));
        assert!((t.0 - 38.0).abs() < 1e-9);
    }

    #[test]
    fn halt_power_share_splits_by_threads() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        assert!((m.halt_power_share().0 - 6.8).abs() < 1e-12);
        let m = PhysicalMachine::new(&SimConfig::xseries445().smt(false), &topo(false));
        assert!((m.halt_power_share().0 - 13.6).abs() < 1e-12);
    }

    #[test]
    fn packages_start_at_ambient() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        for p in 0..8 {
            assert_eq!(m.package_temp(PackageId(p)), Celsius::AMBIENT);
        }
    }

    #[test]
    fn throttle_limits_are_package_budgets() {
        let cfg = SimConfig::xseries445().max_power(MaxPowerSpec::PerPackage(Watts(40.0)));
        let m = PhysicalMachine::new(&cfg, &topo(true));
        assert_eq!(m.throttles.len(), 8);
        for p in 0..8 {
            // Two 20 W logical budgets sum back to the 40 W package.
            assert_eq!(m.throttles[p].limit(), Watts(40.0));
        }
    }

    #[test]
    #[should_panic(expected = "one cooling factor per package")]
    fn wrong_factor_count_rejected() {
        let cfg = SimConfig::xseries445().cooling_factors(vec![1.0; 3]);
        let _ = PhysicalMachine::new(&cfg, &topo(true));
    }

    #[test]
    fn without_dvfs_domains_are_pinned_at_nominal() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        assert_eq!(m.freq_domains.len(), 8);
        for p in 0..8 {
            let dom = m.freq_domain(PackageId(p));
            assert_eq!(dom.table().len(), 1);
            assert_eq!(m.package_frequency(PackageId(p)), Hertz::from_ghz(2.2));
            assert_eq!(dom.speed_factor(), 1.0);
        }
    }

    #[test]
    fn with_dvfs_domains_carry_the_configured_table() {
        let cfg = SimConfig::xseries445().dvfs(crate::DvfsSpec::default());
        let m = PhysicalMachine::new(&cfg, &topo(true));
        for p in 0..8 {
            assert_eq!(m.freq_domain(PackageId(p)).table().len(), 6);
            // Domains start at the nominal state.
            assert_eq!(m.package_frequency(PackageId(p)), Hertz::from_ghz(2.2));
        }
    }

    #[test]
    fn thermal_nodes_heat_independently() {
        let mut m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        m.thermals[0].step(Watts(68.0), SimDuration::from_secs(30));
        assert!(m.package_temp(PackageId(0)).0 > 35.0);
        assert_eq!(m.package_temp(PackageId(1)), Celsius::AMBIENT);
    }
}
