//! The physical machine: ground-truth power, per-package thermal
//! nodes, counter banks, and throttle controllers.

use crate::classes::{ClassCatalog, DomainMap};
use crate::config::{MaxPowerSpec, SimConfig};
use ebs_counters::{CounterBank, GroundTruth};
use ebs_dvfs::FrequencyDomain;
use ebs_thermal::{RcThermalModel, ThermalNode, ThrottleController};
use ebs_topology::{ClassId, CpuId, PackageId, Topology};
use ebs_units::{Celsius, Hertz, Watts};

/// The hardware-side state of the simulated machine.
#[derive(Clone, Debug)]
pub struct PhysicalMachine {
    /// The core classes of the machine (class 0 alone on homogeneous
    /// shapes).
    catalog: ClassCatalog,
    /// The frequency-domain layout (per package or per core).
    domain_map: DomainMap,
    /// Per-logical-CPU event counter banks.
    pub banks: Vec<CounterBank>,
    /// Per-package thermal state.
    pub thermals: Vec<ThermalNode>,
    /// Per-*package* throttle controllers: only physical processors
    /// overheat, so `hlt` enforcement compares the package's thermal
    /// power sum against the package budget and halts all its hardware
    /// threads together (the paper's "this processor would have to be
    /// throttled 33 % of the time to enforce the 40 W limit").
    pub throttles: Vec<ThrottleController>,
    /// Frequency domains, one per [`DomainMap`] entry: one per package
    /// on the paper's testbed (SMT siblings share one clock and one
    /// voltage plane, just as they share one thermal budget), one per
    /// core on modern hybrid shapes. Without DVFS every domain has a
    /// single nominal P-state.
    pub freq_domains: Vec<FrequencyDomain>,
    max_power_per_logical: Vec<Watts>,
    /// Per-logical-CPU halt-power shares (class halt power split over
    /// the package's threads).
    halt_shares: Vec<Watts>,
    /// Per-package leakage: the class-0 model verbatim on homogeneous
    /// machines, the mean of the package's per-core class slopes on
    /// hybrid ones (leakage is a package-level die property here, like
    /// the thermal node it feeds).
    pkg_leakage: Vec<ebs_counters::LeakageModel>,
    threads_per_package: usize,
}

impl PhysicalMachine {
    /// Builds the machine for a configuration and topology.
    ///
    /// # Panics
    ///
    /// Panics if `cooling_factors` is non-empty but does not match the
    /// package count.
    pub fn new(cfg: &SimConfig, topo: &Topology) -> Self {
        let catalog = ClassCatalog::for_config(cfg);
        let domain_map = DomainMap::new(topo, cfg.effective_domain_scope());
        let n_packages = topo.n_packages();
        let n_cpus = topo.n_cpus();
        let threads = topo.threads_per_package();

        let mut factors: Vec<f64> = if cfg.cooling_factors.is_empty() {
            vec![1.0; n_packages]
        } else {
            assert_eq!(
                cfg.cooling_factors.len(),
                n_packages,
                "need one cooling factor per package"
            );
            cfg.cooling_factors.clone()
        };
        if catalog.is_hybrid() {
            // A hybrid package's thermal resistance blends its cores'
            // class thermal coefficients (efficiency cores sink heat
            // more easily per unit of die area). Homogeneous machines
            // skip this entirely — their factors stay bit-identical.
            for (p, f) in factors.iter_mut().enumerate() {
                let cores = topo.cores_of_package(PackageId(p));
                let blend: f64 = cores
                    .iter()
                    .map(|&c| catalog.get(topo.class_of_core(c)).thermal_factor)
                    .sum::<f64>()
                    / cores.len() as f64;
                *f *= blend;
            }
        }
        let models: Vec<RcThermalModel> = factors
            .iter()
            .map(|&f| RcThermalModel::reference().with_cooling_factor(f))
            .collect();

        // Derive the per-logical budgets.
        let max_power_per_logical: Vec<Watts> = (0..n_cpus)
            .map(|c| {
                let pkg = topo.package_of(CpuId(c));
                match &cfg.max_power {
                    MaxPowerSpec::PerLogical(w) => *w,
                    MaxPowerSpec::PerPackage(w) => *w / threads as f64,
                    MaxPowerSpec::FromThermalLimit(limit) => {
                        models[pkg.0].max_power_for_limit(*limit) / threads as f64
                    }
                }
            })
            .collect();

        // Package budget = sum of its logical budgets.
        let throttles = (0..n_packages)
            .map(|p| {
                let budget: Watts = (0..n_cpus)
                    .filter(|&c| topo.package_of(CpuId(c)) == PackageId(p))
                    .map(|c| max_power_per_logical[c])
                    .sum();
                ThrottleController::new(budget)
            })
            .collect();
        // One scaling ladder per frequency domain, each with its
        // class's table; a machine without DVFS support carries
        // single-state ladders pinned at each class's nominal clock.
        let freq_domains = (0..domain_map.n_domains())
            .map(|d| FrequencyDomain::new(catalog.get(domain_map.class_of(d)).table.clone()))
            .collect();
        // Class halt power split over the package's hardware threads.
        let halt_shares = (0..n_cpus)
            .map(|c| catalog.get(topo.class_of(CpuId(c))).truth.halt_power / threads as f64)
            .collect();
        // Package leakage: exactly the class-0 model on homogeneous
        // machines (bit-identical legacy physics); a per-package blend
        // of the core classes' slopes on hybrid ones.
        let pkg_leakage = (0..n_packages)
            .map(|p| {
                if !catalog.is_hybrid() {
                    return catalog.get(ClassId(0)).truth.leakage;
                }
                let cores = topo.cores_of_package(PackageId(p));
                let slope: f64 = cores
                    .iter()
                    .map(|&c| {
                        catalog
                            .get(topo.class_of_core(c))
                            .truth
                            .leakage
                            .watts_per_kelvin
                    })
                    .sum::<f64>()
                    / cores.len() as f64;
                ebs_counters::LeakageModel {
                    watts_per_kelvin: slope,
                    reference: catalog.get(ClassId(0)).truth.leakage.reference,
                }
            })
            .collect();
        PhysicalMachine {
            catalog,
            domain_map,
            banks: (0..n_cpus).map(|_| CounterBank::new()).collect(),
            thermals: models.into_iter().map(ThermalNode::new).collect(),
            throttles,
            freq_domains,
            max_power_per_logical,
            halt_shares,
            pkg_leakage,
            threads_per_package: threads,
        }
    }

    /// The ground-truth power model of class 0 (the only class on
    /// homogeneous machines).
    pub fn truth(&self) -> &GroundTruth {
        &self.catalog.get(ClassId(0)).truth
    }

    /// The ground-truth power model of a class.
    pub fn class_truth(&self, class: ClassId) -> &GroundTruth {
        &self.catalog.get(class).truth
    }

    /// The machine's class catalog.
    pub fn catalog(&self) -> &ClassCatalog {
        &self.catalog
    }

    /// The machine's frequency-domain layout.
    pub fn domain_map(&self) -> &DomainMap {
        &self.domain_map
    }

    /// The budget of one logical CPU.
    pub fn max_power(&self, cpu: CpuId) -> Watts {
        self.max_power_per_logical[cpu.0]
    }

    /// All per-logical budgets.
    pub fn max_powers(&self) -> &[Watts] {
        &self.max_power_per_logical
    }

    /// Package halt power attributed to one logical CPU of class 0
    /// (the legacy scalar; per-CPU shares via
    /// [`PhysicalMachine::halt_power_share_of`]).
    pub fn halt_power_share(&self) -> Watts {
        self.truth().halt_power / self.threads_per_package as f64
    }

    /// Halt power attributed to one specific logical CPU (its class's
    /// halt power split over the package's threads).
    pub fn halt_power_share_of(&self, cpu: CpuId) -> Watts {
        self.halt_shares[cpu.0]
    }

    /// Die temperature of a package.
    pub fn package_temp(&self, pkg: PackageId) -> Celsius {
        self.thermals[pkg.0].temperature()
    }

    /// The leakage model of one package's die (class-0 verbatim on
    /// homogeneous machines, the per-core class blend on hybrid ones).
    pub fn package_leakage(&self, pkg: usize) -> &ebs_counters::LeakageModel {
        &self.pkg_leakage[pkg]
    }

    /// The first frequency domain of a package — *the* domain under
    /// [`ebs_dvfs::DomainScope::PerPackage`] (every homogeneous
    /// preset), the class-0 core-0 domain under per-core scope.
    pub fn freq_domain(&self, pkg: PackageId) -> &FrequencyDomain {
        &self.freq_domains[self.domain_map.domains_of_package(pkg.0)[0]]
    }

    /// Current effective clock of a package's first domain.
    pub fn package_frequency(&self, pkg: PackageId) -> Hertz {
        self.freq_domain(pkg).frequency()
    }

    /// Current effective clock of the domain covering `cpu`.
    pub fn cpu_frequency(&self, cpu: CpuId) -> Hertz {
        self.freq_domains[self.domain_map.domain_of(cpu)].frequency()
    }
}

impl ebs_store::Snapshot for PhysicalMachine {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.key("machine");
        w.seq(&self.banks, |w, b| b.save(w));
        w.seq(&self.thermals, |w, t| t.save(w));
        w.seq(&self.throttles, |w, t| t.save(w));
        w.seq(&self.freq_domains, |w, d| d.save(w));
    }

    /// Restores into a machine freshly built from the same config and
    /// topology; the ground-truth model and budget tables are
    /// config-derived and stay as constructed.
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        r.key("machine")?;
        restore_shaped(r, &mut self.banks, "counter banks")?;
        restore_shaped(r, &mut self.thermals, "thermal nodes")?;
        restore_shaped(r, &mut self.throttles, "throttle controllers")?;
        restore_shaped(r, &mut self.freq_domains, "frequency domains")
    }
}

/// Restores a fixed-shape table of snapshot sections, rejecting a
/// count mismatch (a snapshot from a differently shaped machine).
fn restore_shaped<T: ebs_store::Snapshot>(
    r: &mut ebs_store::StateReader<'_>,
    items: &mut [T],
    what: &str,
) -> Result<(), ebs_store::StoreError> {
    let n = r.usize()?;
    if n != items.len() {
        return Err(ebs_store::StoreError::Invalid(format!(
            "snapshot has {n} {what}, machine has {}",
            items.len()
        )));
    }
    for item in items {
        item.restore(r)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_units::SimDuration;

    fn topo(smt: bool) -> Topology {
        Topology::xseries445(smt)
    }

    #[test]
    fn per_logical_budget_is_uniform() {
        let cfg = SimConfig::xseries445().max_power(MaxPowerSpec::PerLogical(Watts(60.0)));
        let m = PhysicalMachine::new(&cfg, &topo(true));
        assert!(m.max_powers().iter().all(|&w| w == Watts(60.0)));
    }

    #[test]
    fn per_package_budget_splits_between_siblings() {
        let cfg = SimConfig::xseries445().max_power(MaxPowerSpec::PerPackage(Watts(40.0)));
        let m = PhysicalMachine::new(&cfg, &topo(true));
        assert!(m.max_powers().iter().all(|&w| w == Watts(20.0)));
        // Without SMT the full package budget goes to the one thread.
        let cfg = SimConfig::xseries445()
            .smt(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)));
        let m = PhysicalMachine::new(&cfg, &topo(false));
        assert!(m.max_powers().iter().all(|&w| w == Watts(40.0)));
    }

    #[test]
    fn thermal_limit_budget_reflects_cooling() {
        let mut factors = vec![1.0; 8];
        factors[3] = 1.3; // Poorly cooled package 3.
        let cfg = SimConfig::xseries445()
            .smt(false)
            .cooling_factors(factors)
            .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)));
        let m = PhysicalMachine::new(&cfg, &topo(false));
        assert!(
            m.max_power(CpuId(3)) < m.max_power(CpuId(0)),
            "poor cooling must shrink the budget"
        );
        // Steady state at the budget hits the limit exactly.
        let model = RcThermalModel::reference().with_cooling_factor(1.3);
        let t = model.steady_state(m.max_power(CpuId(3)));
        assert!((t.0 - 38.0).abs() < 1e-9);
    }

    #[test]
    fn halt_power_share_splits_by_threads() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        assert!((m.halt_power_share().0 - 6.8).abs() < 1e-12);
        let m = PhysicalMachine::new(&SimConfig::xseries445().smt(false), &topo(false));
        assert!((m.halt_power_share().0 - 13.6).abs() < 1e-12);
    }

    #[test]
    fn packages_start_at_ambient() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        for p in 0..8 {
            assert_eq!(m.package_temp(PackageId(p)), Celsius::AMBIENT);
        }
    }

    #[test]
    fn throttle_limits_are_package_budgets() {
        let cfg = SimConfig::xseries445().max_power(MaxPowerSpec::PerPackage(Watts(40.0)));
        let m = PhysicalMachine::new(&cfg, &topo(true));
        assert_eq!(m.throttles.len(), 8);
        for p in 0..8 {
            // Two 20 W logical budgets sum back to the 40 W package.
            assert_eq!(m.throttles[p].limit(), Watts(40.0));
        }
    }

    #[test]
    #[should_panic(expected = "one cooling factor per package")]
    fn wrong_factor_count_rejected() {
        let cfg = SimConfig::xseries445().cooling_factors(vec![1.0; 3]);
        let _ = PhysicalMachine::new(&cfg, &topo(true));
    }

    #[test]
    fn without_dvfs_domains_are_pinned_at_nominal() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        assert_eq!(m.freq_domains.len(), 8);
        for p in 0..8 {
            let dom = m.freq_domain(PackageId(p));
            assert_eq!(dom.table().len(), 1);
            assert_eq!(m.package_frequency(PackageId(p)), Hertz::from_ghz(2.2));
            assert_eq!(dom.speed_factor(), 1.0);
        }
    }

    #[test]
    fn with_dvfs_domains_carry_the_configured_table() {
        let cfg = SimConfig::xseries445().dvfs(crate::DvfsSpec::default());
        let m = PhysicalMachine::new(&cfg, &topo(true));
        for p in 0..8 {
            assert_eq!(m.freq_domain(PackageId(p)).table().len(), 6);
            // Domains start at the nominal state.
            assert_eq!(m.package_frequency(PackageId(p)), Hertz::from_ghz(2.2));
        }
    }

    #[test]
    fn hybrid_machine_runs_per_core_class_domains() {
        use ebs_topology::TopologyPreset;
        let cfg = SimConfig::preset(TopologyPreset::BigLittle16).dvfs(crate::DvfsSpec::default());
        let topo = cfg.topology_builder().build();
        let m = PhysicalMachine::new(&cfg, &topo);
        // One domain per core, each carrying its class's ladder.
        assert_eq!(m.freq_domains.len(), 16);
        for core in 0..16 {
            let dom = &m.freq_domains[core];
            if core % 8 < 4 {
                assert_eq!(dom.table().len(), 6);
                assert_eq!(dom.frequency(), Hertz::from_ghz(2.2));
            } else {
                assert_eq!(dom.table().len(), 5);
                assert_eq!(dom.frequency(), Hertz::from_ghz(1.6));
            }
        }
        // Per-CPU clocks and halt shares follow the class.
        assert_eq!(m.cpu_frequency(CpuId(0)), Hertz::from_ghz(2.2));
        assert_eq!(m.cpu_frequency(CpuId(7)), Hertz::from_ghz(1.6));
        assert!(m.halt_power_share_of(CpuId(7)) < m.halt_power_share_of(CpuId(0)));
        // Hybrid packages blend the class thermal coefficients: they
        // cool better than a pure class-0 package.
        let homog = PhysicalMachine::new(
            &SimConfig::xseries445().max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0))),
            &Topology::xseries445(true),
        );
        let hybrid = PhysicalMachine::new(
            &SimConfig::preset(TopologyPreset::BigLittle16)
                .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0))),
            &topo,
        );
        // Better cooling -> larger package budget at the same limit.
        assert!(hybrid.throttles[0].limit() > homog.throttles[0].limit());
    }

    #[test]
    fn homogeneous_machines_keep_per_package_domains() {
        let m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        assert_eq!(m.freq_domains.len(), 8);
        assert_eq!(m.catalog().n_classes(), 1);
        assert_eq!(m.domain_map().n_domains(), 8);
        for cpu in 0..16 {
            assert_eq!(m.halt_power_share_of(CpuId(cpu)), m.halt_power_share());
        }
    }

    #[test]
    fn thermal_nodes_heat_independently() {
        let mut m = PhysicalMachine::new(&SimConfig::xseries445(), &topo(true));
        m.thermals[0].step(Watts(68.0), SimDuration::from_secs(30));
        assert!(m.package_temp(PackageId(0)).0 > 35.0);
        assert_eq!(m.package_temp(PackageId(1)), Celsius::AMBIENT);
    }
}
