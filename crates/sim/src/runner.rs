//! Parallel experiment running.
//!
//! The paper averages its migration counts and throughput numbers over
//! several runs; the benchmark harness sweeps workload mixes and task
//! counts. Both map to running many independent simulations, which
//! parallelise trivially — each simulation is self-contained and
//! deterministic given its config.

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::trace::SimReport;
use ebs_units::SimDuration;

/// Runs one simulation to completion: build, populate via `setup`,
/// run, report.
pub fn run_one<F>(cfg: SimConfig, duration: SimDuration, setup: F) -> SimReport
where
    F: FnOnce(&mut Simulation),
{
    let mut sim = Simulation::new(cfg);
    setup(&mut sim);
    sim.run_for(duration);
    sim.report()
}

/// Runs the same experiment under several seeds in parallel and
/// returns the reports in seed order.
pub fn run_seeds<F>(
    base: &SimConfig,
    seeds: &[u64],
    duration: SimDuration,
    setup: F,
) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    run_parallel(
        seeds
            .iter()
            .map(|&s| base.clone().seed(s))
            .collect::<Vec<_>>(),
        duration,
        &setup,
    )
}

/// Runs several configurations in parallel and returns the reports in
/// input order.
pub fn run_configs<F>(configs: Vec<SimConfig>, duration: SimDuration, setup: F) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    run_parallel(configs, duration, &setup)
}

fn run_parallel<F>(configs: Vec<SimConfig>, duration: SimDuration, setup: &F) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    let mut out: Vec<Option<SimReport>> = configs.iter().map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, cfg) in configs.into_iter().enumerate() {
            handles.push((
                i,
                scope.spawn(move |_| {
                    let mut sim = Simulation::new(cfg);
                    setup(&mut sim);
                    sim.run_for(duration);
                    sim.report()
                }),
            ));
        }
        for (i, handle) in handles {
            out[i] = Some(handle.join().expect("simulation thread panicked"));
        }
    })
    .expect("crossbeam scope");
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// The mean of a per-report metric.
pub fn mean<F: Fn(&SimReport) -> f64>(reports: &[SimReport], f: F) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workloads::catalog;

    #[test]
    fn seeds_run_in_parallel_and_stay_deterministic() {
        let base = SimConfig::xseries445().smt(false);
        let setup = |sim: &mut Simulation| {
            sim.spawn_program(&catalog::aluadd());
            sim.spawn_program(&catalog::memrw());
        };
        let a = run_seeds(&base, &[1, 2, 3], SimDuration::from_secs(1), setup);
        let b = run_seeds(&base, &[1, 2, 3], SimDuration::from_secs(1), setup);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.instructions_retired, y.instructions_retired);
        }
        // Different seeds genuinely differ.
        assert_ne!(a[0].instructions_retired, a[1].instructions_retired);
    }

    #[test]
    fn run_one_matches_manual_run() {
        let cfg = SimConfig::xseries445().smt(false).seed(9);
        let report = run_one(cfg.clone(), SimDuration::from_secs(1), |sim| {
            sim.spawn_program(&catalog::pushpop());
        });
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::pushpop());
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            report.instructions_retired,
            sim.report().instructions_retired
        );
    }

    #[test]
    fn mean_helper() {
        let base = SimConfig::xseries445().smt(false);
        let reports = run_seeds(&base, &[1, 2], SimDuration::from_millis(100), |sim| {
            sim.spawn_program(&catalog::aluadd());
        });
        let m = mean(&reports, |r| r.instructions_retired as f64);
        assert!(m > 0.0);
        assert_eq!(mean(&[], |_| 1.0), 0.0);
    }
}
