//! Parallel experiment running.
//!
//! The paper averages its migration counts and throughput numbers over
//! several runs; the benchmark harness sweeps workload mixes and task
//! counts. Both map to running many independent simulations, which
//! parallelise trivially — each simulation is self-contained and
//! deterministic given its config.

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::trace::SimReport;
use ebs_units::SimDuration;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs one simulation to completion: build, populate via `setup`,
/// run, report.
pub fn run_one<F>(cfg: SimConfig, duration: SimDuration, setup: F) -> SimReport
where
    F: FnOnce(&mut Simulation),
{
    let mut sim = Simulation::new(cfg);
    setup(&mut sim);
    sim.run_for(duration);
    sim.report()
}

/// Runs the same experiment under several seeds in parallel and
/// returns the reports in seed order.
pub fn run_seeds<F>(
    base: &SimConfig,
    seeds: &[u64],
    duration: SimDuration,
    setup: F,
) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    run_parallel(
        seeds
            .iter()
            .map(|&s| base.clone().seed(s))
            .collect::<Vec<_>>(),
        duration,
        default_workers(),
        &setup,
    )
}

/// Runs several configurations in parallel and returns the reports in
/// input order. Work is chunked across [`default_workers`] OS threads
/// — one thread per *worker*, not per config, so arbitrarily large
/// sweeps neither oversubscribe the host nor exhaust thread limits.
/// The available parallelism is probed per call (per shard), and a
/// one-worker shard — a single-core container, or a one-config cell —
/// runs inline with no threading machinery at all.
pub fn run_configs<F>(configs: Vec<SimConfig>, duration: SimDuration, setup: F) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    run_parallel(configs, duration, default_workers(), &setup)
}

/// Like [`run_configs`] with an explicit worker count (1 = serial).
/// Results are identical for every worker count: each simulation is
/// self-contained and deterministic given its config, and reports are
/// returned in input order regardless of which worker ran them.
pub fn run_configs_with_workers<F>(
    configs: Vec<SimConfig>,
    duration: SimDuration,
    workers: usize,
    setup: F,
) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    run_parallel(configs, duration, workers, &setup)
}

/// The default worker count: the host's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on a work-stealing pool of `workers` OS
/// threads and returns the results in input order. This is the
/// generic core under [`run_configs`]; sweeps whose unit of work is
/// *not* "build one simulation, run, report" — the fork-sweep's
/// warm-up-then-fork groups, for instance — map their own closures
/// over it. Results are identical for every worker count: each item
/// is processed independently and slotted back by index.
pub fn map_parallel<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    // One effective worker — a single-core container, or a cell too
    // small to share — folds to a plain serial loop: no spawned
    // thread, no shared index, no per-slot mutexes. Single-core hosts
    // previously paid the whole work-stealing apparatus for zero
    // parallelism.
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    // Work-stealing over a shared index: items differ wildly in cost
    // (a 64-package machine simulates far slower than a 2-package
    // one), so static chunking would leave workers idle.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let next = &next;
            let slots = &slots;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("result slot poisoned") = Some(f(&items[i]));
            });
        }
    })
    .expect("crossbeam scope");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

fn run_parallel<F>(
    configs: Vec<SimConfig>,
    duration: SimDuration,
    workers: usize,
    setup: &F,
) -> Vec<SimReport>
where
    F: Fn(&mut Simulation) + Sync,
{
    map_parallel(&configs, workers, |cfg| {
        let mut sim = Simulation::new(cfg.clone());
        setup(&mut sim);
        sim.run_for(duration);
        sim.report()
    })
}

/// The mean of a per-report metric.
pub fn mean<F: Fn(&SimReport) -> f64>(reports: &[SimReport], f: F) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(f).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workloads::catalog;

    #[test]
    fn seeds_run_in_parallel_and_stay_deterministic() {
        let base = SimConfig::xseries445().smt(false);
        let setup = |sim: &mut Simulation| {
            sim.spawn_program(&catalog::aluadd());
            sim.spawn_program(&catalog::memrw());
        };
        let a = run_seeds(&base, &[1, 2, 3], SimDuration::from_secs(1), setup);
        let b = run_seeds(&base, &[1, 2, 3], SimDuration::from_secs(1), setup);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.instructions_retired, y.instructions_retired);
        }
        // Different seeds genuinely differ.
        assert_ne!(a[0].instructions_retired, a[1].instructions_retired);
    }

    #[test]
    fn run_one_matches_manual_run() {
        let cfg = SimConfig::xseries445().smt(false).seed(9);
        let report = run_one(cfg.clone(), SimDuration::from_secs(1), |sim| {
            sim.spawn_program(&catalog::pushpop());
        });
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::pushpop());
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(
            report.instructions_retired,
            sim.report().instructions_retired
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let configs: Vec<SimConfig> = (0..6)
            .map(|s| SimConfig::xseries445().smt(false).seed(s))
            .collect();
        let setup = |sim: &mut Simulation| {
            sim.spawn_program(&catalog::aluadd());
        };
        // workers == 1 exercises the serial fold (no threads spawned);
        // its reports must be byte-equal to the pooled paths'.
        let serial =
            run_configs_with_workers(configs.clone(), SimDuration::from_millis(300), 1, setup);
        let pooled =
            run_configs_with_workers(configs.clone(), SimDuration::from_millis(300), 3, setup);
        let oversubscribed =
            run_configs_with_workers(configs, SimDuration::from_millis(300), 64, setup);
        assert_eq!(serial.len(), 6);
        for ((a, b), c) in serial.iter().zip(&pooled).zip(&oversubscribed) {
            assert_eq!(a.instructions_retired, b.instructions_retired);
            assert_eq!(a.instructions_retired, c.instructions_retired);
            assert_eq!(a.migrations, b.migrations);
        }
    }

    #[test]
    fn empty_and_default_worker_paths() {
        assert!(run_configs(Vec::new(), SimDuration::from_millis(10), |_| {}).is_empty());
        assert!(default_workers() >= 1);
    }

    #[test]
    fn mean_helper() {
        let base = SimConfig::xseries445().smt(false);
        let reports = run_seeds(&base, &[1, 2], SimDuration::from_millis(100), |sim| {
            sim.spawn_program(&catalog::aluadd());
        });
        let m = mean(&reports, |r| r.instructions_retired as f64);
        assert!(m > 0.0);
        assert_eq!(mean(&[], |_| 1.0), 0.0);
    }
}
