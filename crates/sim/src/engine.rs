//! The simulation engine: advances the machine, drives the scheduler,
//! and wires the energy-aware policies into it exactly where the paper
//! patched Linux (Section 5).
//!
//! Two interchangeable cores drive the same step logic:
//!
//! - **Fixed tick** (the default): every step spans exactly
//!   [`SimConfig::tick`], the classic discrete-time loop.
//! - **Variable stride** ([`SimConfig::strided`]): each step spans the
//!   exact time to the next scheduling-relevant event — open-workload
//!   arrival, sleeper wake, timeslice expiry, DVFS decision, balancer
//!   interval, thermal-trace sample, run end — capped at
//!   [`SimConfig::max_stride`] and floored at one tick. Physics,
//!   thermal state, and the Eq. 2 estimators integrate exactly over
//!   any span (the variable-period averages compose), so longer steps
//!   trade no modelling fidelity where conditions are constant; where
//!   a `hlt` throttle flip could occur inside a span the stride
//!   collapses to the tick, preserving the bang-bang duty cycle.
//!
//! With the stride cap set to one tick the two cores are bit-identical
//! (they execute the same `step_span` with the same `dt`).

use crate::config::SimConfig;
use crate::machine::PhysicalMachine;
use crate::runtime::{TaskRuntime, WarmthModel};
use crate::trace::{LatencyStats, SimReport, TaskCpuTrace, ThermalTrace};
use ebs_core::{
    place_new_task_capacity, EnergyAwareBalancer, EnergyEstimator, HotTaskConfig, HotTaskMigrator,
    PlacementTable, PowerState, PowerStateConfig,
};
use ebs_counters::{calibration, EnergyModel};
use ebs_dvfs::{DecisionHold, Governor, GovernorInput, PStateResidency};
use ebs_sched::{
    idlest_cpu, BinaryId, LoadBalancer, LoadBalancerConfig, System, TaskConfig, TaskId,
};
use ebs_thermal::ThrottleState;
use ebs_topology::CpuId;
use ebs_trace::{
    CounterId, EventKind, EventTrace, GaugeId, MetricsRegistry, PhaseProfiler, TraceSink,
};
use ebs_units::{Celsius, Joules, SimDuration, SimTime, Watts};
use ebs_workloads::{ArrivalProcess, Program, ProgramState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Time for a first-order exponential average at `avg`, driven by a
/// constant sample, to reach `target`; `None` when it never does
/// (`target` not strictly between `avg` and `sample`).
fn crossing_time_s(avg: f64, sample: f64, target: f64, tau_s: f64) -> Option<f64> {
    let num = sample - avg;
    let den = sample - target;
    if den == 0.0 || num == 0.0 || (num > 0.0) != (den > 0.0) || num.abs() <= den.abs() {
        return None;
    }
    Some(tau_s * (num / den).ln())
}

/// Utilization over a governor decision window: busy thread-seconds
/// over the window length, clamped to `[0, 1]`.
///
/// A zero-width window — possible once decisions are event-triggered
/// (a forced decision can coincide with the step that just reset the
/// window) — carries no signal at all, so the *previous* utilization is
/// carried forward instead: dividing would yield `0/0 = NaN`, and
/// `f64::clamp` propagates NaN straight into `GovernorInput`, where it
/// poisons every utilization comparison a governor makes.
fn windowed_utilization(busy_s: f64, window: SimDuration, previous: f64) -> f64 {
    if window.is_zero() {
        return previous;
    }
    (busy_s / window.as_secs_f64()).clamp(0.0, 1.0)
}

/// Time for the windowed utilization (`busy_s` busy thread-seconds
/// accumulated over a `window_s`-second window, the window capped at
/// `cap_s`) to reach `target` while the instantaneous busy fraction
/// holds at `b`; `None` when it never does.
///
/// While the window still grows the average drifts hyperbolically
/// toward `b` — `u(x) = (B + b·x) / (W + x)` — which inverts in closed
/// form. Once capped, the engine's per-step renormalisation is the
/// discretisation of a first-order lag with time constant `cap_s`, so
/// the tail reuses [`crossing_time_s`]. Exact in phase one and a close
/// bound in phase two; the engine re-checks the real signal at every
/// step end, so an estimate that lands short merely costs one more
/// step.
fn utilization_crossing_s(
    busy_s: f64,
    window_s: f64,
    b: f64,
    target: f64,
    cap_s: f64,
) -> Option<f64> {
    if !target.is_finite() || cap_s <= 0.0 {
        return None;
    }
    let u0 = if window_s > 0.0 { busy_s / window_s } else { b };
    if target == u0 {
        return Some(0.0);
    }
    // Monotone drift from u0 toward the asymptote b: a crossing needs
    // the target on that path, strictly before the asymptote.
    if ((b - u0) > 0.0) != ((target - u0) > 0.0) || (target - u0).abs() >= (b - u0).abs() {
        return None;
    }
    if window_s < cap_s {
        let x = ((target * window_s - busy_s) / (b - target)).max(0.0);
        if window_s + x <= cap_s {
            return Some(x);
        }
    }
    let grow = (cap_s - window_s).max(0.0);
    let at_cap = (busy_s + b * grow) / (window_s + grow);
    crossing_time_s(at_cap, b, target, cap_s).map(|t| grow + t)
}

/// Which balancing policy drives periodic migration decisions.
#[derive(Clone, Debug)]
enum Balancer {
    /// The stock Linux-like load balancer (energy-aware disabled).
    Baseline(LoadBalancer),
    /// The merged energy-and-load balancer of Fig. 4.
    EnergyAware(EnergyAwareBalancer),
}

/// Per-CPU accounting of the currently running task's interval (energy
/// and execution time since it was dispatched or last accounted).
#[derive(Clone, Copy, Debug, Default)]
struct IntervalAcc {
    task: Option<TaskId>,
    energy: Joules,
    time: SimDuration,
}

/// Engine-phase indices into the self-profiler (names below, same
/// order).
const PHASE_STRIDE: usize = 0;
const PHASE_ARRIVALS: usize = 1;
const PHASE_PHYSICS: usize = 2;
const PHASE_THROTTLE: usize = 3;
const PHASE_DVFS: usize = 4;
const PHASE_SCHED: usize = 5;
const PHASE_SAMPLING: usize = 6;
const PHASE_NAMES: [&str; 7] = [
    "stride",
    "arrivals",
    "physics",
    "throttle",
    "dvfs",
    "scheduler",
    "sampling",
];

/// The metrics registry plus its snapshot cadence and the pre-interned
/// counter/gauge ids, so the per-step publishing path never hashes a
/// metric name.
struct MetricsState {
    reg: MetricsRegistry,
    interval: SimDuration,
    /// The next snapshot instant; bounds variable strides exactly like
    /// the thermal-trace cadence does.
    next: SimTime,
    c_steps: CounterId,
    c_ctx: CounterId,
    c_migrations: CounterId,
    c_completions: CounterId,
    c_arrivals: CounterId,
    c_instructions: CounterId,
    c_dvfs_decisions: CounterId,
    c_dvfs_transitions: CounterId,
    c_throttle_engagements: CounterId,
    /// Per-CPU thermal power, watts.
    g_power: Vec<GaugeId>,
    /// Per-CPU runqueue depth (including the running task).
    g_rq: Vec<GaugeId>,
    /// Per-frequency-domain clock, GHz.
    g_freq: Vec<GaugeId>,
    /// Per-frequency-domain windowed utilization, `[0, 1]`.
    g_util: Vec<GaugeId>,
}

impl MetricsState {
    /// `per_core` selects the gauge naming: the historical
    /// `dvfs.*.pkg{i}` names under per-package scope (domain i ==
    /// package i), `dvfs.*.dom{i}` under per-core scope.
    fn new(interval: SimDuration, n_cpus: usize, n_domains: usize, per_core: bool) -> Self {
        let mut reg = MetricsRegistry::new();
        let dom_name = |i: usize| {
            if per_core {
                format!("dom{i}")
            } else {
                format!("pkg{i}")
            }
        };
        MetricsState {
            c_steps: reg.counter("engine.steps"),
            c_instructions: reg.counter("engine.instructions"),
            c_ctx: reg.counter("sched.context_switches"),
            c_migrations: reg.counter("sched.migrations"),
            c_completions: reg.counter("sched.completions"),
            c_arrivals: reg.counter("workloads.arrivals"),
            c_dvfs_decisions: reg.counter("dvfs.decisions"),
            c_dvfs_transitions: reg.counter("dvfs.transitions"),
            c_throttle_engagements: reg.counter("thermal.throttle_engagements"),
            g_power: (0..n_cpus)
                .map(|c| reg.gauge(&format!("thermal.power_w.cpu{c}")))
                .collect(),
            g_rq: (0..n_cpus)
                .map(|c| reg.gauge(&format!("sched.runqueue.cpu{c}")))
                .collect(),
            g_freq: (0..n_domains)
                .map(|d| reg.gauge(&format!("dvfs.freq_ghz.{}", dom_name(d))))
                .collect(),
            g_util: (0..n_domains)
                .map(|d| reg.gauge(&format!("dvfs.util.{}", dom_name(d))))
                .collect(),
            reg,
            interval,
            next: SimTime::ZERO,
        }
    }
}

/// An open-workload arrival routed to an engine by an outer
/// dispatcher — the parallel synchronizer between packages, or the
/// fleet dispatcher between hosts: the resolved program plus the
/// exact due instant from the shared arrival process.
#[derive(Clone, Debug)]
pub struct RoutedArrival {
    pub due: SimTime,
    pub program: Program,
    pub seed: u64,
    pub phase: &'static str,
}

/// A task in flight between partitions: everything the receiving
/// engine needs to resume it as if it had migrated across packages.
pub(crate) struct TaskHandoff {
    pub runtime: TaskRuntime,
    pub profile: Watts,
    pub binary: u64,
}

/// A complete simulation: machine, scheduler, policies, and statistics.
pub struct Simulation {
    cfg: SimConfig,
    sys: System,
    machine: PhysicalMachine,
    power: PowerState,
    estimator: EnergyEstimator,
    balancer: Balancer,
    hot: HotTaskMigrator,
    placement: PlacementTable,
    warmth: WarmthModel,
    /// Per-domain frequency governors (empty when DVFS is disabled).
    /// Every DVFS table below is keyed by *frequency domain* — one per
    /// package on homogeneous machines (index-identical to the
    /// historical per-package tables), one per core on hybrid shapes.
    governors: Vec<Box<dyn Governor + Send>>,
    /// Per-domain instant of the next *forced* governor decision: the
    /// cadence deadline in cadence mode, the optional `max_hold`
    /// fallback in event-driven mode (`None` = triggers only).
    dvfs_next: Vec<Option<SimTime>>,
    /// Per-domain hold from the last decision (event-driven mode):
    /// the signal bands within which the governor's answer stands.
    /// `None` before the first decision, which therefore fires at the
    /// first step.
    dvfs_hold: Vec<Option<DecisionHold>>,
    /// Per-package CPU lists, precomputed once — the topology is
    /// immutable and the physics/throttle paths below run every tick.
    pkg_cpus: Vec<Vec<CpuId>>,
    /// Per-frequency-domain CPU lists (== `pkg_cpus` under per-package
    /// scope; one core's threads per entry under per-core scope).
    dom_cpus: Vec<Vec<CpuId>>,
    /// CPU → frequency-domain map.
    cpu_dom: Vec<usize>,
    /// CPU → core-class map (all zero on homogeneous machines).
    cpu_class: Vec<usize>,
    /// Class-weighted per-CPU capacities for placement and hot-task
    /// migration; `None` (homogeneous or `class_blind`) keeps the
    /// legacy count-based policies byte-for-byte.
    capacities: Option<Vec<f64>>,
    /// Per-domain busy time (thread-fraction · seconds) accumulated
    /// since the last governor decision, so utilization covers the
    /// whole window rather than sampling the decision instant.
    dvfs_busy: Vec<f64>,
    /// Per-domain wall time accumulated since that domain's last
    /// governor decision (event-driven domains decide independently;
    /// in cadence mode all windows advance in lockstep).
    dvfs_window: Vec<SimDuration>,
    /// Per-domain utilization reported at the last decision, carried
    /// into any decision whose window is zero-width (see
    /// [`windowed_utilization`]).
    dvfs_util: Vec<f64>,
    /// Governor decisions taken over the run (statistics: the
    /// event-driven path exists to shrink this).
    dvfs_decisions: u64,
    /// Per-domain instant before which *stale-average* escape
    /// triggers are suppressed — the hold's `min_dwell` rate limit.
    /// During the dwell, escapes above the thermal band that have not
    /// exceeded [`Simulation::dvfs_armed_power`] are the lagging
    /// average settling after a downclock, not new information (see
    /// [`ebs_dvfs::DecisionHold::stale_descent`]). Genuine escapes and
    /// forced deadlines (`dvfs_next`) are unaffected.
    dvfs_dwell_until: Vec<SimTime>,
    /// Domain thermal power each decision was made from — the
    /// reference [`ebs_dvfs::DecisionHold::stale_descent`] compares
    /// against during the dwell.
    dvfs_armed_power: Vec<Watts>,
    /// Per-domain "provably frozen" flag (event-driven mode): the
    /// domain accrues exactly zero busy time, its hold bands contain
    /// every future signal value, and no deadline is armed — so no
    /// decision can fire until a scheduling or throttle event touches
    /// the domain. Frozen domains skip the per-step DVFS accounting
    /// wholesale; the [`Simulation::emit`] hook unfreezes them.
    dvfs_stable: Vec<bool>,
    /// When each frozen domain's bookkeeping stopped, so the window
    /// catches up in one exact move on the next event.
    dvfs_frozen_at: Vec<SimTime>,
    /// Arrivals routed to this engine by an outer synchronizer (the
    /// parallel partition driver), sorted by due time and drained by
    /// `arrival_tick` exactly like the engine-owned arrival process.
    inbox: std::collections::VecDeque<RoutedArrival>,
    /// Runtime state, indexed by `TaskId` (dense).
    runtimes: Vec<Option<TaskRuntime>>,
    /// Program catalog by binary id, for respawning.
    programs: HashMap<u64, Program>,
    /// Blocked tasks and their wake times (microseconds).
    sleepers: BinaryHeap<Reverse<(u64, TaskId)>>,
    /// Open-workload arrival process (None for closed runs).
    open: Option<ArrivalProcess>,
    /// Sojourn times of completed open tasks: (arrival phase, secs).
    latencies: Vec<(&'static str, f64)>,
    /// Per-package scratch for the executing flags of the physics
    /// tick, reused so the hot loop allocates nothing.
    exec_scratch: Vec<bool>,
    /// Per-package scratch: whether the package passed the hot-task
    /// thermal pre-screen this step (computed once per step instead of
    /// per CPU — the full trigger test walks the package CPU list).
    hot_scratch: Vec<bool>,
    /// Per-CPU fractional cycles not yet emitted to the counter banks.
    /// `(freq * dt * share)` is rarely integral; truncating it every
    /// step would make retired work depend on the step size, so the
    /// remainder carries over (tick-size-invariant accounting).
    cycle_carry: Vec<f64>,
    /// Per-CPU fractional instructions not yet retired (same carry
    /// scheme, applied to the instruction stream).
    instr_carry: Vec<f64>,
    /// Time constant of the per-CPU thermal-power averages, for the
    /// stride bound that predicts throttle flips.
    thermal_tau: SimDuration,
    rng: StdRng,
    acc: Vec<IntervalAcc>,
    /// Whether a new-idle balance attempt is pending for the CPU.
    newidle_pending: Vec<bool>,
    now: SimTime,
    // Statistics.
    steps: u64,
    completions: HashMap<u64, u64>,
    instructions: u64,
    max_temp: Celsius,
    true_energy: Joules,
    estimated_energy: Joules,
    thermal_trace: ThermalTrace,
    next_thermal_sample: Option<SimTime>,
    task_trace: TaskCpuTrace,
    /// Structured scheduling-event trace (`None` when disabled: the
    /// disabled path is a single branch and allocates nothing).
    tracer: Option<EventTrace>,
    /// Metrics registry with its snapshot cadence (`None` = disabled).
    metrics: Option<Box<MetricsState>>,
    /// Host wall-time self-profile per engine phase.
    profiler: Option<PhaseProfiler>,
    /// Per-task successive-timeslice power samples (Table 1), recorded
    /// when enabled via [`Simulation::record_slice_powers`].
    slice_powers: Option<HashMap<TaskId, Vec<Watts>>>,
}

impl Simulation {
    /// Builds a simulation from a configuration. The energy model is
    /// calibrated (least squares over synthetic multimeter runs) as
    /// part of bring-up, unless `perfect_estimation` is set.
    pub fn new(cfg: SimConfig) -> Self {
        let topo = cfg.topology_builder().build();
        let machine = PhysicalMachine::new(&cfg, &topo);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Calibrate one model per core class, class 0 first — the
        // single-class path consumes the RNG stream exactly as the
        // legacy one-model calibration did.
        let models: Vec<EnergyModel> = if cfg.perfect_estimation {
            machine.catalog().iter().map(|c| c.truth.model).collect()
        } else {
            machine
                .catalog()
                .iter()
                .map(|c| calibration::standard_calibration(&c.truth, &mut rng))
                .collect()
        };
        let n_cpus = topo.n_cpus();
        let power_cfg = PowerStateConfig {
            idle_power: machine.halt_power_share(),
            ..PowerStateConfig::default()
        };
        let power = PowerState::new(n_cpus, machine.max_powers(), power_cfg);
        let threads_per_package = topo.threads_per_package();
        let cpu_class: Vec<usize> = topo.cpu_ids().map(|c| topo.class_of(c).0).collect();
        let class_halt: Vec<Watts> = machine
            .catalog()
            .iter()
            .map(|c| c.truth.halt_power / threads_per_package as f64)
            .collect();
        let estimator = EnergyEstimator::with_classes(models, cpu_class.clone(), class_halt);
        // Class-weighted capacities surface to the policy layer only
        // on hybrid machines in class-aware mode; `class_blind` (and
        // every homogeneous machine) leaves the legacy count-based
        // arithmetic untouched.
        let capacities: Option<Vec<f64>> = (machine.catalog().is_hybrid() && !cfg.class_blind)
            .then(|| machine.catalog().cpu_capacities(&topo));
        let mut sys = System::new(topo);
        if let Some(caps) = &capacities {
            sys.set_cpu_capacities(caps);
        }
        // `scan_balancing` forces the scan paths; otherwise the
        // balance config's own setting (adaptive by machine size when
        // unspecified) decides at balancer construction.
        let balancer = if cfg.energy_balancing {
            let bcfg = ebs_core::EnergyBalanceConfig {
                use_aggregates: if cfg.scan_balancing {
                    Some(false)
                } else {
                    cfg.balance.use_aggregates
                },
                ..cfg.balance
            };
            let mut b = EnergyAwareBalancer::new(&sys, bcfg);
            b.set_capacities(capacities.clone());
            Balancer::EnergyAware(b)
        } else {
            let lcfg = LoadBalancerConfig {
                use_aggregates: if cfg.scan_balancing {
                    Some(false)
                } else {
                    None
                },
                ..LoadBalancerConfig::default()
            };
            Balancer::Baseline(LoadBalancer::new(&sys, lcfg))
        };
        let warmth = WarmthModel {
            floor: cfg.warmup_ipc_floor,
            ramp: cfg.warmup_instructions,
            floor_cross_node: cfg.warmup_ipc_floor_cross_node,
            ramp_cross_node: cfg.warmup_instructions_cross_node,
        };
        let next_thermal_sample = cfg.thermal_trace_interval.map(|_| SimTime::ZERO);
        let tracer = cfg.event_trace.then(|| match cfg.event_trace_cap {
            Some(cap) => EventTrace::with_capacity(cap),
            None => EventTrace::new(),
        });
        let profiler = cfg.profile_engine.then(|| PhaseProfiler::new(&PHASE_NAMES));
        // DVFS decision state is keyed per *frequency domain*: under
        // per-package scope the domain map is index-identical to the
        // package tables this engine always kept.
        let n_domains = machine.domain_map().n_domains();
        let governors: Vec<Box<dyn Governor + Send>> = match &cfg.dvfs {
            Some(spec) => (0..n_domains).map(|_| spec.governor.build()).collect(),
            None => Vec::new(),
        };
        let dvfs_busy = vec![0.0; n_domains];
        let pkg_cpus: Vec<Vec<CpuId>> = (0..sys.topology().n_packages())
            .map(|p| sys.topology().cpus_of_package(ebs_topology::PackageId(p)))
            .collect();
        let dom_cpus: Vec<Vec<CpuId>> = (0..n_domains)
            .map(|d| machine.domain_map().cpus(d).to_vec())
            .collect();
        let cpu_dom: Vec<usize> = (0..n_cpus)
            .map(|c| machine.domain_map().domain_of(CpuId(c)))
            .collect();
        let open = cfg
            .open_workload
            .clone()
            .map(|spec| ArrivalProcess::new(spec, cfg.seed));
        let n_packages = pkg_cpus.len();
        Simulation {
            sys,
            power,
            estimator,
            balancer,
            hot: HotTaskMigrator::new(HotTaskConfig::default()),
            placement: PlacementTable::new(Watts(30.0)),
            warmth,
            governors,
            dvfs_next: vec![Some(SimTime::ZERO); n_domains],
            dvfs_hold: vec![None; n_domains],
            pkg_cpus,
            dom_cpus,
            cpu_dom,
            cpu_class,
            capacities,
            dvfs_busy,
            dvfs_window: vec![SimDuration::ZERO; n_domains],
            dvfs_util: vec![0.0; n_domains],
            dvfs_decisions: 0,
            dvfs_dwell_until: vec![SimTime::ZERO; n_domains],
            dvfs_armed_power: vec![Watts(0.0); n_domains],
            dvfs_stable: vec![false; n_domains],
            dvfs_frozen_at: vec![SimTime::ZERO; n_domains],
            inbox: std::collections::VecDeque::new(),
            runtimes: Vec::new(),
            programs: HashMap::new(),
            sleepers: BinaryHeap::new(),
            open,
            latencies: Vec::new(),
            exec_scratch: Vec::new(),
            hot_scratch: vec![false; n_packages],
            cycle_carry: vec![0.0; n_cpus],
            instr_carry: vec![0.0; n_cpus],
            thermal_tau: power_cfg.time_constant,
            rng,
            acc: vec![IntervalAcc::default(); n_cpus],
            newidle_pending: vec![false; n_cpus],
            now: SimTime::ZERO,
            steps: 0,
            completions: HashMap::new(),
            instructions: 0,
            max_temp: Celsius::AMBIENT,
            true_energy: Joules::ZERO,
            estimated_energy: Joules::ZERO,
            thermal_trace: ThermalTrace::default(),
            next_thermal_sample,
            task_trace: TaskCpuTrace::default(),
            tracer,
            metrics: cfg.metrics_interval.map(|every| {
                Box::new(MetricsState::new(
                    every,
                    n_cpus,
                    n_domains,
                    machine.domain_map().scope() == ebs_dvfs::DomainScope::PerCore,
                ))
            }),
            profiler,
            slice_powers: None,
            machine,
            cfg,
        }
    }

    /// Enables per-timeslice power logging (Table 1 experiments).
    pub fn record_slice_powers(&mut self) {
        self.slice_powers = Some(HashMap::new());
    }

    /// The recorded per-task timeslice powers, if enabled.
    pub fn slice_powers(&self) -> Option<&HashMap<TaskId, Vec<Watts>>> {
        self.slice_powers.as_ref()
    }

    /// The scheduler state (read-only).
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// The per-CPU power metrics (read-only).
    pub fn power_state(&self) -> &PowerState {
        &self.power
    }

    /// The physical machine (read-only).
    pub fn machine(&self) -> &PhysicalMachine {
        &self.machine
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The thermal-power trace (empty unless enabled in the config).
    pub fn thermal_trace(&self) -> &ThermalTrace {
        &self.thermal_trace
    }

    /// The task-placement trace (empty unless enabled in the config).
    pub fn task_trace(&self) -> &TaskCpuTrace {
        &self.task_trace
    }

    /// The structured event trace (`None` unless enabled).
    pub fn events(&self) -> Option<&EventTrace> {
        self.tracer.as_ref()
    }

    /// The metrics registry (`None` unless enabled).
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_deref().map(|m| &m.reg)
    }

    /// The engine self-profile (`None` unless enabled).
    pub fn engine_profile(&self) -> Option<&PhaseProfiler> {
        self.profiler.as_ref()
    }

    /// The run so far as a Chrome trace-event JSON document (openable
    /// in `ui.perfetto.dev`), with counter tracks from the metrics
    /// registry when it is enabled. `None` unless event tracing is on.
    pub fn perfetto_json(&self) -> Option<String> {
        let trace = self.tracer.as_ref()?;
        let mut names: HashMap<u64, String> = self
            .programs
            .iter()
            .map(|(&binary, p)| (binary, p.name.to_string()))
            .collect();
        if let Some(open) = &self.open {
            for p in &open.spec().programs {
                names.entry(p.binary).or_insert_with(|| p.name.to_string());
            }
        }
        let events = trace.to_vec();
        Some(ebs_trace::perfetto::export_scoped(
            &events,
            self.metrics.as_deref().map(|m| &m.reg),
            &names,
            self.cfg.effective_domain_scope() == ebs_dvfs::DomainScope::PerCore,
        ))
    }

    /// Records one scheduling event: feeds the event trace when it is
    /// enabled, and keeps the legacy task-CPU trace (fig. 9) fed from
    /// the same stream — `Spawn` and `Migration` are exactly the
    /// placements that trace records. With both sinks disabled this is
    /// two predictable branches and no allocation.
    #[inline]
    fn emit(&mut self, kind: EventKind) {
        // A scheduling or throttle event touching a frozen domain ends
        // its provably-idle span: every transition that can move the
        // domain's busy fraction or thermal trajectory passes through
        // here (dispatches and undispatches always emit a
        // `ContextSwitch`; halt flips emit the throttle events, which
        // touch every domain of the throttled package).
        match kind {
            EventKind::ContextSwitch { cpu, .. } => {
                let dom = self.cpu_dom[cpu as usize];
                if self.dvfs_stable[dom] {
                    self.dvfs_unfreeze(dom);
                }
            }
            EventKind::ThrottleEngage { package } | EventKind::ThrottleRelease { package } => {
                let pkg = package as usize;
                let n = self.machine.domain_map().domains_of_package(pkg).len();
                for i in 0..n {
                    let dom = self.machine.domain_map().domains_of_package(pkg)[i];
                    if self.dvfs_stable[dom] {
                        self.dvfs_unfreeze(dom);
                    }
                }
            }
            _ => {}
        }
        if self.cfg.task_cpu_trace {
            match kind {
                EventKind::Spawn { task, cpu, .. } | EventKind::Migration { task, cpu, .. } => {
                    self.task_trace
                        .push(self.now, TaskId(task), CpuId(cpu as usize));
                }
                _ => {}
            }
        }
        if let Some(trace) = self.tracer.as_mut() {
            trace.record(self.now, kind);
        }
    }

    /// Starts a profiled phase (`None` when profiling is off, so the
    /// disabled path never reads the host clock).
    #[inline]
    fn prof_start(&self) -> Option<std::time::Instant> {
        self.profiler.as_ref().map(|_| std::time::Instant::now())
    }

    /// Ends a profiled phase started by [`Simulation::prof_start`].
    #[inline]
    fn prof_end(&mut self, phase: usize, t0: Option<std::time::Instant>) {
        if let (Some(p), Some(t0)) = (self.profiler.as_mut(), t0) {
            p.record(phase, t0.elapsed());
        }
    }

    /// Spawns one instance of a program; returns its task id.
    pub fn spawn_program(&mut self, program: &Program) -> TaskId {
        self.programs
            .entry(program.binary)
            .or_insert_with(|| program.clone());
        let seed = self.rng.gen();
        self.spawn_internal(program.clone(), seed)
    }

    /// Spawns `copies` instances of every program in the slice (the
    /// paper's "started each program thrice, for a total of 18 running
    /// tasks").
    pub fn spawn_mix(&mut self, programs: &[Program], copies: usize) {
        for program in programs {
            for _ in 0..copies {
                self.spawn_program(program);
            }
        }
    }

    /// Spawns a [`ebs_workloads::Mix`] (programs with counts).
    pub fn spawn_mix_entries(&mut self, mix: &ebs_workloads::Mix) {
        for entry in mix {
            for _ in 0..entry.count {
                self.spawn_program(&entry.program);
            }
        }
    }

    fn spawn_internal(&mut self, program: Program, seed: u64) -> TaskId {
        let binary = BinaryId(program.binary);
        let profile = if self.cfg.energy_placement {
            self.placement.profile_for(binary)
        } else {
            Watts(30.0)
        };
        let cpu = if self.cfg.energy_placement {
            place_new_task_capacity(&self.sys, &self.power, profile, self.capacities.as_deref())
        } else {
            idlest_cpu(&self.sys)
        }
        .unwrap_or(CpuId(0));
        let id = self.sys.spawn(
            TaskConfig {
                nice: 0,
                binary,
                initial_profile: profile,
                profile_weight: 0.25,
            },
            cpu,
        );
        let state = ProgramState::new(program, seed);
        if self.runtimes.len() <= id.0 as usize {
            self.runtimes.resize(id.0 as usize + 1, None);
        }
        let mut rt = TaskRuntime::new(state);
        rt.last_class = self.cpu_class[cpu.0];
        self.runtimes[id.0 as usize] = Some(rt);
        self.emit(EventKind::Spawn {
            task: id.0,
            cpu: cpu.0 as u32,
            binary: binary.0,
        });
        id
    }

    /// Queues an arrival routed by the parallel synchronizer: it
    /// spawns when the clock reaches `due` (the next stride is
    /// bounded the same way engine-owned arrivals bound it).
    pub(crate) fn queue_arrival(&mut self, a: RoutedArrival) {
        debug_assert!(
            self.inbox.back().is_none_or(|b| b.due <= a.due),
            "routed arrivals must be queued in due order"
        );
        self.inbox.push_back(a);
    }

    /// Removes up to `n` queued (never running) tasks for
    /// cross-partition handoff, in deterministic CPU-then-queue order.
    pub(crate) fn extract_queued(&mut self, n: usize) -> Vec<TaskHandoff> {
        let mut out = Vec::new();
        'cpus: for c in 0..self.n_cpus() {
            let cpu = CpuId(c);
            loop {
                if out.len() == n {
                    break 'cpus;
                }
                let current = self.sys.rq(cpu).current();
                let Some(id) = self.sys.rq(cpu).iter_all().find(|&id| Some(id) != current) else {
                    break;
                };
                let profile = self.sys.task(id).profile();
                let binary = self.sys.task(id).binary().0;
                if self.sys.take_queued(id).is_err() {
                    break;
                }
                let runtime = self.runtimes[id.0 as usize]
                    .take()
                    .expect("queued task has runtime state");
                out.push(TaskHandoff {
                    runtime,
                    profile,
                    binary,
                });
            }
        }
        out
    }

    /// Injects a task handed off from another partition: places it
    /// like a fresh spawn, then restores its runtime state with the
    /// warmth reset of a cross-node migration (the handoff *is* a
    /// cross-package move). Arrival metadata survives, so sojourn
    /// times keep measuring from the original arrival.
    pub(crate) fn inject_task(&mut self, h: TaskHandoff) {
        let binary = BinaryId(h.binary);
        let cpu = if self.cfg.energy_placement {
            place_new_task_capacity(
                &self.sys,
                &self.power,
                h.profile,
                self.capacities.as_deref(),
            )
        } else {
            idlest_cpu(&self.sys)
        }
        .unwrap_or(CpuId(0));
        let id = self.sys.spawn(
            TaskConfig {
                nice: 0,
                binary,
                initial_profile: h.profile,
                profile_weight: 0.25,
            },
            cpu,
        );
        if self.runtimes.len() <= id.0 as usize {
            self.runtimes.resize(id.0 as usize + 1, None);
        }
        let mut rt = h.runtime;
        rt.note_migration(0, true);
        rt.last_class = self.cpu_class[cpu.0];
        self.runtimes[id.0 as usize] = Some(rt);
        self.emit(EventKind::Spawn {
            task: id.0,
            cpu: cpu.0 as u32,
            binary: binary.0,
        });
    }

    /// Raw open-workload sojourn samples: (arrival phase, seconds).
    pub(crate) fn raw_latencies(&self) -> &[(&'static str, f64)] {
        &self.latencies
    }

    /// Runnable tasks (running + queued) across the whole system.
    pub(crate) fn runnable_tasks(&self) -> usize {
        (0..self.n_cpus())
            .map(|c| self.sys.nr_running(CpuId(c)))
            .sum()
    }

    /// Routed arrivals queued but not yet spawned — part of the load a
    /// dispatcher routing one arrival at a time must account for.
    pub(crate) fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Runs the simulation for a span of simulated time. The final
    /// step is clamped so the run covers *exactly* `duration` —
    /// [`SimReport::duration`] equals the time requested even when it
    /// is not a tick multiple.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        while self.now < end {
            let t0 = self.prof_start();
            let dt = match self.cfg.max_stride {
                None => self.cfg.tick.min(end - self.now),
                Some(cap) => self.next_stride(end, cap),
            };
            self.prof_end(PHASE_STRIDE, t0);
            self.step_span(dt);
        }
        // Drain arrivals due exactly by the horizon: the next step
        // would spawn them at this same instant, so doing it here
        // makes the arrival count over `[0, duration]` a pure
        // function of the clock — independent of engine mode and of
        // any stride slack near the run end.
        self.arrival_tick();
    }

    /// Advances the simulation by one tick (the fixed-tick step; the
    /// strided core uses [`Simulation::run_for`]).
    pub fn step(&mut self) {
        self.step_span(self.cfg.tick);
    }

    /// One engine step spanning `dt`: releases every event due *now*
    /// (wakes, arrivals, dispatches), then advances machine, policies,
    /// and scheduler state over the span in one pass. Both engine
    /// cores execute exactly this function — the fixed-tick core with
    /// `dt == tick`, the strided core with `dt` bounded so that no
    /// scheduling-relevant event falls strictly inside the span.
    fn step_span(&mut self, dt: SimDuration) {
        debug_assert!(!dt.is_zero(), "empty engine step");
        self.steps += 1;
        let t0 = self.prof_start();
        self.wake_sleepers();
        self.arrival_tick();
        self.dispatch_idle_cpus();
        self.prof_end(PHASE_ARRIVALS, t0);

        self.now += dt;
        self.sys.set_now(self.now);

        let t0 = self.prof_start();
        let completed = self.physics_tick(dt);
        self.prof_end(PHASE_PHYSICS, t0);
        if self.cfg.throttling {
            let t0 = self.prof_start();
            self.throttle_tick(dt);
            self.prof_end(PHASE_THROTTLE, t0);
        }
        let t0 = self.prof_start();
        self.dvfs_tick(dt);
        self.prof_end(PHASE_DVFS, t0);
        let t0 = self.prof_start();
        self.scheduler_tick(dt, &completed);
        self.prof_end(PHASE_SCHED, t0);
        let t0 = self.prof_start();
        self.sample_tick();
        self.prof_end(PHASE_SAMPLING, t0);
        self.emit(EventKind::EngineStep { stride: dt });
    }

    /// The span of the next strided step, from `self.now`: the time to
    /// the nearest scheduling-relevant event, capped at `cap` and the
    /// run end, floored at one tick (events inside a tick resolve at
    /// tick granularity, exactly as in the fixed-tick core).
    fn next_stride(&self, end: SimTime, cap: SimDuration) -> SimDuration {
        let tick = self.cfg.tick;
        // Events that merely *add or finish work* — arrivals,
        // completions, clustered timeslice expiries — may resolve a
        // few ticks late: the fixed-tick core already quantises them
        // to a tick, and a handful of extra milliseconds is noise
        // against service times while letting a saturated machine's
        // event hail merge into fewer spans.
        let slack = tick * 4;
        let mut dt = cap.max(tick);

        // Sleeper wakes and open-workload arrivals.
        if let Some(&Reverse((when, _))) = self.sleepers.peek() {
            dt = dt.min(SimTime::from_micros(when).saturating_since(self.now));
        }
        if let Some(open) = &self.open {
            dt = dt.min(open.next_arrival().saturating_since(self.now).max(slack));
        }
        if let Some(a) = self.inbox.front() {
            dt = dt.min(a.due.saturating_since(self.now).max(slack));
        }
        // Forced governor decisions (cadence deadlines, or the
        // event-driven `max_hold` fallback) and trace samples. Event
        // *triggers* are predicted per package in the loop below.
        let dvfs_event = self.cfg.dvfs.as_ref().is_some_and(|s| s.event_driven);
        let util_cap_s = self
            .cfg
            .dvfs
            .as_ref()
            .map_or(0.0, |s| s.interval.as_secs_f64());
        if self.cfg.dvfs.is_some() {
            for next in self.dvfs_next.iter().flatten() {
                dt = dt.min(next.saturating_since(self.now));
            }
        }
        if let Some(due) = self.next_thermal_sample {
            dt = dt.min(due.saturating_since(self.now));
        }
        // Metrics snapshots are time-weighted samples like the thermal
        // trace, so an active cadence bounds strides the same way; no
        // subscription, no bound (satellite of the sampling floor).
        if let Some(m) = &self.metrics {
            dt = dt.min(m.next.saturating_since(self.now));
        }
        // Periodic balancing passes.
        let due = match &self.balancer {
            Balancer::Baseline(lb) => lb.next_due(),
            Balancer::EnergyAware(eb) => eb.next_due(),
        };
        dt = dt.min(due.saturating_since(self.now));

        let tau_s = self.thermal_tau.as_secs_f64();
        let threads_per_core = self.sys.topology().threads_per_core().max(1);
        for (pkg, cpus) in self.pkg_cpus.iter().enumerate() {
            let pkg_running = self.machine.throttles[pkg].state() == ThrottleState::Running;
            // A frozen package (all its domains frozen) has no running
            // tasks by construction, so the per-CPU expiry/completion
            // scan finds nothing.
            let pkg_frozen = self
                .machine
                .domain_map()
                .domains_of_package(pkg)
                .iter()
                .all(|&d| self.dvfs_stable[d]);
            if pkg_running && !pkg_frozen {
                for (i, &cpu) in cpus.iter().enumerate() {
                    let Some(task) = self.sys.current(cpu) else {
                        continue;
                    };
                    let Some(rt) = self.runtimes[task.0 as usize].as_ref() else {
                        continue;
                    };
                    // Timeslice expiry — but only where the expiry can
                    // change *what runs*: round-robin with queued
                    // tasks, or a program that may block at slice end.
                    // A solo non-blocking task just gets a fresh slice
                    // and keeps running, and the Eq. 2 variable-period
                    // profile average absorbs a stretched slice
                    // exactly, so those expiries resolve at span ends.
                    // Expiries that do matter get a few ticks of slack
                    // (a slice stretching 100 → 104 ms shifts nothing
                    // measurable) so a saturated machine's clustered
                    // expiries merge into one span instead of forcing
                    // per-tick steps.
                    let expiry_matters =
                        self.sys.nr_running(cpu) > 1 || rt.program.program().blocking.is_some();
                    if expiry_matters {
                        if let Some(left) = self.sys.time_to_timeslice_expiry(cpu) {
                            dt = dt.min(left.max(slack));
                        }
                    }
                    // Earliest completion and dwell-driven phase
                    // rotations: these change the task set or the
                    // execution rates, so the span ends near them. The
                    // completion estimate uses the task's *current*
                    // rate (clock, SMT share, warmth): past warmup the
                    // rate is constant within a span, so the estimate
                    // is exact and the completion lands right on the
                    // span boundary. A warming task speeds up and
                    // completes slightly inside its span instead —
                    // detected at the span end, like in a fixed tick.
                    if let Some(total) = rt.program.program().total_work {
                        let core_base = i - i % threads_per_core;
                        let core_end = (core_base + threads_per_core).min(cpus.len());
                        let n_active = cpus[core_base..core_end]
                            .iter()
                            .filter(|&&c| self.sys.current(c).is_some())
                            .count();
                        let share = if n_active <= 1 {
                            1.0
                        } else {
                            self.cfg.smt_speedup / n_active as f64
                        };
                        let freq = self.machine.freq_domains[self.cpu_dom[cpu.0]].frequency().0;
                        let rate = freq * share * rt.program.ipc() * rt.warmth_factor(&self.warmth);
                        if rate > 0.0 {
                            let left = total.saturating_sub(rt.program.work_done());
                            let eta = SimDuration::from_micros(
                                ((left as f64 / rate) * 1e6).ceil() as u64
                            );
                            dt = dt.min(eta.max(slack));
                        }
                    }
                    if let Some(dwell) = rt.program.time_to_phase_change() {
                        dt = dt.min(dwell);
                    }
                }
            }
            // Throttle flips change what executes, so they may not
            // fall inside a span: if the package's thermal power could
            // cross the controller's flip threshold, bound the span by
            // the predicted crossing time (exact for the first-order
            // average under constant samples); once past the
            // threshold, fall back to tick-sized steps.
            if self.cfg.throttling {
                let avg = self.power.thermal_power_sum(cpus).0;
                let thr = self.machine.throttles[pkg].flip_threshold().0;
                let crossed = if pkg_running { avg >= thr } else { avg < thr };
                if crossed {
                    dt = dt.min(tick);
                } else if dt > tick {
                    // Cheap screen before the per-CPU prediction: over
                    // one capped span the average moves by at most
                    // `w(cap) · |sample - avg|`; with samples bounded
                    // by ~120 W per hardware thread, a package more
                    // than `margin` away cannot reach the threshold
                    // this span.
                    let w_cap = 1.0 - (-dt.as_secs_f64() / tau_s).exp();
                    let margin = w_cap * 120.0 * cpus.len() as f64;
                    if (avg - thr).abs() <= margin {
                        let sample = self.predicted_sample(pkg, cpus, threads_per_core);
                        if let Some(t) = crossing_time_s(avg, sample, thr, tau_s) {
                            dt = dt.min(SimDuration::from_micros((t * 1e6) as u64));
                        }
                    }
                }
            }
        }
        // Event-driven governor triggers, per frequency domain: bound
        // the span by the predicted escape time of the last decision's
        // hold bands, so a trigger lands on a step end instead of
        // drifting up to a whole stride late. Steady domains (signals
        // parked inside their bands) impose no bound at all — exactly
        // the strides the fixed 10 ms cadence used to floor.
        if dvfs_event {
            for dom in 0..self.dom_cpus.len() {
                if self.dvfs_stable[dom] {
                    continue;
                }
                let cpus = &self.dom_cpus[dom];
                let pkg = self.machine.domain_map().package_of(dom);
                let dom_running = self.machine.throttles[pkg].state() == ThrottleState::Running;
                match &self.dvfs_hold[dom] {
                    // First decision still pending: it fires next step.
                    None => dt = dt.min(tick),
                    Some(hold) => {
                        if let Some((lo, hi)) = hold.utilization {
                            // The instantaneous busy fraction is
                            // constant within a span (dispatches,
                            // blocks, wakes, and throttle flips all end
                            // spans), so the windowed drift and its
                            // band crossings are in closed form.
                            let b = if dom_running {
                                cpus.iter()
                                    .filter(|&&c| self.sys.current(c).is_some())
                                    .count() as f64
                                    / cpus.len() as f64
                            } else {
                                0.0
                            };
                            let busy = self.dvfs_busy[dom];
                            let window = self.dvfs_window[dom].as_secs_f64();
                            // Where the windowed utilization will sit
                            // at the next step end: already at the
                            // asymptote for a just-reset window.
                            let u0 = if window > 0.0 { busy / window } else { b };
                            if u0 < lo || u0 > hi {
                                // Already escaped (e.g. the busy
                                // fraction jumped right after a
                                // decision): the trigger fires at the
                                // next step, at tick granularity.
                                dt = dt.min(tick);
                            } else {
                                for edge in [lo, hi] {
                                    if let Some(s) =
                                        utilization_crossing_s(busy, window, b, edge, util_cap_s)
                                    {
                                        dt = dt.min(SimDuration::from_micros((s * 1e6) as u64));
                                    }
                                }
                            }
                        }
                        if let Some((lo, hi)) = hold.thermal_power {
                            let avg = self.power.thermal_power_sum(cpus).0;
                            let armed = self.dvfs_armed_power[dom];
                            if hold.stale_descent(Watts(avg), armed) {
                                // Escaped, but suppressed as the
                                // post-downclock stale-average
                                // artifact: the trigger fires at the
                                // dwell expiry — or earlier, if the
                                // power climbs past the armed level
                                // (the workload genuinely grew).
                                let dwell = self.dvfs_dwell_until[dom].saturating_since(self.now);
                                let mut wait = dwell.max(tick);
                                let sample = self.predicted_sample(pkg, cpus, threads_per_core);
                                if let Some(t) = crossing_time_s(avg, sample, armed.0, tau_s) {
                                    wait = wait
                                        .min(SimDuration::from_micros((t * 1e6) as u64).max(tick));
                                }
                                dt = dt.min(wait);
                            } else if avg < lo.0 || avg > hi.0 {
                                // Already escaped: the trigger fires at
                                // the next step, at tick granularity.
                                dt = dt.min(tick);
                            } else if dt > tick {
                                // Same closed-form first-order crossing
                                // the throttle-flip bound uses.
                                let sample = self.predicted_sample(pkg, cpus, threads_per_core);
                                for edge in [lo.0, hi.0] {
                                    if let Some(t) = crossing_time_s(avg, sample, edge, tau_s) {
                                        dt = dt.min(SimDuration::from_micros((t * 1e6) as u64));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        dt.max(tick).min(end - self.now)
    }

    /// Predicts the thermal-power *sample* sum a CPU list (a package,
    /// or one frequency domain of it) will feed its averages this
    /// span: the model power of each running task at its domain's
    /// clock and SMT share, halt power elsewhere. `pkg` is the package
    /// owning every CPU of the list (its throttle gates execution).
    /// Used only to bound strides; physics recomputes the real thing.
    fn predicted_sample(&self, pkg: usize, cpus: &[CpuId], threads_per_core: usize) -> f64 {
        if self.machine.throttles[pkg].state() != ThrottleState::Running {
            // Halted: every CPU sits at its halt share. The
            // homogeneous path keeps the legacy scalar multiply
            // (bit-identical float result); hybrid lists mix shares.
            if !self.machine.catalog().is_hybrid() {
                return self.machine.halt_power_share().0 * cpus.len() as f64;
            }
            return cpus
                .iter()
                .map(|&c| self.machine.halt_power_share_of(c).0)
                .sum();
        }
        let mut sum = 0.0;
        for (i, &cpu) in cpus.iter().enumerate() {
            let Some(task) = self.sys.current(cpu) else {
                sum += self.machine.halt_power_share_of(cpu).0;
                continue;
            };
            let core_base = i - i % threads_per_core;
            let core_end = (core_base + threads_per_core).min(cpus.len());
            let n_active = cpus[core_base..core_end]
                .iter()
                .filter(|&&c| self.sys.current(c).is_some())
                .count();
            let share = if n_active <= 1 {
                1.0
            } else {
                self.cfg.smt_speedup / n_active as f64
            };
            let dom = self.cpu_dom[cpu.0];
            let freq = self.machine.freq_domains[dom].frequency().0;
            let vsq = self.machine.freq_domains[dom].voltage_scale_sq();
            let rt = self.runtimes[task.0 as usize]
                .as_ref()
                .expect("running task has runtime state");
            let rates = rt.program.current_rates();
            sum += self
                .estimator
                .model_for(cpu)
                .power_for_rates(&rates, freq * share)
                .0
                * vsq;
        }
        sum
    }

    /// Spawns open-workload arrivals due now. The arrival process
    /// ([`ArrivalProcess`]) thins a peak-rate Poisson stream — exact
    /// for any time-varying rate, and deterministic per seed.
    fn arrival_tick(&mut self) {
        // Arrivals routed by an outer synchronizer first: the inbox is
        // sorted by due time and spawns follow routing order, which is
        // deterministic regardless of worker count.
        while self.inbox.front().is_some_and(|a| a.due <= self.now) {
            let a = self.inbox.pop_front().expect("checked non-empty");
            let id = self.spawn_internal(a.program, a.seed);
            if let Some(rt) = self.runtimes[id.0 as usize].as_mut() {
                rt.arrival = Some((self.now, a.phase));
            }
        }
        let due = match self.open.as_mut() {
            Some(open) => open.pop_due(self.now),
            None => return,
        };
        for arrival in due {
            let program = self
                .open
                .as_ref()
                .expect("open workload active")
                .spec()
                .materialize(&arrival);
            let id = self.spawn_internal(program, arrival.seed);
            if let Some(rt) = self.runtimes[id.0 as usize].as_mut() {
                rt.arrival = Some((self.now, arrival.phase));
            }
        }
    }

    /// Wakes blocked tasks whose sleep expired.
    fn wake_sleepers(&mut self) {
        while let Some(&Reverse((when, task))) = self.sleepers.peek() {
            if when > self.now.as_micros() {
                break;
            }
            self.sleepers.pop();
            self.sys.wake(task, None);
            self.emit(EventKind::Wakeup { task: task.0 });
        }
    }

    /// Gives idle CPUs with runnable tasks something to run.
    fn dispatch_idle_cpus(&mut self) {
        for c in 0..self.n_cpus() {
            let cpu = CpuId(c);
            if self.sys.current(cpu).is_none() && !self.sys.rq(cpu).is_idle() {
                let sw = self.sys.context_switch(cpu);
                if let Some(next) = sw.next {
                    self.on_dispatch(cpu, next);
                }
            }
        }
    }

    /// Executes one tick of physical machine time: instruction
    /// progress, counter events, true power, temperature. Returns the
    /// CPUs whose running task completed its work this tick.
    fn physics_tick(&mut self, dt: SimDuration) -> Vec<CpuId> {
        let mut completed = Vec::new();
        // The per-package CPU lists are only read here; taking the
        // vector out frees `self` for the mutations below without the
        // per-tick clone this loop used to pay (restored at the end).
        let pkg_cpus = std::mem::take(&mut self.pkg_cpus);
        let threads_per_core = self.sys.topology().threads_per_core().max(1);
        for (pkg, cpus) in pkg_cpus.iter().enumerate() {
            // A CPU executes this tick if it has a running task and is
            // not halted by the throttle controller.
            let pkg_running = self.machine.throttles[pkg].state() == ThrottleState::Running;
            self.exec_scratch.clear();
            for &c in cpus.iter() {
                self.exec_scratch
                    .push(self.sys.current(c).is_some() && pkg_running);
            }
            let mut pkg_energy = Joules::ZERO;
            for (i, &cpu) in cpus.iter().enumerate() {
                if self.exec_scratch[i] {
                    // SMT contention is per *core*: only the hardware
                    // threads sharing this CPU's pipeline split its
                    // issue width (`cpus` is core-major, so siblings
                    // are adjacent).
                    let core_base = i - i % threads_per_core;
                    let core_end = (core_base + threads_per_core).min(cpus.len());
                    let n_active = self.exec_scratch[core_base..core_end]
                        .iter()
                        .filter(|&&e| e)
                        .count();
                    let share = if n_active <= 1 {
                        1.0
                    } else {
                        self.cfg.smt_speedup / n_active as f64
                    };
                    let task = self.sys.current(cpu).expect("executing CPU has a task");
                    // The CPU's frequency domain scales execution
                    // speed (cycles ~ f) and dynamic energy per event
                    // (~ V²); the event counts themselves already
                    // shrink with the cycle count, so dynamic power
                    // scales as V²·f overall. The domain's frequency
                    // is absolute, so classes with different nominal
                    // clocks genuinely execute at different speeds.
                    let dom = self.cpu_dom[cpu.0];
                    let freq = self.machine.freq_domains[dom].frequency().0;
                    let vscale_sq = self.machine.freq_domains[dom].voltage_scale_sq();
                    // Emit whole cycles, carrying the fractional part
                    // so retired work is step-size-invariant: chopping
                    // the same wall time into different spans yields
                    // the same cumulative cycle count (±1).
                    let raw_cycles = freq * dt.as_secs_f64() * share;
                    let cycles_f = raw_cycles + self.cycle_carry[cpu.0];
                    let cycles = cycles_f as u64;
                    self.cycle_carry[cpu.0] = (cycles_f - cycles as f64).max(0.0);
                    let rt = self.runtimes[task.0 as usize]
                        .as_mut()
                        .expect("running task has runtime state");
                    let counts = rt.program.current_rates().counts_for_cycles(cycles);
                    self.machine.banks[cpu.0].record(&counts);
                    let class = ebs_topology::ClassId(self.cpu_class[cpu.0]);
                    pkg_energy +=
                        self.machine.class_truth(class).model.estimate(&counts) * vscale_sq;
                    // Instruction progress, damped by cache warmth and
                    // the class's pipeline width (`ipc_factor` is
                    // exactly 1.0 for class 0, so homogeneous runs are
                    // bit-identical). The instruction stream carries
                    // its own remainder off the *unrounded* cycle
                    // flow, so its total is independent of how cycles
                    // happened to round.
                    let wf = rt.warmth_factor(&self.warmth);
                    let class_ipc = self.machine.catalog().get(class).ipc_factor;
                    let instr_f =
                        raw_cycles * rt.program.ipc() * wf * class_ipc + self.instr_carry[cpu.0];
                    let instr = instr_f as u64;
                    self.instr_carry[cpu.0] = (instr_f - instr as f64).max(0.0);
                    rt.add_warmth(instr);
                    let done = rt.program.add_work(instr);
                    rt.program.advance_time(dt);
                    self.instructions += instr;
                    if done {
                        completed.push(cpu);
                    }
                    // Estimator: running interval, nothing halted. The
                    // kernel programs the P-state itself, so it scales
                    // the counter-derived energy by the known (V/V₀)²
                    // just as it adds the known halt power for idling.
                    let est = self.estimator.account(
                        cpu,
                        &mut self.machine.banks[cpu.0],
                        dt,
                        SimDuration::ZERO,
                    ) * vscale_sq;
                    self.acc[cpu.0].energy += est;
                    self.acc[cpu.0].time += dt;
                    self.estimated_energy += est;
                    self.power.observe(cpu, est.average_power(dt), dt);
                } else {
                    // Idle or throttled: halt power only (the class's
                    // own share on hybrid machines).
                    pkg_energy += self.machine.halt_power_share_of(cpu).over(dt);
                    let est = self
                        .estimator
                        .account(cpu, &mut self.machine.banks[cpu.0], dt, dt);
                    self.estimated_energy += est;
                    self.power.observe(cpu, est.average_power(dt), dt);
                }
            }
            // Counter-invisible leakage, then the RC step.
            let temp = self.machine.thermals[pkg].temperature();
            pkg_energy += self.machine.package_leakage(pkg).power(temp).over(dt);
            self.true_energy += pkg_energy;
            let t = self.machine.thermals[pkg].step(pkg_energy.average_power(dt), dt);
            self.max_temp = self.max_temp.max(t);
        }
        self.pkg_cpus = pkg_cpus;
        completed
    }

    /// Updates the per-package throttle controllers from the sum of
    /// the sibling thermal powers (only physical processors overheat).
    fn throttle_tick(&mut self, dt: SimDuration) {
        for pkg in 0..self.pkg_cpus.len() {
            let thermal = self.power.thermal_power_sum(&self.pkg_cpus[pkg]);
            let before = self.machine.throttles[pkg].state();
            let after = self.machine.throttles[pkg].observe(thermal, dt);
            if before != after {
                self.emit(match after {
                    ThrottleState::Halted => EventKind::ThrottleEngage {
                        package: pkg as u32,
                    },
                    ThrottleState::Running => EventKind::ThrottleRelease {
                        package: pkg as u32,
                    },
                });
            }
        }
    }

    /// Advances P-state residency and re-runs each package's governor
    /// at its decision points: event triggers (the default — the
    /// windowed utilization or the thermal power left the
    /// [`DecisionHold`] band of the last decision, both fed from the
    /// same signals the throttle controllers watch) or the fixed
    /// cadence of the measured baseline.
    fn dvfs_tick(&mut self, dt: SimDuration) {
        for dom in &mut self.machine.freq_domains {
            dom.advance(dt);
        }
        let Some(spec) = &self.cfg.dvfs else { return };
        let event_driven = spec.event_driven;
        let interval = spec.interval;
        let max_hold = spec.max_hold;
        // Accumulate busy time every step so a task blocking and
        // waking between decisions still shows up as load. A domain
        // halted by its package's throttle executes nothing, whatever
        // its runqueues hold — mirroring `physics_tick`'s notion of
        // executing, so a throttled domain reads as idle and the
        // governor downclocks to relieve the pressure.
        for dom in 0..self.dom_cpus.len() {
            if self.dvfs_stable[dom] {
                continue;
            }
            self.dvfs_window[dom] += dt;
            let pkg = self.machine.domain_map().package_of(dom);
            if self.machine.throttles[pkg].state() != ThrottleState::Running {
                continue;
            }
            let cpus = &self.dom_cpus[dom];
            let busy = cpus
                .iter()
                .filter(|&&c| self.sys.current(c).is_some())
                .count();
            let share = busy as f64 / cpus.len() as f64 * dt.as_secs_f64();
            self.dvfs_busy[dom] += share;
        }
        for dom in 0..self.dom_cpus.len() {
            if self.dvfs_stable[dom] {
                continue;
            }
            if event_driven && self.dvfs_window[dom] > interval {
                // Cap the utilization window at the cadence interval:
                // without decisions to reset it, an unbounded window
                // would make utilization arbitrarily sluggish. The
                // renormalisation keeps it exactly as responsive as
                // the baseline's between-decision windows.
                let scale = interval.ratio(self.dvfs_window[dom]);
                self.dvfs_busy[dom] *= scale;
                self.dvfs_window[dom] = interval;
            }
            let due_by_deadline = self.dvfs_next[dom].is_some_and(|t| self.now >= t);
            let due = due_by_deadline
                || (event_driven
                    && match &self.dvfs_hold[dom] {
                        None => true,
                        // Escape triggers fire immediately unless the
                        // hold's dwell is active *and* the escape is
                        // the post-downclock stale-average artifact;
                        // forced deadlines are never suppressed.
                        Some(hold) => {
                            let util = windowed_utilization(
                                self.dvfs_busy[dom],
                                self.dvfs_window[dom],
                                self.dvfs_util[dom],
                            );
                            let power = self.power.thermal_power_sum(&self.dom_cpus[dom]);
                            hold.is_escaped(util, power)
                                && (self.now >= self.dvfs_dwell_until[dom]
                                    || !hold.stale_descent(power, self.dvfs_armed_power[dom]))
                        }
                    });
            if due {
                self.dvfs_decide(dom, interval, event_driven, max_hold);
            }
            // Freeze screen (the per-domain hold-expiry index): a
            // domain whose hold provably cannot escape and whose
            // deadline is unarmed is exempted from the per-step
            // accounting above until an event touches it.
            if event_driven
                && self.dvfs_next[dom].is_none()
                && !self.dvfs_stable[dom]
                && self.domain_provably_parked(dom)
            {
                self.dvfs_stable[dom] = true;
                self.dvfs_frozen_at[dom] = self.now;
            }
        }
    }

    /// Whether `dom` can be frozen out of the per-step DVFS
    /// accounting: exactly zero accumulated busy time, nothing
    /// executing (idle or halted — either way the busy increment
    /// stays zero until a scheduling or throttle event, both of which
    /// unfreeze through [`Simulation::emit`]), and hold bands that
    /// contain the whole future signal trajectory. The utilization
    /// signal is pinned at zero; the thermal-power average decays
    /// monotonically toward the halt floor, so containment of the
    /// current value and the asymptote bounds every intermediate one.
    fn domain_provably_parked(&self, dom: usize) -> bool {
        let Some(hold) = &self.dvfs_hold[dom] else {
            return false;
        };
        if self.dvfs_busy[dom] != 0.0 {
            return false;
        }
        let cpus = &self.dom_cpus[dom];
        let pkg = self.machine.domain_map().package_of(dom);
        let halted = self.machine.throttles[pkg].state() != ThrottleState::Running;
        if !halted && cpus.iter().any(|&c| self.sys.current(c).is_some()) {
            return false;
        }
        if let Some((lo, hi)) = hold.utilization {
            if lo > 0.0 || hi < 0.0 {
                return false;
            }
        }
        if let Some((lo, hi)) = hold.thermal_power {
            let avg = self.power.thermal_power_sum(cpus).0;
            // The halt floor: the legacy scalar multiply on single-class
            // machines (bit-identical), the per-CPU sum on hybrid ones.
            let floor = if self.machine.catalog().is_hybrid() {
                cpus.iter()
                    .map(|&c| self.machine.halt_power_share_of(c).0)
                    .sum()
            } else {
                self.machine.halt_power_share().0 * cpus.len() as f64
            };
            if avg < lo.0 || avg > hi.0 || floor < lo.0 || floor > hi.0 {
                return false;
            }
        }
        true
    }

    /// Catches a frozen domain's utilization window up to `now` in
    /// one move. Exact: the domain's busy time stayed exactly zero
    /// over the frozen span (renormalising a zero is a zero), so the
    /// only state the skipped per-step updates would have changed is
    /// the window length — which saturates at the cadence interval.
    fn dvfs_catch_up(&mut self, dom: usize) {
        let elapsed = self.now.saturating_since(self.dvfs_frozen_at[dom]);
        if let Some(spec) = &self.cfg.dvfs {
            self.dvfs_window[dom] = (self.dvfs_window[dom] + elapsed).min(spec.interval);
        }
        self.dvfs_frozen_at[dom] = self.now;
    }

    fn dvfs_unfreeze(&mut self, dom: usize) {
        self.dvfs_catch_up(dom);
        self.dvfs_stable[dom] = false;
    }

    /// One governor decision for `dom`: assembles the input from the
    /// accumulated utilization window and the thermal-power signal,
    /// lets the governor pick the P-state, and re-arms the domain's
    /// next decision point (hold bands and optional fallback deadline
    /// when event-driven, the fixed cadence otherwise). The idle
    /// floor is the halt power of the domain's core class — an
    /// efficiency domain idles at a lower floor than a performance
    /// one, so its governor reads headroom correctly.
    fn dvfs_decide(
        &mut self,
        dom: usize,
        interval: SimDuration,
        event_driven: bool,
        max_hold: Option<SimDuration>,
    ) {
        let utilization = windowed_utilization(
            self.dvfs_busy[dom],
            self.dvfs_window[dom],
            self.dvfs_util[dom],
        );
        let cpus = &self.dom_cpus[dom];
        let class = self.machine.domain_map().class_of(dom);
        let input = GovernorInput {
            thermal_power: self.power.thermal_power_sum(cpus),
            budget: self.power.max_power_sum(cpus),
            idle_floor: self.machine.class_truth(class).halt_power,
            utilization,
        };
        self.dvfs_busy[dom] = 0.0;
        self.dvfs_window[dom] = SimDuration::ZERO;
        self.dvfs_util[dom] = utilization;
        self.dvfs_decisions += 1;
        let next = self.governors[dom].decide(&input, &self.machine.freq_domains[dom]);
        if event_driven {
            let hold = self.governors[dom].hold(&input, &self.machine.freq_domains[dom], next);
            self.dvfs_dwell_until[dom] = self.now + hold.min_dwell;
            self.dvfs_armed_power[dom] = input.thermal_power;
            self.dvfs_hold[dom] = Some(hold);
            self.dvfs_next[dom] = max_hold.map(|h| self.now + h);
        } else {
            self.dvfs_next[dom] = Some(self.now + interval);
        }
        let from = self.machine.freq_domains[dom].current_index();
        self.machine.freq_domains[dom].set_state(next);
        self.emit(EventKind::GovernorDecision {
            package: dom as u32,
            pstate: next as u32,
        });
        if from != next {
            self.emit(EventKind::PStateTransition {
                package: dom as u32,
                from: from as u32,
                to: next as u32,
            });
        }
    }

    /// Scheduler work for one tick: timeslices, completions, blocking,
    /// the balancing policies, and hot task migration.
    fn scheduler_tick(&mut self, dt: SimDuration, completed: &[CpuId]) {
        // Hot-task pre-screen, once per package: the full trigger test
        // re-sums the package thermal power for every CPU; packages
        // below the trigger fraction can skip it wholesale. The
        // comparison is exactly the one `HotTaskMigrator::triggered`
        // performs (same CPU list, same float sum), so the screen
        // never changes a decision.
        if self.cfg.hot_task_migration {
            let trigger = self.hot.config().trigger_fraction;
            for pkg in 0..self.pkg_cpus.len() {
                let cpus = &self.pkg_cpus[pkg];
                let thermal = self.power.thermal_power_sum(cpus);
                let budget = self.power.max_power_sum(cpus);
                self.hot_scratch[pkg] = thermal.0 >= budget.0 * trigger;
            }
        }
        // Task completions first: they free CPUs and may respawn.
        for &cpu in completed {
            if let Some(task) = self.sys.current(cpu) {
                self.finalize_interval(cpu);
                self.sys.exit_current(cpu);
                let binary = self.sys.task(task).binary().0;
                *self.completions.entry(binary).or_insert(0) += 1;
                self.emit(EventKind::Completion {
                    task: task.0,
                    cpu: cpu.0 as u32,
                });
                let arrived = self.runtimes[task.0 as usize]
                    .take()
                    .and_then(|rt| rt.arrival);
                if let Some((t0, phase)) = arrived {
                    self.latencies
                        .push((phase, self.now.saturating_since(t0).as_secs_f64()));
                }
                // Only closed-workload tasks respawn; open arrivals
                // complete and leave the system.
                if arrived.is_none() && self.cfg.respawn {
                    if let Some(program) = self.programs.get(&binary).cloned() {
                        let seed = self.rng.gen();
                        self.spawn_internal(program, seed);
                    }
                }
                let sw = self.sys.context_switch(cpu);
                match sw.next {
                    Some(next) => self.on_dispatch(cpu, next),
                    None => {
                        self.newidle_pending[cpu.0] = true;
                        self.emit(EventKind::ContextSwitch {
                            cpu: cpu.0 as u32,
                            task: None,
                        });
                    }
                }
            }
        }

        for c in 0..self.n_cpus() {
            let cpu = CpuId(c);
            // Timeslice accounting only while actually executing.
            let pkg = self.sys.topology().package_of(cpu).0;
            let throttled = self.machine.throttles[pkg].state() == ThrottleState::Halted;
            if !throttled && self.sys.current(cpu).is_some() {
                let r = self.sys.tick(cpu, dt);
                if r.timeslice_expired {
                    self.end_of_timeslice(cpu);
                }
            }

            // Hot task migration: checked whenever thermal power was
            // updated, i.e. every step (cheap trigger test behind the
            // per-package pre-screen).
            if self.cfg.hot_task_migration && self.hot_scratch[pkg] {
                self.hot_check(cpu);
            }

            // Periodic balancing (self-gated by domain intervals).
            let pulled = match &mut self.balancer {
                Balancer::Baseline(lb) => lb.run(cpu, &mut self.sys).pulled,
                Balancer::EnergyAware(eb) => eb.run(cpu, &mut self.sys, &self.power).pulled,
            };
            if pulled > 0 {
                self.emit(EventKind::BalancerRound {
                    cpu: cpu.0 as u32,
                    pulled: pulled as u32,
                });
            }

            // New-idle balancing, once per idle transition.
            if self.newidle_pending[c] && self.sys.rq(cpu).is_idle() {
                self.newidle_pending[c] = false;
                let pulled = match &mut self.balancer {
                    Balancer::Baseline(lb) => lb.newidle(cpu, &mut self.sys).pulled,
                    Balancer::EnergyAware(eb) => eb.newidle(cpu, &mut self.sys, &self.power).pulled,
                };
                if pulled > 0 {
                    self.emit(EventKind::BalancerRound {
                        cpu: cpu.0 as u32,
                        pulled: pulled as u32,
                    });
                }
            }
        }
    }

    /// Handles a timeslice expiry on `cpu`: energy accounting, the
    /// blocking decision, and the context switch.
    fn end_of_timeslice(&mut self, cpu: CpuId) {
        let Some(task) = self.sys.current(cpu) else {
            return;
        };
        self.finalize_interval(cpu);
        // Interactive programs may block at slice end.
        let sleeps = self.runtimes[task.0 as usize]
            .as_mut()
            .and_then(|rt| rt.program.end_slice());
        if let Some(sleep) = sleeps {
            self.sys.block_current(cpu);
            self.sleepers
                .push(Reverse(((self.now + sleep).as_micros(), task)));
        }
        let sw = self.sys.context_switch(cpu);
        match sw.next {
            Some(next) => self.on_dispatch(cpu, next),
            None => {
                self.newidle_pending[cpu.0] = true;
                self.emit(EventKind::ContextSwitch {
                    cpu: cpu.0 as u32,
                    task: None,
                });
            }
        }
    }

    /// Runs the hot-task policy for `cpu`; performs the context
    /// switches its migrations require.
    fn hot_check(&mut self, cpu: CpuId) -> Option<()> {
        if !self.hot.triggered(cpu, &self.sys, &self.power) {
            return None;
        }
        // The running task is about to move: close its accounting
        // interval first.
        self.finalize_interval(cpu);
        let migration = self.hot.run_with_capacities(
            cpu,
            &mut self.sys,
            &self.power,
            self.capacities.as_deref(),
        )?;
        match migration {
            ebs_core::HotMigration::ToIdle { dest, .. } => {
                // Source went idle; destination dispatches the task.
                let sw = self.sys.context_switch(dest);
                if let Some(next) = sw.next {
                    self.on_dispatch(dest, next);
                }
                self.newidle_pending[cpu.0] = true;
                self.emit(EventKind::ContextSwitch {
                    cpu: cpu.0 as u32,
                    task: None,
                });
            }
            ebs_core::HotMigration::Exchanged { dest, .. } => {
                self.finalize_interval(dest);
                for c in [cpu, dest] {
                    let sw = self.sys.context_switch(c);
                    if let Some(next) = sw.next {
                        self.on_dispatch(c, next);
                    }
                }
            }
        }
        Some(())
    }

    /// Bookkeeping when `task` starts running on `cpu`.
    fn on_dispatch(&mut self, cpu: CpuId, task: TaskId) {
        let migrations = self.sys.task(task).migrations();
        let last = self.sys.task(task).last_migration();
        let mut migrated = false;
        let class = self.cpu_class[cpu.0];
        let mut refit = None;
        if let Some(rt) = self.runtimes[task.0 as usize].as_mut() {
            if migrations != rt.migrations_seen {
                let cross = last.map(|(_, c)| c).unwrap_or(false);
                rt.note_migration(migrations, cross);
                migrated = true;
            }
            if rt.last_class != class {
                refit = Some(rt.last_class);
                rt.last_class = class;
            }
            rt.program.begin_slice();
        }
        // Cross-class profile refit: the profile measured on the old
        // class predicts the wrong power here — the same counter
        // activity costs class-specific per-event energies at a
        // class-specific nominal clock. Rescale by the calibrated
        // models' power ratio for the task's current rates so the
        // balancer sees a sane estimate immediately instead of waiting
        // a profile half-life. Only hybrid machines have a second
        // class, so homogeneous runs never take this path.
        if let Some(old_class) = refit {
            let rates = self.runtimes[task.0 as usize]
                .as_ref()
                .expect("dispatched task has runtime state")
                .program
                .current_rates();
            let old_hz = self
                .machine
                .class_truth(ebs_topology::ClassId(old_class))
                .freq_hz;
            let new_hz = self
                .machine
                .class_truth(ebs_topology::ClassId(class))
                .freq_hz;
            let old_p = self
                .estimator
                .class_model(old_class)
                .power_for_rates(&rates, old_hz);
            let new_p = self
                .estimator
                .class_model(class)
                .power_for_rates(&rates, new_hz);
            if old_p.0 > 0.0 && new_p.0 > 0.0 {
                let scaled = self.sys.task(task).profile().0 * new_p.0 / old_p.0;
                self.sys.reset_profile(task, Watts(scaled));
            }
        }
        if migrated {
            let reason = self
                .sys
                .task(task)
                .last_migration_reason()
                .map(|r| r.name())
                .unwrap_or("unknown");
            self.emit(EventKind::Migration {
                task: task.0,
                cpu: cpu.0 as u32,
                reason,
            });
        }
        self.emit(EventKind::ContextSwitch {
            cpu: cpu.0 as u32,
            task: Some(task.0),
        });
        self.acc[cpu.0] = IntervalAcc {
            task: Some(task),
            energy: Joules::ZERO,
            time: SimDuration::ZERO,
        };
    }

    /// Closes the running task's accounting interval on `cpu`: updates
    /// its energy profile (Eq. 2, variable period) and the placement
    /// table after the first timeslice.
    fn finalize_interval(&mut self, cpu: CpuId) {
        let a = self.acc[cpu.0];
        self.acc[cpu.0] = IntervalAcc {
            task: a.task,
            energy: Joules::ZERO,
            time: SimDuration::ZERO,
        };
        let Some(task) = a.task else { return };
        if a.time.is_zero() {
            return;
        }
        let p = a.energy.average_power(a.time);
        // Through the system, not the task: the profile of a running
        // task feeds its queue's runqueue power, which the aggregate
        // tree tracks incrementally.
        self.sys.update_profile(task, p, a.time);
        let binary = self.sys.task(task).binary();
        if let Some(rt) = self.runtimes[task.0 as usize].as_mut() {
            if !rt.first_slice_recorded {
                rt.first_slice_recorded = true;
                self.placement.record_first_slice(binary, p);
            }
        }
        if let Some(log) = self.slice_powers.as_mut() {
            // Only count substantial slices; sub-50 ms fragments are
            // migration artefacts, not the paper's "timeslices".
            if a.time >= SimDuration::from_millis(50) {
                log.entry(task).or_default().push(p);
            }
        }
    }

    /// End-of-step sampling: the thermal trace at its cadence, and the
    /// metrics snapshot at its own. Both cadences also bound variable
    /// strides (see [`Simulation::next_stride`]), so samples land on
    /// their exact instants in either engine core.
    fn sample_tick(&mut self) {
        if let (Some(interval), Some(due)) =
            (self.cfg.thermal_trace_interval, self.next_thermal_sample)
        {
            if self.now >= due {
                let row: Vec<Watts> = (0..self.n_cpus())
                    .map(|c| self.power.thermal_power(CpuId(c)))
                    .collect();
                self.thermal_trace.push(self.now, row);
                self.next_thermal_sample = Some(due + interval);
            }
        }
        // Taking the state out ends the borrow on `self.metrics`, so
        // publishing can read the rest of `self` freely.
        if let Some(mut m) = self.metrics.take() {
            if self.now >= m.next {
                self.publish_metrics(&mut m);
                m.reg.snapshot(self.now);
                m.next += m.interval;
            }
            self.metrics = Some(m);
        }
    }

    /// Pushes the current totals and signal levels into the metrics
    /// registry (called at snapshot instants only: counters are read
    /// from existing statistics, so skipping steps loses nothing).
    fn publish_metrics(&mut self, m: &mut MetricsState) {
        let stats = self.sys.stats();
        let reg = &mut m.reg;
        reg.set_total(m.c_steps, self.steps);
        reg.set_total(m.c_instructions, self.instructions);
        reg.set_total(m.c_ctx, stats.context_switches);
        reg.set_total(m.c_migrations, stats.migrations());
        reg.set_total(m.c_completions, self.completions.values().sum());
        reg.set_total(m.c_arrivals, self.open.as_ref().map_or(0, |o| o.accepted()));
        reg.set_total(m.c_dvfs_decisions, self.dvfs_decisions);
        reg.set_total(
            m.c_dvfs_transitions,
            self.machine
                .freq_domains
                .iter()
                .map(|d| d.transitions())
                .sum(),
        );
        reg.set_total(
            m.c_throttle_engagements,
            self.machine
                .throttles
                .iter()
                .map(|t| t.stats().engagements)
                .sum(),
        );
        for c in 0..self.n_cpus() {
            let cpu = CpuId(c);
            reg.set_gauge(m.g_power[c], self.now, self.power.thermal_power(cpu).0);
            reg.set_gauge(m.g_rq[c], self.now, self.sys.nr_running(cpu) as f64);
        }
        for (d, dom) in self.machine.freq_domains.iter().enumerate() {
            reg.set_gauge(m.g_freq[d], self.now, dom.frequency().0 / 1e9);
        }
        for dom in 0..self.dom_cpus.len() {
            // Frozen domains stopped accumulating their windows; the
            // catch-up is exact (zero busy time) and keeps them frozen.
            if self.dvfs_stable[dom] {
                self.dvfs_catch_up(dom);
            }
            let util = windowed_utilization(
                self.dvfs_busy[dom],
                self.dvfs_window[dom],
                self.dvfs_util[dom],
            );
            reg.set_gauge(m.g_util[dom], self.now, util);
        }
    }

    pub(crate) fn n_cpus(&self) -> usize {
        self.sys.topology().n_cpus()
    }

    /// Summarises the run.
    pub fn report(&self) -> SimReport {
        let stats = self.sys.stats();
        // Per-logical view of the per-package throttle statistics.
        let throttled: Vec<f64> = (0..self.n_cpus())
            .map(|c| {
                let pkg = self.sys.topology().package_of(CpuId(c)).0;
                self.machine.throttles[pkg].stats().throttled_fraction()
            })
            .collect();
        let avg = if throttled.is_empty() {
            0.0
        } else {
            throttled.iter().sum::<f64>() / throttled.len() as f64
        };
        let mut completions_by_binary: Vec<(u64, u64)> =
            self.completions.iter().map(|(&b, &n)| (b, n)).collect();
        completions_by_binary.sort_unstable();
        // Per-package throttle statistics, surfaced directly so
        // experiments stop recomputing them from per-logical views.
        let throttle_stats: Vec<_> = self.machine.throttles.iter().map(|t| t.stats()).collect();
        // P-state residency aggregated over the per-domain tables. On
        // single-class machines the tables are identical, so the
        // legacy state-wise sum applies verbatim; hybrid machines
        // carry heterogeneous tables per class, so residency merges by
        // exact frequency instead (descending, like a P-state table).
        let domains = &self.machine.freq_domains;
        let total_observed: SimDuration = domains.iter().map(|d| d.observed()).sum();
        let per_domain: Vec<Vec<PStateResidency>> = domains.iter().map(|d| d.residency()).collect();
        let pstate_residency: Vec<PStateResidency> = if self.machine.catalog().is_hybrid() {
            let mut merged: Vec<PStateResidency> = Vec::new();
            for r in per_domain.iter().flatten() {
                match merged.iter_mut().find(|m| m.frequency == r.frequency) {
                    Some(m) => m.time += r.time,
                    None => merged.push(PStateResidency {
                        frequency: r.frequency,
                        time: r.time,
                        fraction: 0.0,
                    }),
                }
            }
            merged.sort_by(|a, b| b.frequency.0.total_cmp(&a.frequency.0));
            for m in &mut merged {
                m.fraction = if total_observed.is_zero() {
                    0.0
                } else {
                    m.time.ratio(total_observed)
                };
            }
            merged
        } else {
            match domains.first() {
                Some(first) => (0..first.table().len())
                    .map(|i| {
                        let time: SimDuration = per_domain.iter().map(|r| r[i].time).sum();
                        PStateResidency {
                            frequency: first.table().get(i).frequency,
                            time,
                            fraction: if total_observed.is_zero() {
                                0.0
                            } else {
                                time.ratio(total_observed)
                            },
                        }
                    })
                    .collect(),
                None => Vec::new(),
            }
        };
        let avg_scaled_fraction = if domains.is_empty() {
            0.0
        } else {
            domains.iter().map(|d| d.scaled_fraction()).sum::<f64>() / domains.len() as f64
        };
        let mean_frequency = if domains.is_empty() {
            ebs_units::Hertz(self.cfg.freq_hz)
        } else {
            ebs_units::Hertz(
                domains.iter().map(|d| d.mean_frequency().0).sum::<f64>() / domains.len() as f64,
            )
        };
        // Open-workload statistics: overall and per-curve-phase
        // sojourn times of every completed arrival.
        let latency = LatencyStats::from_samples(self.latencies.iter().map(|&(_, s)| s).collect());
        let phase_latencies: Vec<(String, LatencyStats)> = match &self.cfg.open_workload {
            Some(w) => w
                .curve
                .phases()
                .iter()
                .filter_map(|&ph| {
                    let xs: Vec<f64> = self
                        .latencies
                        .iter()
                        .filter(|&&(p, _)| p == ph)
                        .map(|&(_, s)| s)
                        .collect();
                    (!xs.is_empty()).then(|| (ph.to_string(), LatencyStats::from_samples(xs)))
                })
                .collect(),
            None => Vec::new(),
        };
        SimReport {
            duration: self.now - SimTime::ZERO,
            engine_steps: self.steps,
            migrations: stats.migrations(),
            migrations_by_reason: stats.migrations_by_reason,
            context_switches: stats.context_switches,
            completions: completions_by_binary.iter().map(|&(_, n)| n).sum(),
            arrivals: self.open.as_ref().map_or(0, |o| o.accepted()),
            latency,
            phase_latencies,
            completions_by_binary,
            instructions_retired: self.instructions,
            throughput_ips: if self.now == SimTime::ZERO {
                0.0
            } else {
                self.instructions as f64 / self.now.as_secs_f64()
            },
            throttled_fraction: throttled,
            avg_throttled_fraction: avg,
            throttle_stats,
            pstate_residency,
            avg_scaled_fraction,
            mean_frequency,
            dvfs_transitions: domains.iter().map(|d| d.transitions()).sum(),
            dvfs_decisions: self.dvfs_decisions,
            max_package_temp: self.max_temp,
            true_energy: self.true_energy,
            estimated_energy: self.estimated_energy,
        }
    }
}

// ---------------------------------------------------------------------
// Checkpointing.
//
// A [`Simulation`] snapshot captures every piece of evolving state —
// scheduler, machine physics, policy timers, RNG streams, carries, and
// run statistics — but never configuration (rebuilt by constructing a
// fresh engine from the same [`SimConfig`]) and never observability
// sinks (traces, metrics histories, profiles), with one deliberate
// exception: the *cadence cursors* of enabled sinks are state, because
// they bound variable strides and therefore shape the event sequence.
// ---------------------------------------------------------------------

/// Reads a shaped table of raw values and rejects a count mismatch.
fn restore_table<T>(
    r: &mut ebs_store::StateReader<'_>,
    out: &mut [T],
    what: &str,
    mut read: impl FnMut(&mut ebs_store::StateReader<'_>) -> Result<T, ebs_store::StoreError>,
) -> Result<(), ebs_store::StoreError> {
    let n = r.usize()?;
    if n != out.len() {
        return Err(ebs_store::StoreError::Invalid(format!(
            "snapshot has {n} {what}, engine has {}",
            out.len()
        )));
    }
    for slot in out {
        *slot = read(r)?;
    }
    Ok(())
}

fn save_hold(w: &mut ebs_store::StateWriter, hold: &DecisionHold) {
    w.opt(&hold.utilization, |w, &(lo, hi)| {
        w.f64(lo);
        w.f64(hi);
    });
    w.opt(&hold.thermal_power, |w, &(lo, hi)| {
        w.watts(lo);
        w.watts(hi);
    });
    w.duration(hold.min_dwell);
}

fn read_hold(r: &mut ebs_store::StateReader<'_>) -> Result<DecisionHold, ebs_store::StoreError> {
    Ok(DecisionHold {
        utilization: r.opt(|r| Ok((r.f64()?, r.f64()?)))?,
        thermal_power: r.opt(|r| Ok((r.watts()?, r.watts()?)))?,
        min_dwell: r.duration()?,
    })
}

impl ebs_store::Snapshot for Simulation {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.key("engine");
        self.sys.save(w);
        self.machine.save(w);
        w.key("policies");
        self.power.save(w);
        self.estimator.save(w);
        match &self.balancer {
            Balancer::Baseline(b) => {
                w.u8(0);
                b.save(w);
            }
            Balancer::EnergyAware(b) => {
                w.u8(1);
                b.save(w);
            }
        }
        self.placement.save(w);
        w.key("dvfs");
        w.seq(&self.dvfs_next, |w, next| {
            w.opt(next, |w, &t| w.time(t));
        });
        w.seq(&self.dvfs_hold, |w, hold| {
            w.opt(hold, save_hold);
        });
        w.seq(&self.dvfs_busy, |w, &b| w.f64(b));
        w.seq(&self.dvfs_window, |w, &d| w.duration(d));
        w.seq(&self.dvfs_util, |w, &u| w.f64(u));
        w.u64(self.dvfs_decisions);
        w.seq(&self.dvfs_dwell_until, |w, &t| w.time(t));
        w.seq(&self.dvfs_armed_power, |w, &p| w.watts(p));
        w.seq(&self.dvfs_stable, |w, &s| w.bool(s));
        w.seq(&self.dvfs_frozen_at, |w, &t| w.time(t));
        w.key("workload");
        w.usize(self.inbox.len());
        for routed in &self.inbox {
            w.time(routed.due);
            routed.program.save(w);
            w.u64(routed.seed);
            w.str(routed.phase);
        }
        w.seq(&self.runtimes, |w, rt| {
            w.opt(rt, |w, rt| rt.save(w));
        });
        // HashMap iteration order is arbitrary; sort so equal catalogs
        // hash equally.
        let mut programs: Vec<&Program> = self.programs.values().collect();
        programs.sort_by_key(|p| p.binary);
        w.usize(programs.len());
        for p in programs {
            p.save(w);
        }
        // The sleeper heap's internal layout is insertion-dependent;
        // its *contents* are the state (pop order is fully determined
        // by the unique (wake, id) keys), so serialize sorted.
        let mut sleepers: Vec<(u64, u64)> = self
            .sleepers
            .iter()
            .map(|Reverse((wake, id))| (*wake, id.0))
            .collect();
        sleepers.sort_unstable();
        w.seq(&sleepers, |w, &(wake, id)| {
            w.u64(wake);
            w.u64(id);
        });
        w.opt(&self.open, |w, open| open.save(w));
        w.key("stats");
        w.seq(&self.latencies, |w, &(phase, secs)| {
            w.str(phase);
            w.f64(secs);
        });
        w.seq(&self.cycle_carry, |w, &c| w.f64(c));
        w.seq(&self.instr_carry, |w, &c| w.f64(c));
        w.u64(self.rng.state());
        w.seq(&self.acc, |w, acc| {
            w.opt(&acc.task, |w, id| w.u64(id.0));
            w.joules(acc.energy);
            w.duration(acc.time);
        });
        w.seq(&self.newidle_pending, |w, &p| w.bool(p));
        w.time(self.now);
        w.u64(self.steps);
        let mut completions: Vec<(u64, u64)> =
            self.completions.iter().map(|(&b, &n)| (b, n)).collect();
        completions.sort_unstable();
        w.seq(&completions, |w, &(binary, n)| {
            w.u64(binary);
            w.u64(n);
        });
        w.u64(self.instructions);
        w.celsius(self.max_temp);
        w.joules(self.true_energy);
        w.joules(self.estimated_energy);
        // Cadence cursors of enabled observability sinks: they bound
        // variable strides, so they are state even though the sinks'
        // recorded histories are not.
        w.opt(&self.next_thermal_sample, |w, &t| w.time(t));
        w.opt(&self.metrics.as_ref().map(|m| m.next), |w, &t| w.time(t));
    }

    /// Restores into a freshly constructed engine of the same
    /// topology. Policy-specific sections (balancer kind, frequency
    /// domains) apply only when this engine's shape matches the saved
    /// one; mismatched sections are read and discarded, leaving the
    /// fresh construction-time defaults — the deterministic
    /// "shape-matched restore" rule that lets one warm-up snapshot
    /// fork into cells of *different* policies.
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        r.key("engine")?;
        self.sys.restore(r)?;
        self.machine.restore(r)?;
        r.key("policies")?;
        self.power.restore(r)?;
        self.estimator.restore(r)?;
        let balancer_tag = r.u8()?;
        match (balancer_tag, &mut self.balancer) {
            (0, Balancer::Baseline(b)) => b.restore(r)?,
            (1, Balancer::EnergyAware(b)) => b.restore(r)?,
            // A snapshot from the other balancer kind: consume its
            // timer table (both kinds serialize the same layout) and
            // keep this engine's fresh timers.
            (0 | 1, _) => {
                let _ = r.seq(|r| r.seq(|r| r.time()))?;
            }
            (tag, _) => {
                return Err(ebs_store::StoreError::Invalid(format!(
                    "balancer tag {tag}"
                )));
            }
        }
        self.placement.restore(r)?;
        r.key("dvfs")?;
        restore_table(r, &mut self.dvfs_next, "dvfs deadlines", |r| {
            r.opt(|r| r.time())
        })?;
        restore_table(r, &mut self.dvfs_hold, "dvfs holds", |r| r.opt(read_hold))?;
        restore_table(r, &mut self.dvfs_busy, "dvfs busy windows", |r| r.f64())?;
        restore_table(r, &mut self.dvfs_window, "dvfs windows", |r| r.duration())?;
        restore_table(r, &mut self.dvfs_util, "dvfs utilizations", |r| r.f64())?;
        self.dvfs_decisions = r.u64()?;
        restore_table(r, &mut self.dvfs_dwell_until, "dvfs dwells", |r| r.time())?;
        restore_table(r, &mut self.dvfs_armed_power, "dvfs armed powers", |r| {
            r.watts()
        })?;
        restore_table(r, &mut self.dvfs_stable, "dvfs stable flags", |r| r.bool())?;
        restore_table(r, &mut self.dvfs_frozen_at, "dvfs freeze times", |r| {
            r.time()
        })?;
        r.key("workload")?;
        let n_inbox = r.usize()?;
        self.inbox.clear();
        for _ in 0..n_inbox {
            let due = r.time()?;
            let mut program = placeholder_program();
            program.restore(r)?;
            let seed = r.u64()?;
            let phase = ebs_store::intern(&r.str()?);
            self.inbox.push_back(RoutedArrival {
                due,
                program,
                seed,
                phase,
            });
        }
        let n_runtimes = r.usize()?;
        let mut runtimes = Vec::with_capacity(n_runtimes.min(1 << 20));
        for _ in 0..n_runtimes {
            runtimes.push(r.opt(|r| {
                let mut rt = TaskRuntime::new(ProgramState::new(placeholder_program(), 0));
                rt.restore(r)?;
                Ok(rt)
            })?);
        }
        self.runtimes = runtimes;
        let n_programs = r.usize()?;
        self.programs.clear();
        for _ in 0..n_programs {
            let mut program = placeholder_program();
            program.restore(r)?;
            self.programs.insert(program.binary, program);
        }
        let sleepers = r.seq(|r| Ok((r.u64()?, r.u64()?)))?;
        self.sleepers = sleepers
            .into_iter()
            .map(|(wake, id)| Reverse((wake, TaskId(id))))
            .collect();
        let has_open = r.bool()?;
        match (has_open, &mut self.open) {
            (true, Some(open)) => open.restore(r)?,
            (false, None) => {}
            (saved, _) => {
                return Err(ebs_store::StoreError::Invalid(format!(
                    "snapshot open-workload presence {saved} does not match the config"
                )));
            }
        }
        r.key("stats")?;
        self.latencies = r.seq(|r| {
            let phase = ebs_store::intern(&r.str()?);
            Ok((phase, r.f64()?))
        })?;
        restore_table(r, &mut self.cycle_carry, "cycle carries", |r| r.f64())?;
        restore_table(r, &mut self.instr_carry, "instruction carries", |r| r.f64())?;
        self.rng = StdRng::from_state(r.u64()?);
        restore_table(r, &mut self.acc, "interval accumulators", |r| {
            Ok(IntervalAcc {
                task: r.opt(|r| Ok(TaskId(r.u64()?)))?,
                energy: r.joules()?,
                time: r.duration()?,
            })
        })?;
        restore_table(r, &mut self.newidle_pending, "new-idle flags", |r| r.bool())?;
        self.now = r.time()?;
        self.sys.set_now(self.now);
        self.steps = r.u64()?;
        let completions = r.seq(|r| Ok((r.u64()?, r.u64()?)))?;
        self.completions = completions.into_iter().collect();
        self.instructions = r.u64()?;
        self.max_temp = r.celsius()?;
        self.true_energy = r.joules()?;
        self.estimated_energy = r.joules()?;
        let next_thermal = r.opt(|r| r.time())?;
        if self.next_thermal_sample.is_some() && next_thermal.is_some() {
            self.next_thermal_sample = next_thermal;
        }
        let metrics_next = r.opt(|r| r.time())?;
        if let (Some(m), Some(next)) = (self.metrics.as_deref_mut(), metrics_next) {
            m.next = next;
        }
        Ok(())
    }
}

/// A minimal valid program overwritten entirely by
/// [`ebs_store::Snapshot::restore`].
fn placeholder_program() -> Program {
    Program::new(
        "placeholder",
        0,
        vec![ebs_workloads::Phase::new(
            "placeholder",
            ebs_counters::EventRates::HALTED,
            1.0,
            SimDuration::from_secs(1),
        )],
        ebs_workloads::Behavior::Steady,
        0.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SimEngine;
    use ebs_workloads::catalog;

    fn quick_cfg() -> SimConfig {
        SimConfig::xseries445().smt(false).seed(7)
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let cfg = quick_cfg();
        let mut straight = Simulation::new(cfg.clone());
        straight.spawn_mix(&ebs_workloads::section61_mix(), 1);
        straight.run_for(SimDuration::from_secs(2));
        let image = straight.snapshot();
        assert_eq!(image.hash(), straight.state_hash());

        // The checkpointed engine and a fresh engine restored from the
        // image must agree bit-for-bit after the same continuation.
        let mut forked = Simulation::from_snapshot(cfg, &image).expect("restore");
        assert_eq!(forked.state_hash(), straight.state_hash());
        straight.run_for(SimDuration::from_secs(2));
        forked.run_for(SimDuration::from_secs(2));
        assert_eq!(forked.state_hash(), straight.state_hash());
        assert_eq!(
            forked.report().instructions_retired,
            straight.report().instructions_retired
        );
    }

    #[test]
    fn snapshot_file_roundtrip_preserves_hash() {
        let mut sim = Simulation::new(quick_cfg());
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_millis(200));
        let image = sim.snapshot();
        let dir = std::env::temp_dir().join("ebs-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snap");
        image.write_file(&path).unwrap();
        let back = ebs_store::StateImage::read_file(&path).unwrap();
        assert_eq!(back.hash(), image.hash());
        let mut restored = Simulation::new(quick_cfg());
        restored.restore_snapshot(&back).unwrap();
        assert_eq!(restored.state_hash(), sim.state_hash());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_simulation_idles_at_halt_power() {
        let mut sim = Simulation::new(quick_cfg());
        sim.run_for(SimDuration::from_secs(1));
        let report = sim.report();
        assert_eq!(report.instructions_retired, 0);
        assert_eq!(report.migrations, 0);
        // Thermal power of every CPU sits at the halt share.
        for c in 0..8 {
            let p = sim.power_state().thermal_power(CpuId(c));
            assert!((p.0 - 13.6).abs() < 0.5, "cpu{c}: {p:?}");
        }
    }

    #[test]
    fn single_task_makes_progress_and_heats_its_package() {
        let mut sim = Simulation::new(quick_cfg().throttling(false));
        let id = sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(10));
        assert!(sim.report().instructions_retired > 1_000_000_000);
        let cpu = sim.system().task(id).cpu();
        let pkg = sim.system().topology().package_of(cpu);
        assert!(
            sim.machine().package_temp(pkg).0 > 30.0,
            "package never warmed: {:?}",
            sim.machine().package_temp(pkg)
        );
        // Thermal power approaches the ~61 W profile of bitcnts.
        let tp = sim.power_state().thermal_power(cpu);
        assert!(tp.0 > 35.0, "thermal power {tp:?}");
    }

    #[test]
    fn profiles_converge_to_table2_powers() {
        let mut sim = Simulation::new(quick_cfg().throttling(false));
        let hot = sim.spawn_program(&catalog::bitcnts());
        let cool = sim.spawn_program(&catalog::memrw());
        sim.run_for(SimDuration::from_secs(5));
        let hot_profile = sim.system().task(hot).profile();
        let cool_profile = sim.system().task(cool).profile();
        // Within estimation error (<10 %) of Table 2.
        assert!(
            (hot_profile.0 - 61.0).abs() < 6.0,
            "bitcnts profile {hot_profile:?}"
        );
        assert!(
            (cool_profile.0 - 38.0).abs() < 4.0,
            "memrw profile {cool_profile:?}"
        );
    }

    #[test]
    fn tasks_spread_across_cpus() {
        let mut sim = Simulation::new(quick_cfg());
        sim.spawn_mix(&ebs_workloads::section61_mix(), 1);
        sim.run_for(SimDuration::from_millis(100));
        // Six tasks on eight CPUs: all running simultaneously.
        let running = (0..8)
            .filter(|&c| sim.system().current(CpuId(c)).is_some())
            .count();
        assert_eq!(running, 6);
    }

    #[test]
    fn retired_work_is_tick_size_invariant() {
        // The carry fix: chopping the same wall time into 1 ms or
        // 0.5 ms steps must retire the same instructions (±1 per CPU)
        // — fractional cycles/instructions are carried, not dropped.
        // Warmup is disabled so the IPC factor is step-independent.
        let run = |tick_us: u64| {
            let mut cfg = quick_cfg().throttling(false).energy_aware(false);
            cfg.tick = SimDuration::from_micros(tick_us);
            cfg.warmup_ipc_floor = 1.0;
            cfg.warmup_ipc_floor_cross_node = 1.0;
            let mut sim = Simulation::new(cfg);
            sim.spawn_program(&catalog::aluadd());
            sim.run_for(SimDuration::from_secs(2));
            sim.report().instructions_retired
        };
        let coarse = run(1_000);
        let fine = run(500);
        assert!(
            coarse.abs_diff(fine) <= 1,
            "tick size changed retired work: {coarse} vs {fine}"
        );
    }

    #[test]
    fn truncation_would_lose_work_without_carry() {
        // Quantifies the bug the carry fixes: at 2.2 GHz and 1 ms the
        // per-step instruction flow is fractional almost always, so a
        // truncating engine under-retires by up to 1 instruction per
        // step. With the carry the total matches the closed form.
        let mut cfg = quick_cfg().throttling(false).energy_aware(false);
        cfg.warmup_ipc_floor = 1.0;
        cfg.warmup_ipc_floor_cross_node = 1.0;
        let mut sim = Simulation::new(cfg);
        let program = catalog::aluadd();
        let ipc = program.main_phase().ipc;
        let jitter = program.jitter;
        sim.spawn_program(&program);
        sim.run_for(SimDuration::from_secs(2));
        let got = sim.report().instructions_retired as f64;
        let nominal = 2.2e9 * 2.0 * ipc;
        assert!(
            (got - nominal).abs() <= nominal * (jitter + 1e-9),
            "retired {got} not within jitter of the closed form {nominal}"
        );
    }

    #[test]
    fn run_for_covers_exactly_the_requested_duration() {
        // A duration that is not a tick multiple must not overshoot.
        let mut sim = Simulation::new(quick_cfg());
        sim.run_for(SimDuration::from_micros(1_500));
        assert_eq!(sim.now(), SimTime::from_micros(1_500));
        assert_eq!(sim.report().duration, SimDuration::from_micros(1_500));
        // Sub-tick requests clamp too, and repeated runs accumulate.
        sim.run_for(SimDuration::from_micros(700));
        assert_eq!(sim.report().duration, SimDuration::from_micros(2_200));
        // The strided core clamps identically.
        let mut sim = Simulation::new(quick_cfg().strided());
        sim.run_for(SimDuration::from_micros(123_456));
        assert_eq!(sim.report().duration, SimDuration::from_micros(123_456));
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let mut sim = Simulation::new(quick_cfg().seed(1234));
            sim.spawn_mix(&ebs_workloads::section61_mix(), 2);
            sim.run_for(SimDuration::from_secs(3));
            let r = sim.report();
            (r.instructions_retired, r.migrations, r.context_switches)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut sim = Simulation::new(quick_cfg().seed(seed));
            sim.spawn_mix(&ebs_workloads::section61_mix(), 2);
            sim.run_for(SimDuration::from_secs(2));
            sim.report().instructions_retired
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn throttling_engages_under_low_budget() {
        let cfg = quick_cfg()
            .max_power(crate::MaxPowerSpec::PerLogical(Watts(40.0)))
            .energy_aware(false);
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(60));
        let report = sim.report();
        assert!(
            report.avg_throttled_fraction > 0.01,
            "bitcnts at 61 W under a 40 W budget must throttle: {}",
            report.avg_throttled_fraction
        );
    }

    #[test]
    fn hot_task_migration_avoids_throttling() {
        let base = quick_cfg()
            .max_power(crate::MaxPowerSpec::PerLogical(Watts(40.0)))
            .seed(5);
        let mut off = Simulation::new(base.clone().energy_aware(false));
        off.spawn_program(&catalog::bitcnts());
        off.run_for(SimDuration::from_secs(120));
        let mut on = Simulation::new(base.energy_aware(true));
        on.spawn_program(&catalog::bitcnts());
        on.run_for(SimDuration::from_secs(120));
        let gain = on.report().throughput_gain_over(&off.report());
        assert!(
            gain > 0.10,
            "hot task migration should improve throughput substantially, got {gain:.3}"
        );
        assert!(on.report().migrations > off.report().migrations);
    }

    #[test]
    fn dvfs_off_reports_a_pinned_nominal_clock() {
        let mut sim = Simulation::new(quick_cfg());
        sim.spawn_program(&catalog::aluadd());
        sim.run_for(SimDuration::from_secs(2));
        let report = sim.report();
        assert_eq!(report.pstate_residency.len(), 1);
        assert!((report.pstate_residency[0].fraction - 1.0).abs() < 1e-12);
        assert_eq!(report.avg_scaled_fraction, 0.0);
        assert_eq!(report.dvfs_transitions, 0);
        assert!((report.mean_frequency.as_ghz() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn thermal_aware_dvfs_scales_under_budget_pressure() {
        let cfg = quick_cfg()
            .max_power(crate::MaxPowerSpec::PerLogical(Watts(40.0)))
            .energy_aware(false)
            .throttling(false)
            .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware);
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(90));
        let report = sim.report();
        // bitcnts at ~61 W against a 40 W budget: the clock must come
        // down, and with it the mean frequency.
        assert!(
            report.avg_scaled_fraction > 0.05,
            "never scaled: {}",
            report.avg_scaled_fraction
        );
        assert!(report.mean_frequency.as_ghz() < 2.2);
        assert!(report.dvfs_transitions > 0);
        // The residency table accounts every tick across all states.
        assert_eq!(report.pstate_residency.len(), 6);
        let fractions: f64 = report.pstate_residency.iter().map(|r| r.fraction).sum();
        assert!((fractions - 1.0).abs() < 1e-9);
        // Enforcement works: the hot package's thermal power converges
        // below its 40 W budget without any hlt involvement.
        let cpu = (0..8)
            .map(CpuId)
            .max_by(|&a, &b| {
                let pa = sim.power_state().thermal_power(a).0;
                let pb = sim.power_state().thermal_power(b).0;
                pa.partial_cmp(&pb).expect("finite powers")
            })
            .expect("eight CPUs");
        assert!(
            sim.power_state().thermal_power(cpu) < Watts(40.0),
            "budget exceeded: {:?}",
            sim.power_state().thermal_power(cpu)
        );
        assert_eq!(report.avg_throttled_fraction, 0.0);
    }

    #[test]
    fn fixed_governor_slows_execution_proportionally() {
        let run = |dvfs: Option<crate::DvfsSpec>| {
            let mut cfg = quick_cfg().energy_aware(false).throttling(false);
            cfg.dvfs = dvfs;
            let mut sim = Simulation::new(cfg);
            sim.spawn_program(&catalog::aluadd());
            sim.run_for(SimDuration::from_secs(10));
            sim.report().instructions_retired as f64
        };
        let nominal = run(None);
        let slowest = run(Some(crate::DvfsSpec {
            governor: ebs_dvfs::GovernorKind::Fixed(5),
            ..crate::DvfsSpec::default()
        }));
        // Throughput ~ f: the 1.2 GHz state retires ~1.2/2.2 of the
        // nominal instructions.
        let ratio = slowest / nominal;
        assert!(
            (ratio - 1.2 / 2.2).abs() < 0.03,
            "throughput did not track frequency: ratio {ratio}"
        );
    }

    #[test]
    fn custom_table_nominal_drives_execution_absolutely() {
        // A table whose nominal is half the machine clock must halve
        // throughput and report the table's own frequency.
        let run = |dvfs: Option<crate::DvfsSpec>| {
            let mut cfg = quick_cfg().energy_aware(false).throttling(false);
            cfg.dvfs = dvfs;
            let mut sim = Simulation::new(cfg);
            sim.spawn_program(&catalog::aluadd());
            sim.run_for(SimDuration::from_secs(10));
            sim.report()
        };
        let nominal = run(None);
        let half = run(Some(crate::DvfsSpec {
            table: ebs_dvfs::PStateTable::nominal_only(
                ebs_units::Hertz::from_ghz(1.1),
                ebs_units::Volts(1.5),
            ),
            governor: ebs_dvfs::GovernorKind::Fixed(0),
            ..crate::DvfsSpec::default()
        }));
        let ratio = half.instructions_retired as f64 / nominal.instructions_retired as f64;
        assert!(
            (ratio - 0.5).abs() < 0.02,
            "1.1 GHz table did not halve 2.2 GHz throughput: {ratio}"
        );
        assert!((half.mean_frequency.as_ghz() - 1.1).abs() < 1e-9);
    }

    #[test]
    fn dvfs_runs_stay_deterministic() {
        let run = || {
            let cfg = quick_cfg()
                .max_power(crate::MaxPowerSpec::PerLogical(Watts(40.0)))
                .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware)
                .seed(77);
            let mut sim = Simulation::new(cfg);
            sim.spawn_mix(&ebs_workloads::section61_mix(), 2);
            sim.run_for(SimDuration::from_secs(5));
            let r = sim.report();
            (r.instructions_retired, r.dvfs_transitions, r.migrations)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ondemand_governor_downclocks_idle_packages() {
        let cfg = quick_cfg()
            .energy_aware(false)
            .dvfs_governor(ebs_dvfs::GovernorKind::OnDemand);
        // One busy task: seven packages idle at the slowest state, one
        // stays at nominal.
        let mut sim = Simulation::new(cfg);
        let id = sim.spawn_program(&catalog::aluadd());
        sim.run_for(SimDuration::from_secs(5));
        let busy_pkg = sim
            .system()
            .topology()
            .package_of(sim.system().task(id).cpu());
        for p in 0..8 {
            let dom = sim.machine().freq_domain(ebs_topology::PackageId(p));
            if p == busy_pkg.0 {
                assert_eq!(dom.current_index(), 0, "busy package downclocked");
            } else {
                assert_eq!(
                    dom.current_index(),
                    dom.table().slowest_index(),
                    "idle package {p} not downclocked"
                );
            }
        }
        // Idle packages burn halt power regardless of their clock, so
        // the report's mean frequency reflects the idle downclocking.
        assert!(sim.report().mean_frequency.as_ghz() < 2.2);
    }

    #[test]
    #[allow(clippy::zero_divided_by_zero)]
    fn windowed_utilization_guards_zero_windows() {
        // The bug the guard fixes: the old expression was
        // `(busy / window).clamp(0.0, 1.0)`, and `f64::clamp`
        // propagates the 0/0 NaN straight into `GovernorInput`.
        assert!((0.0_f64 / 0.0).clamp(0.0, 1.0).is_nan());
        let carried = windowed_utilization(0.0, SimDuration::ZERO, 0.42);
        assert_eq!(carried, 0.42);
        // Non-degenerate windows behave exactly as before.
        assert_eq!(
            windowed_utilization(0.005, SimDuration::from_millis(10), 0.42),
            0.5
        );
        assert_eq!(
            windowed_utilization(99.0, SimDuration::from_millis(10), 0.0),
            1.0
        );
    }

    #[test]
    fn zero_width_decision_window_carries_utilization() {
        // A decision forced on a zero-width window (an event trigger
        // coinciding with the step that reset the window) must carry
        // the previous utilization — never a NaN — and leave the
        // governors on sane frequencies.
        let cfg = quick_cfg()
            .energy_aware(false)
            .dvfs_governor(ebs_dvfs::GovernorKind::OnDemand);
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::aluadd());
        sim.run_for(SimDuration::from_millis(50));
        let before = sim.dvfs_util.clone();
        assert!(before.iter().any(|&u| u > 0.0), "no package ever busy");
        for pkg in 0..sim.pkg_cpus.len() {
            sim.dvfs_busy[pkg] = 0.0;
            sim.dvfs_window[pkg] = SimDuration::ZERO;
            sim.dvfs_decide(pkg, SimDuration::from_millis(10), true, None);
        }
        for (pkg, &u) in sim.dvfs_util.iter().enumerate() {
            assert!(u.is_finite(), "package {pkg} utilization became {u}");
            assert_eq!(u, before[pkg], "package {pkg} lost its utilization");
        }
        // The governors decided from the carried signal, so the busy
        // package holds nominal while the idle ones stay downclocked.
        sim.run_for(SimDuration::from_secs(1));
        let report = sim.report();
        assert!(report.mean_frequency.0.is_finite());
        assert!(report.instructions_retired > 0);
    }

    #[test]
    fn utilization_crossing_matches_discrete_accumulation() {
        // The closed form the stride bound uses, against a brute-force
        // replay of dvfs_tick's accumulate-and-cap loop.
        let brute = |mut busy: f64, mut window: f64, b: f64, target: f64, cap: f64| -> f64 {
            let dt = 1e-4;
            let mut t = 0.0;
            let start = if window > 0.0 { busy / window } else { b };
            for _ in 0..2_000_000 {
                busy += b * dt;
                window += dt;
                if window > cap {
                    busy *= cap / window;
                    window = cap;
                }
                t += dt;
                let u = busy / window;
                if (start < target && u >= target) || (start > target && u <= target) {
                    return t;
                }
            }
            f64::INFINITY
        };
        for (busy, window, b, target) in [
            (0.002, 0.01, 1.0, 0.5),    // rising within the window
            (0.009, 0.01, 0.0, 0.3),    // falling, crosses after the cap
            (0.0045, 0.005, 0.25, 0.6), // growing window, rising
        ] {
            let cap = 0.01;
            let predicted =
                utilization_crossing_s(busy, window, b, target, cap).expect("crossing exists");
            let simulated = brute(busy, window, b, target, cap);
            assert!(
                (predicted - simulated).abs() <= 0.1 * simulated + 2e-4,
                "crossing mismatch for ({busy},{window},{b},{target}): \
                 predicted {predicted}, simulated {simulated}"
            );
        }
        // No crossing when the asymptote never reaches the target.
        assert_eq!(utilization_crossing_s(0.002, 0.01, 0.4, 0.5, 0.01), None);
        assert_eq!(
            utilization_crossing_s(0.002, 0.01, 0.2, f64::INFINITY, 0.01),
            None
        );
        // Zero-width window: utilization is already at the asymptote.
        assert_eq!(utilization_crossing_s(0.0, 0.0, 0.5, 0.7, 0.01), None);
    }

    #[test]
    fn event_driven_governors_decide_rarely_when_steady() {
        // A steady machine — one always-busy task, everything else
        // idle — gives the cadence baseline nothing to do, yet it still
        // pays one decision per package per 10 ms. The event-driven
        // path answers once and holds.
        let run = |event: bool| {
            let cfg = quick_cfg()
                .energy_aware(false)
                .throttling(false)
                .dvfs_governor(ebs_dvfs::GovernorKind::OnDemand)
                .dvfs_event_driven(event);
            let mut sim = Simulation::new(cfg);
            sim.spawn_program(&catalog::aluadd());
            sim.run_for(SimDuration::from_secs(5));
            sim.report()
        };
        let cadence = run(false);
        let event = run(true);
        // 8 packages × 500 intervals for the baseline.
        assert!(
            cadence.dvfs_decisions >= 4_000,
            "{}",
            cadence.dvfs_decisions
        );
        assert!(
            event.dvfs_decisions * 20 < cadence.dvfs_decisions,
            "event-driven path still decides constantly: {} vs {}",
            event.dvfs_decisions,
            cadence.dvfs_decisions
        );
        // Same enforcement outcome within tolerance.
        let rel = (cadence.instructions_retired as f64 - event.instructions_retired as f64).abs()
            / cadence.instructions_retired as f64;
        assert!(rel < 0.03, "work drifted {rel}");
        assert_eq!(cadence.pstate_residency.len(), event.pstate_residency.len());
    }

    #[test]
    fn event_driven_dvfs_lifts_the_stride_floor() {
        // The ROADMAP item this PR closes: in strided DVFS cells the
        // 10 ms cadence floored every span. Event-driven governors let
        // steady spans stretch toward the 25 ms cap, so the engine
        // takes measurably fewer steps for the same simulated time —
        // a counter-based claim, immune to wall-clock noise.
        let run = |event: bool| {
            let cfg = quick_cfg()
                .strided()
                .energy_aware(false)
                .throttling(false)
                .dvfs_governor(ebs_dvfs::GovernorKind::OnDemand)
                .dvfs_event_driven(event);
            let mut sim = Simulation::new(cfg);
            sim.spawn_program(&catalog::aluadd());
            sim.run_for(SimDuration::from_secs(5));
            sim.report()
        };
        let cadence = run(false);
        let event = run(true);
        assert!(
            event.engine_steps * 2 < cadence.engine_steps,
            "strides did not stretch: {} vs {} steps",
            event.engine_steps,
            cadence.engine_steps
        );
        let rel = (cadence.instructions_retired as f64 - event.instructions_retired as f64).abs()
            / cadence.instructions_retired as f64;
        assert!(rel < 0.03, "work drifted {rel}");
    }

    #[test]
    fn event_driven_thermal_governor_still_enforces_budget() {
        // ThermalAware's hold band tops out exactly at the engagement
        // target, so event-driven enforcement reacts no later than the
        // cadence baseline did.
        let cfg = quick_cfg()
            .max_power(crate::MaxPowerSpec::PerLogical(Watts(40.0)))
            .energy_aware(false)
            .throttling(false)
            .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware);
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(90));
        let report = sim.report();
        assert!(report.avg_scaled_fraction > 0.05);
        let hottest = (0..8)
            .map(|c| sim.power_state().thermal_power(CpuId(c)).0)
            .fold(0.0_f64, f64::max);
        assert!(hottest < 40.0, "budget exceeded: {hottest}");
        // And it needed far fewer decisions than the 10 ms cadence
        // would have paid (8 packages × 9000 intervals).
        assert!(
            report.dvfs_decisions < 72_000 / 10,
            "too many decisions: {}",
            report.dvfs_decisions
        );
    }

    #[test]
    fn thermal_dwell_rate_limits_decision_bursts() {
        // The governor's input is a lagging average, so right after a
        // downclock the observed power still reads above the new hold
        // band's upper edge even though the instantaneous power is
        // already compliant. Without a dwell the escape trigger
        // re-fires on that stale reading, overshooting the ladder and
        // then paying recovery decisions to climb back. The
        // rate-limited hold must cut those bursts substantially while
        // enforcing the same budget.
        let run = |min_dwell: SimDuration| {
            let cfg = quick_cfg()
                .max_power(crate::MaxPowerSpec::PerLogical(Watts(40.0)))
                .energy_aware(false)
                .throttling(false)
                .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware);
            let mut sim = Simulation::new(cfg);
            for g in &mut sim.governors {
                *g = Box::new(ebs_dvfs::ThermalAware {
                    engage: 0.95,
                    min_dwell,
                });
            }
            sim.spawn_mix(&ebs_workloads::section61_mix(), 2);
            sim.run_for(SimDuration::from_secs(30));
            sim.report()
        };
        let chatty = run(SimDuration::ZERO);
        let limited = run(SimDuration::from_secs(3));
        // The dwell must remove at least a third of the decisions
        // (measured: roughly half) — the overshoot descents and the
        // recovery ascents they force.
        assert!(
            limited.dvfs_decisions * 3 < chatty.dvfs_decisions * 2,
            "dwell did not cut decision bursts: {} vs {}",
            limited.dvfs_decisions,
            chatty.dvfs_decisions
        );
        // Same enforcement outcome: the ladder still descends and the
        // retired work stays close (the dwell run comes out slightly
        // ahead — skipping the overshoot keeps the clock honest).
        assert!(limited.avg_scaled_fraction > 0.05);
        let rel = (chatty.instructions_retired as f64 - limited.instructions_retired as f64).abs()
            / chatty.instructions_retired as f64;
        assert!(rel < 0.10, "work drifted {rel}");
    }

    #[test]
    fn idle_packages_freeze_and_events_unfreeze_them() {
        // One busy task: the other seven packages park at the slowest
        // state with zero utilization inside their hold bands, so the
        // per-package hold-expiry index freezes them out of the
        // per-step DVFS accounting entirely.
        let cfg = quick_cfg()
            .energy_aware(false)
            .throttling(false)
            .dvfs_governor(ebs_dvfs::GovernorKind::OnDemand);
        let mut sim = Simulation::new(cfg);
        let id = sim.spawn_program(&catalog::aluadd());
        sim.run_for(SimDuration::from_secs(5));
        let busy_pkg = sim
            .system()
            .topology()
            .package_of(sim.system().task(id).cpu())
            .0;
        let frozen = sim.dvfs_stable.iter().filter(|&&s| s).count();
        assert!(frozen >= 6, "only {frozen} packages froze");
        assert!(!sim.dvfs_stable[busy_pkg], "the busy package froze");
        // A task landing on a frozen package unfreezes it through the
        // dispatch event and the governor reacts again.
        let id2 = sim.spawn_program(&catalog::aluadd());
        sim.run_for(SimDuration::from_millis(100));
        let pkg2 = sim
            .system()
            .topology()
            .package_of(sim.system().task(id2).cpu())
            .0;
        assert_ne!(pkg2, busy_pkg, "placement should pick an idle package");
        assert!(!sim.dvfs_stable[pkg2], "dispatch did not unfreeze");
        assert_eq!(
            sim.machine()
                .freq_domain(ebs_topology::PackageId(pkg2))
                .current_index(),
            0,
            "unfrozen package did not clock back up"
        );
    }

    #[test]
    fn blocked_tasks_wake_up() {
        let mut sim = Simulation::new(quick_cfg());
        let id = sim.spawn_program(&catalog::bash());
        sim.run_for(SimDuration::from_secs(5));
        // bash blocks constantly but must keep making progress.
        assert!(sim.system().task(id).cpu_time() > SimDuration::from_millis(500));
        assert!(sim.report().instructions_retired > 0);
    }

    #[test]
    fn respawn_keeps_population_constant() {
        let program = catalog::aluadd().with_total_work(2_000_000_000); // ~0.45 s.
        let mut sim = Simulation::new(quick_cfg());
        for _ in 0..4 {
            sim.spawn_program(&program);
        }
        sim.run_for(SimDuration::from_secs(10));
        let report = sim.report();
        assert!(
            report.completions >= 4,
            "completions {}",
            report.completions
        );
        // Population stays at 4 runnable tasks.
        let running: usize = (0..8).map(|c| sim.system().nr_running(CpuId(c))).sum();
        assert_eq!(running, 4);
    }

    #[test]
    fn traces_record_when_enabled() {
        let cfg = quick_cfg()
            .trace_thermal(SimDuration::from_millis(500))
            .trace_task_cpu(true);
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim.thermal_trace().samples.len() >= 4);
        assert!(!sim.task_trace().events.is_empty());
    }

    #[test]
    fn slice_power_log_tracks_timeslices() {
        let mut sim = Simulation::new(quick_cfg().throttling(false));
        sim.record_slice_powers();
        let id = sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(3));
        let log = sim.slice_powers().unwrap();
        let slices = &log[&id];
        // ~30 timeslices in 3 s at 100 ms each.
        assert!(slices.len() >= 25, "only {} slices", slices.len());
        // All near the 61 W level.
        for p in slices {
            assert!((p.0 - 61.0).abs() < 8.0, "slice power {p:?}");
        }
    }
}
