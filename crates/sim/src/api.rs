//! The unified engine API: one trait over both engine cores.
//!
//! The sequential/strided core ([`Simulation`]) and the partitioned
//! core ([`ParallelSimulation`]) grew identical-but-duplicated surface
//! for everything a driver needs — run, report, spawn, snapshot,
//! restore — which forced every generic consumer (the bench helpers,
//! the trace-diff glue, and now the fleet layer) to dispatch on the
//! concrete type by hand. [`SimEngine`] is that surface as a trait:
//! the core-specific methods are required, and the plumbing that was
//! copy-pasted between `engine.rs` and `parallel.rs` — the snapshot /
//! state-hash / restore / fork family and the mix-spawning loops —
//! lives here once, as provided methods over the required ones.
//!
//! [`build_engine`] picks the core a [`SimConfig`] selects
//! (`parallel(w)` → partitioned, anything else → the
//! sequential/strided core), so callers that are generic over the
//! core never name one.

use crate::config::SimConfig;
use crate::engine::{RoutedArrival, Simulation};
use crate::parallel::ParallelSimulation;
use crate::trace::SimReport;
use ebs_trace::TraceEvent;
use ebs_units::{SimDuration, SimTime};
use ebs_workloads::{Mix, Program};

/// The driving surface shared by both engine cores.
///
/// Everything a generic driver does to a simulated machine: build it,
/// feed it work (closed spawns or routed open-workload arrivals), run
/// it, summarise it, and checkpoint it. The snapshot family and the
/// mix-spawning loops are provided methods — one implementation,
/// layered on the [`ebs_store::Snapshot`] supertrait and
/// [`SimEngine::spawn_program`] — so the cores only supply what
/// genuinely differs between them.
pub trait SimEngine: ebs_store::Snapshot + Send {
    /// Builds the engine from a configuration.
    fn build(cfg: SimConfig) -> Self
    where
        Self: Sized;

    /// The configuration the engine was built from.
    fn config(&self) -> &SimConfig;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Runs the simulation for a span of simulated time.
    fn run_for(&mut self, duration: SimDuration);

    /// Summarises the run so far.
    fn report(&self) -> SimReport;

    /// Spawns one instance of a program.
    fn spawn_program(&mut self, program: &Program);

    /// Queues an arrival routed by an outer dispatcher (the parallel
    /// synchronizer between packages, or the fleet dispatcher between
    /// hosts): the task spawns when the clock reaches its due instant.
    /// Arrivals must be queued in non-decreasing due order.
    fn queue_arrival(&mut self, arrival: RoutedArrival);

    /// Runnable tasks (running + queued) across the machine.
    fn runnable_tasks(&self) -> usize;

    /// Logical CPUs of the machine.
    fn n_cpus(&self) -> usize;

    /// The recorded event stream in machine-global ids, `None` unless
    /// event tracing is enabled in the config.
    fn event_stream(&self) -> Option<Vec<TraceEvent>>;

    /// Raw open-workload sojourn samples so far: (arrival phase,
    /// seconds). Pooled by roll-up consumers (the fleet SLO
    /// percentiles) exactly like the partitioned core pools its
    /// shards'.
    fn sojourn_samples(&self) -> Vec<(&'static str, f64)>;

    /// Spawns `copies` instances of every program in the slice.
    fn spawn_mix(&mut self, programs: &[Program], copies: usize) {
        for program in programs {
            for _ in 0..copies {
                self.spawn_program(program);
            }
        }
    }

    /// Spawns a [`Mix`] (programs with counts).
    fn spawn_mix_entries(&mut self, mix: &Mix) {
        for entry in mix {
            for _ in 0..entry.count {
                self.spawn_program(&entry.program);
            }
        }
    }

    /// Serializes the complete evolving state into a sealed, hashed,
    /// versioned image.
    fn snapshot(&self) -> ebs_store::StateImage {
        let mut w = ebs_store::StateWriter::new();
        self.save(&mut w);
        w.finish()
    }

    /// Content hash of the current state — equal states (same bytes
    /// under [`SimEngine::snapshot`]) hash equally across processes.
    fn state_hash(&self) -> u64 {
        self.snapshot().hash()
    }

    /// Overwrites this engine's state from a snapshot image. The
    /// engine must have been freshly built from a config of the same
    /// topology and workload shape; see [`ebs_store::Snapshot`] on the
    /// concrete core for the shape-matching rules on policy sections.
    ///
    /// Opens with [`ebs_store::StateImage::open_migrating`], so images
    /// from any still-supported format version restore: the
    /// version-conditional sections (`TaskRuntime::last_class` for
    /// v1→v2) upgrade in place and the engine re-snapshots as the
    /// current version.
    fn restore_snapshot(
        &mut self,
        image: &ebs_store::StateImage,
    ) -> Result<(), ebs_store::StoreError> {
        let mut r = image.open_migrating()?;
        self.restore(&mut r)?;
        if r.remaining() != 0 {
            return Err(ebs_store::StoreError::Invalid(format!(
                "{} trailing bytes after the engine state",
                r.remaining()
            )));
        }
        Ok(())
    }

    /// Builds an engine from `cfg` and restores `image` into it — the
    /// fork operation: one warm-up snapshot, many differently
    /// configured continuations.
    fn from_snapshot(
        cfg: SimConfig,
        image: &ebs_store::StateImage,
    ) -> Result<Self, ebs_store::StoreError>
    where
        Self: Sized,
    {
        let mut sim = Self::build(cfg);
        sim.restore_snapshot(image)?;
        Ok(sim)
    }
}

/// Builds the engine core `cfg` selects: the partitioned core when
/// `parallel(w)` is set, the sequential/strided core otherwise.
pub fn build_engine(cfg: SimConfig) -> Box<dyn SimEngine> {
    if cfg.parallel_enabled() {
        Box::new(ParallelSimulation::new(cfg))
    } else {
        Box::new(Simulation::new(cfg))
    }
}

impl SimEngine for Simulation {
    fn build(cfg: SimConfig) -> Self {
        Simulation::new(cfg)
    }

    fn config(&self) -> &SimConfig {
        Simulation::config(self)
    }

    fn now(&self) -> SimTime {
        Simulation::now(self)
    }

    fn run_for(&mut self, duration: SimDuration) {
        Simulation::run_for(self, duration);
    }

    fn report(&self) -> SimReport {
        Simulation::report(self)
    }

    fn spawn_program(&mut self, program: &Program) {
        Simulation::spawn_program(self, program);
    }

    fn queue_arrival(&mut self, arrival: RoutedArrival) {
        Simulation::queue_arrival(self, arrival);
    }

    fn runnable_tasks(&self) -> usize {
        Simulation::runnable_tasks(self)
    }

    fn n_cpus(&self) -> usize {
        Simulation::n_cpus(self)
    }

    fn event_stream(&self) -> Option<Vec<TraceEvent>> {
        self.events().map(|t| t.to_vec())
    }

    fn sojourn_samples(&self) -> Vec<(&'static str, f64)> {
        self.raw_latencies().to_vec()
    }
}

impl SimEngine for ParallelSimulation {
    fn build(cfg: SimConfig) -> Self {
        ParallelSimulation::new(cfg)
    }

    fn config(&self) -> &SimConfig {
        ParallelSimulation::config(self)
    }

    fn now(&self) -> SimTime {
        ParallelSimulation::now(self)
    }

    fn run_for(&mut self, duration: SimDuration) {
        ParallelSimulation::run_for(self, duration);
    }

    fn report(&self) -> SimReport {
        ParallelSimulation::report(self)
    }

    fn spawn_program(&mut self, program: &Program) {
        ParallelSimulation::spawn_program(self, program);
    }

    fn queue_arrival(&mut self, arrival: RoutedArrival) {
        self.queue_routed(arrival);
    }

    fn runnable_tasks(&self) -> usize {
        self.total_runnable()
    }

    fn n_cpus(&self) -> usize {
        self.total_cpus()
    }

    fn event_stream(&self) -> Option<Vec<TraceEvent>> {
        self.events()
    }

    fn sojourn_samples(&self) -> Vec<(&'static str, f64)> {
        self.pooled_latencies()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workloads::catalog;

    fn cfg() -> SimConfig {
        SimConfig::xseries445().smt(false).seed(5)
    }

    /// `build_engine` picks the core the config selects, and the trait
    /// surface drives both identically.
    #[test]
    fn build_engine_selects_the_configured_core() {
        let run = |cfg: SimConfig| {
            let mut sim = build_engine(cfg);
            sim.spawn_mix(&[catalog::aluadd()], 2);
            sim.run_for(SimDuration::from_millis(300));
            sim.report()
        };
        let strided = run(cfg().strided());
        let par1 = run(cfg().parallel(1));
        assert!(
            strided.bit_eq(&par1),
            "parallel(1) must stay bit-identical to strided through the trait"
        );
        assert!(strided.instructions_retired > 0);
    }

    /// The provided snapshot family round-trips through `dyn SimEngine`
    /// exactly like the old inherent methods did.
    #[test]
    fn snapshot_family_works_object_safe() {
        let mut sim = build_engine(cfg());
        sim.spawn_mix(&[catalog::memrw()], 2);
        sim.run_for(SimDuration::from_millis(200));
        let image = sim.snapshot();
        let h = sim.state_hash();
        let mut fork = build_engine(cfg());
        fork.restore_snapshot(&image)
            .expect("restore into a same-shape engine");
        assert_eq!(fork.state_hash(), h);
        let a = {
            let mut s = fork;
            s.run_for(SimDuration::from_millis(200));
            s.report()
        };
        let b = {
            let mut s = Simulation::from_snapshot(cfg(), &image).expect("fork");
            s.run_for(SimDuration::from_millis(200));
            s.report()
        };
        assert!(a.bit_eq(&b), "dyn and concrete forks must agree");
    }

    /// Routed arrivals through the trait spawn at their due instants on
    /// both cores.
    #[test]
    fn queue_arrival_spawns_on_both_cores() {
        for build in [
            |c: SimConfig| build_engine(c.strided()),
            |c: SimConfig| build_engine(c.parallel(2)),
        ] {
            let mut sim = build(cfg());
            for k in 0..4u64 {
                sim.queue_arrival(RoutedArrival {
                    due: SimTime::from_millis(10 + 20 * k),
                    program: catalog::aluadd().with_total_work(1_000_000),
                    seed: k,
                    phase: "steady",
                });
            }
            sim.run_for(SimDuration::from_secs(1));
            assert_eq!(sim.report().completions, 4);
        }
    }
}
