//! Core classes and the frequency-domain map.
//!
//! A heterogeneous ("hybrid") machine mixes *core classes* — think
//! modern P/E x86 parts or big.LITTLE ladders. Each class runs its own
//! P-state table, retires a different number of instructions per cycle
//! ([`CoreClass::ipc_factor`]), burns energy by its own counter-rate
//! ground truth, and sinks heat through its own thermal coefficient.
//! [`ClassCatalog`] resolves a [`SimConfig`](crate::SimConfig) into
//! the per-class parameter set, and [`DomainMap`] lays the machine's
//! frequency domains out at the configured
//! [`DomainScope`](ebs_dvfs::DomainScope) granularity.
//!
//! On homogeneous configs the catalog has exactly one class whose
//! parameters reproduce the legacy construction bit-for-bit, and the
//! per-package domain map is index-identical to the per-package arrays
//! the engine always kept — which is what keeps single-class runs
//! byte-identical through the refactor.

use crate::config::SimConfig;
use ebs_counters::GroundTruth;
use ebs_dvfs::{DomainScope, PStateTable};
use ebs_topology::{ClassId, CpuId, Topology};
use ebs_units::{Hertz, Volts};

/// The full parameter set of one core class.
#[derive(Clone, Debug)]
pub struct CoreClass {
    /// A short name for tables and CSV rows.
    pub name: &'static str,
    /// The class's counter-rate/power ground truth (per-event
    /// energies, halt power, leakage, nominal clock).
    pub truth: GroundTruth,
    /// The class's P-state ladder. Execution speed follows the
    /// table's *absolute* frequencies, so classes with different
    /// nominal clocks run at genuinely different speeds.
    pub table: PStateTable,
    /// Instructions retired per cycle relative to class 0 at equal
    /// clock (narrower pipelines retire less per cycle).
    pub ipc_factor: f64,
    /// Thermal-resistance multiplier of the class's cores (<1 = the
    /// class is easier to cool per unit of die area).
    pub thermal_factor: f64,
}

impl CoreClass {
    /// Sustained instruction throughput of this class at its nominal
    /// clock, relative to a 1.0-IPC core at `base_hz`.
    pub fn throughput_factor(&self, base_hz: f64) -> f64 {
        self.ipc_factor * self.table.nominal().frequency.0 / base_hz
    }
}

/// The machine's classes, class 0 first.
#[derive(Clone, Debug)]
pub struct ClassCatalog {
    classes: Vec<CoreClass>,
    /// Per-class capacity normalized so class 0 is exactly 1.0.
    capacities: Vec<f64>,
}

impl ClassCatalog {
    /// Resolves a config into its class catalog. Class 0 always
    /// reproduces the legacy homogeneous construction (the paper's
    /// Xeon truth, the configured DVFS table or a pinned nominal
    /// state); hybrid configs add the efficiency class.
    pub fn for_config(cfg: &SimConfig) -> Self {
        let perf_table = match &cfg.dvfs {
            Some(spec) => spec.table.clone(),
            None => PStateTable::nominal_only(Hertz(cfg.freq_hz), Volts(1.5)),
        };
        let mut classes = vec![CoreClass {
            name: "perf",
            truth: GroundTruth::p4_xeon_2200(),
            table: perf_table,
            ipc_factor: 1.0,
            thermal_factor: 1.0,
        }];
        if cfg.is_hybrid() {
            let truth = GroundTruth::efficiency_core();
            let table = match &cfg.dvfs {
                Some(_) => PStateTable::efficiency_core(),
                None => PStateTable::nominal_only(Hertz(truth.freq_hz), Volts(1.10)),
            };
            classes.push(CoreClass {
                name: "eff",
                truth,
                table,
                ipc_factor: 0.75,
                thermal_factor: 0.8,
            });
        }
        let base = classes[0].ipc_factor * classes[0].table.nominal().frequency.0;
        let capacities = classes
            .iter()
            .map(|c| {
                if c.name == "perf" {
                    1.0 // Exact, no float division on the legacy path.
                } else {
                    c.ipc_factor * c.table.nominal().frequency.0 / base
                }
            })
            .collect();
        ClassCatalog {
            classes,
            capacities,
        }
    }

    /// Number of classes (1 = homogeneous).
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Whether the catalog mixes classes.
    pub fn is_hybrid(&self) -> bool {
        self.classes.len() > 1
    }

    /// The class's parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn get(&self, class: ClassId) -> &CoreClass {
        &self.classes[class.0]
    }

    /// Iterates the classes, class 0 first.
    pub fn iter(&self) -> impl Iterator<Item = &CoreClass> {
        self.classes.iter()
    }

    /// Compute capacity of a class: nominal instruction throughput
    /// relative to class 0 (exactly 1.0 for class 0).
    pub fn capacity(&self, class: ClassId) -> f64 {
        self.capacities[class.0]
    }

    /// Per-logical-CPU capacities for a topology built from the same
    /// config.
    pub fn cpu_capacities(&self, topo: &Topology) -> Vec<f64> {
        topo.cpu_ids()
            .map(|c| self.capacity(topo.class_of(c)))
            .collect()
    }
}

/// The machine's frequency domains at a given scope: which CPUs share
/// each clock/voltage plane, and which package and class each plane
/// belongs to.
///
/// Under [`DomainScope::PerPackage`] domain `i` covers exactly package
/// `i` (CPU lists in ascending CPU order — index-identical to the
/// engine's historical per-package arrays); under
/// [`DomainScope::PerCore`] domain `i` covers exactly core `i` (thread
/// order).
#[derive(Clone, Debug)]
pub struct DomainMap {
    scope: DomainScope,
    dom_cpus: Vec<Vec<CpuId>>,
    cpu_dom: Vec<usize>,
    dom_pkg: Vec<usize>,
    dom_class: Vec<ClassId>,
    pkg_doms: Vec<Vec<usize>>,
}

impl DomainMap {
    /// Lays out the domains of `topo` at `scope`.
    pub fn new(topo: &Topology, scope: DomainScope) -> Self {
        let n_domains = match scope {
            DomainScope::PerPackage => topo.n_packages(),
            DomainScope::PerCore => topo.n_cores(),
        };
        let mut dom_cpus = vec![Vec::new(); n_domains];
        let mut cpu_dom = vec![0usize; topo.n_cpus()];
        for cpu in topo.cpu_ids() {
            let dom = match scope {
                DomainScope::PerPackage => topo.package_of(cpu).0,
                DomainScope::PerCore => topo.core_of(cpu).0,
            };
            dom_cpus[dom].push(cpu);
            cpu_dom[cpu.0] = dom;
        }
        let (dom_pkg, dom_class): (Vec<usize>, Vec<ClassId>) = (0..n_domains)
            .map(|d| match scope {
                DomainScope::PerPackage => {
                    let first = dom_cpus[d][0];
                    (d, topo.class_of(first))
                }
                DomainScope::PerCore => (
                    topo.package_of(dom_cpus[d][0]).0,
                    topo.class_of_core(ebs_topology::CoreId(d)),
                ),
            })
            .unzip();
        let mut pkg_doms = vec![Vec::new(); topo.n_packages()];
        for (d, &pkg) in dom_pkg.iter().enumerate() {
            pkg_doms[pkg].push(d);
        }
        DomainMap {
            scope,
            dom_cpus,
            cpu_dom,
            dom_pkg,
            dom_class,
            pkg_doms,
        }
    }

    /// The scope the map was laid out at.
    pub fn scope(&self) -> DomainScope {
        self.scope
    }

    /// Number of frequency domains.
    pub fn n_domains(&self) -> usize {
        self.dom_cpus.len()
    }

    /// The logical CPUs sharing domain `dom`.
    pub fn cpus(&self, dom: usize) -> &[CpuId] {
        &self.dom_cpus[dom]
    }

    /// The domain of a logical CPU.
    pub fn domain_of(&self, cpu: CpuId) -> usize {
        self.cpu_dom[cpu.0]
    }

    /// The package a domain belongs to.
    pub fn package_of(&self, dom: usize) -> usize {
        self.dom_pkg[dom]
    }

    /// The core class of a domain.
    pub fn class_of(&self, dom: usize) -> ClassId {
        self.dom_class[dom]
    }

    /// The domains of one package, ascending.
    pub fn domains_of_package(&self, pkg: usize) -> &[usize] {
        &self.pkg_doms[pkg]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_topology::TopologyPreset;

    #[test]
    fn homogeneous_catalog_is_single_legacy_class() {
        let cfg = SimConfig::xseries445();
        let cat = ClassCatalog::for_config(&cfg);
        assert_eq!(cat.n_classes(), 1);
        assert!(!cat.is_hybrid());
        let c = cat.get(ClassId(0));
        assert_eq!(c.truth, GroundTruth::p4_xeon_2200());
        assert_eq!(c.table.len(), 1);
        assert_eq!(c.table.nominal().frequency, Hertz(2.2e9));
        assert_eq!(cat.capacity(ClassId(0)), 1.0);
        // DVFS pulls in the configured ladder.
        let cat = ClassCatalog::for_config(&cfg.dvfs(crate::DvfsSpec::default()));
        assert_eq!(cat.get(ClassId(0)).table.len(), 6);
    }

    #[test]
    fn hybrid_catalog_adds_the_efficiency_class() {
        let cfg = SimConfig::preset(TopologyPreset::Hybrid8);
        let cat = ClassCatalog::for_config(&cfg);
        assert_eq!(cat.n_classes(), 2);
        let e = cat.get(ClassId(1));
        assert_eq!(e.name, "eff");
        assert!(e.ipc_factor < 1.0);
        assert!(e.thermal_factor < 1.0);
        assert!(e.truth.halt_power < cat.get(ClassId(0)).truth.halt_power);
        // Without DVFS the efficiency ladder degenerates to a pinned
        // nominal state, like the legacy class.
        assert_eq!(e.table.len(), 1);
        let cap = cat.capacity(ClassId(1));
        assert!(cap > 0.0 && cap < 1.0, "{cap}");
        // With DVFS it runs its own multi-state ladder.
        let cat = ClassCatalog::for_config(&cfg.dvfs(crate::DvfsSpec::default()));
        assert_eq!(cat.get(ClassId(1)).table.len(), 5);
        assert_eq!(cat.get(ClassId(0)).table.len(), 6);
    }

    #[test]
    fn per_package_map_is_index_identical_to_packages() {
        let topo = TopologyPreset::XSeries445 { smt: true }.build();
        let map = DomainMap::new(&topo, DomainScope::PerPackage);
        assert_eq!(map.n_domains(), topo.n_packages());
        for d in 0..map.n_domains() {
            assert_eq!(map.package_of(d), d);
            assert_eq!(map.class_of(d), ClassId(0));
            // Ascending CPU order, exactly the package membership.
            let cpus = map.cpus(d);
            assert!(cpus.windows(2).all(|w| w[0] < w[1]));
            for &c in cpus {
                assert_eq!(topo.package_of(c).0, d);
                assert_eq!(map.domain_of(c), d);
            }
            assert_eq!(map.domains_of_package(d), &[d]);
        }
    }

    #[test]
    fn per_core_map_tracks_cores_and_classes() {
        let topo = TopologyPreset::BigLittle16.build();
        let map = DomainMap::new(&topo, DomainScope::PerCore);
        assert_eq!(map.n_domains(), topo.n_cores());
        for d in 0..map.n_domains() {
            let core = ebs_topology::CoreId(d);
            assert_eq!(map.cpus(d), topo.cpus_of_core(core).as_slice());
            assert_eq!(map.class_of(d), topo.class_of_core(core));
        }
        // Each package owns its 8 core domains.
        assert_eq!(map.domains_of_package(0).len(), 8);
        assert_eq!(map.domains_of_package(1), &[8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn cpu_capacities_follow_classes() {
        let cfg = SimConfig::preset(TopologyPreset::Hybrid8);
        let topo = cfg.topology_builder().build();
        let cat = ClassCatalog::for_config(&cfg);
        let caps = cat.cpu_capacities(&topo);
        assert_eq!(caps.len(), 8);
        for cpu in topo.cpu_ids() {
            let expect = cat.capacity(topo.class_of(cpu));
            assert_eq!(caps[cpu.0], expect);
        }
        assert_eq!(caps[0], 1.0);
        assert!(caps[7] < 1.0);
    }
}
