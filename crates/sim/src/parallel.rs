//! The parallel engine core: per-package simulation partitions with
//! their own event calendars, synchronized by conservative lookahead.
//!
//! The sequential cores advance all simulated CPUs in lockstep to the
//! nearest *global* event, so one saturated package floors every
//! package's stride. But the paper's policies are package-structured:
//! DVFS domains, throttling, and thermal state are per package, and
//! the balancing that crosses packages runs on multi-millisecond
//! intervals. This module exploits that structure:
//!
//! - Each package becomes a **partition** — a complete [`Simulation`]
//!   over a single-package topology, owning its runqueues, thermal
//!   state, frequency domain, and event trace.
//! - A **synchronizer** advances every partition through a shared
//!   *horizon* (the stride cap). Within a horizon, partitions share
//!   nothing and run concurrently on a work-stealing pool (the
//!   `run_parallel` pattern); threads are used only when the host has
//!   parallelism to offer.
//! - Partitions interact **only at horizon boundaries**: open-workload
//!   arrivals are routed to the least-loaded partition, and a
//!   cross-package handoff queue rebalances queued tasks from
//!   partitions with more runnable tasks than CPUs to partitions with
//!   spare capacity. Routing and handoffs are computed serially in
//!   partition-index order, so results are identical for every worker
//!   count ≥ 2 and deterministic per seed.
//!
//! # Determinism contract
//!
//! - `parallel(1)` (or a single-package topology) runs one partition
//!   spanning the whole machine — literally the strided core, so the
//!   report is **bit-identical** to `strided()`.
//! - `parallel(w)` for any `w ≥ 2` partitions per package. The worker
//!   count sizes the thread pool only; partition results never depend
//!   on which thread ran them, so every `w ≥ 2` produces the same
//!   report, and every `(seed, w)` pair reproduces exactly.
//! - Multi-partition runs are a *different policy discretisation*
//!   than the global cores (cross-package balancing happens at
//!   horizon boundaries instead of continuously), so they agree with
//!   the sequential cores within the equivalence-suite tolerances,
//!   not bit-exactly. The arrival stream is still exact: one global
//!   [`ArrivalProcess`] owns it.

use crate::config::SimConfig;
use crate::engine::{RoutedArrival, Simulation};
use crate::trace::{LatencyStats, SimReport};
use ebs_sched::MigrationReason;
use ebs_trace::TraceEvent;
use ebs_units::{Hertz, Joules, SimDuration, SimTime};
use ebs_workloads::{ArrivalProcess, Program};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One cross-partition task handoff, recorded for the determinism
/// tests: handoffs must be identical across worker counts and applied
/// exactly once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandoffRecord {
    /// The horizon boundary at which the handoff was applied.
    pub at: SimTime,
    /// Global sequence number (application order).
    pub seq: u64,
    /// Binary id of the moved task.
    pub binary: u64,
    /// Donating partition (package index).
    pub from_shard: usize,
    /// Receiving partition (package index).
    pub to_shard: usize,
}

/// The partitioned engine. See the module docs for the model and the
/// determinism contract; construction is driven by
/// [`SimConfig::parallel`].
pub struct ParallelSimulation {
    cfg: SimConfig,
    /// One partition per package (or a single whole-machine partition
    /// when one worker is requested or the topology has one package).
    shards: Vec<Simulation>,
    /// The global arrival process (multi-partition mode only; the
    /// single-partition fallback keeps it inside the engine).
    open: Option<ArrivalProcess>,
    now: SimTime,
    horizon: SimDuration,
    /// OS threads the stepping pool uses (1 = step serially).
    threads: usize,
    handoffs: Vec<HandoffRecord>,
    next_seq: u64,
}

impl ParallelSimulation {
    /// Builds the partitioned engine from a configuration (typically
    /// via [`SimConfig::parallel`]). With one worker or one package
    /// this constructs a single whole-machine partition — the strided
    /// core, bit-identical reports and all.
    pub fn new(cfg: SimConfig) -> Self {
        let workers = cfg.parallel_workers.unwrap_or(1).max(1);
        let n_packages = cfg.n_nodes * cfg.packages_per_node;
        let horizon = cfg.max_stride.unwrap_or(SimConfig::DEFAULT_MAX_STRIDE);
        if workers == 1 || n_packages == 1 {
            let mut inner = cfg.clone();
            inner.parallel_workers = None;
            return ParallelSimulation {
                shards: vec![Simulation::new(inner)],
                open: None,
                now: SimTime::ZERO,
                horizon,
                threads: 1,
                handoffs: Vec::new(),
                next_seq: 0,
                cfg,
            };
        }
        let threads = workers.min(n_packages).min(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
        let shards = (0..n_packages)
            .map(|pkg| Simulation::new(shard_cfg(&cfg, pkg)))
            .collect();
        let open = cfg
            .open_workload
            .clone()
            .map(|spec| ArrivalProcess::new(spec, cfg.seed));
        ParallelSimulation {
            shards,
            open,
            now: SimTime::ZERO,
            horizon,
            threads,
            handoffs: Vec::new(),
            next_seq: 0,
            cfg,
        }
    }

    /// The configuration the engine was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of partitions (1 = the sequential fallback).
    pub fn partitions(&self) -> usize {
        self.shards.len()
    }

    /// The recorded cross-partition handoffs, in application order.
    pub fn handoff_log(&self) -> &[HandoffRecord] {
        &self.handoffs
    }

    /// Spawns one instance of a program on the least-loaded partition
    /// (ties go to the lowest package index). Mix spawning comes from
    /// the [`crate::SimEngine`] provided methods.
    pub fn spawn_program(&mut self, program: &Program) {
        let routed = vec![0usize; self.shards.len()];
        let idx = least_loaded(&self.shards, &routed);
        self.shards[idx].spawn_program(program);
    }

    /// Queues an externally routed arrival on the least-loaded
    /// partition, counting arrivals already sitting in partition
    /// inboxes so one-at-a-time routing spreads like
    /// [`ParallelSimulation::route_arrivals`] does.
    pub(crate) fn queue_routed(&mut self, a: RoutedArrival) {
        let idx = (0..self.shards.len())
            .min_by_key(|&i| self.shards[i].runnable_tasks() + self.shards[i].inbox_len())
            .expect("at least one partition");
        self.shards[idx].queue_arrival(a);
    }

    /// Runnable tasks (running + queued) across every partition.
    pub(crate) fn total_runnable(&self) -> usize {
        self.shards.iter().map(|s| s.runnable_tasks()).sum()
    }

    /// Logical CPUs across every partition.
    pub(crate) fn total_cpus(&self) -> usize {
        self.shards.iter().map(|s| s.n_cpus()).sum()
    }

    /// Raw sojourn samples pooled across partitions, in partition
    /// order — the same pooling [`ParallelSimulation::report`] feeds
    /// its latency statistics from.
    pub(crate) fn pooled_latencies(&self) -> Vec<(&'static str, f64)> {
        self.shards
            .iter()
            .flat_map(|s| s.raw_latencies().iter().copied())
            .collect()
    }

    /// Runs the simulation for a span of simulated time: repeated
    /// horizons of concurrent partition stepping, with arrival routing
    /// ahead of each horizon and handoff rebalancing at each boundary.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now + duration;
        if self.shards.len() == 1 {
            self.shards[0].run_for(duration);
            self.now = end;
            return;
        }
        while self.now < end {
            let h = self.horizon.min(end - self.now);
            let boundary = self.now + h;
            self.route_arrivals(boundary);
            self.step_shards(h);
            self.now = boundary;
            self.rebalance();
        }
    }

    /// Pops every arrival due by `until` off the shared process and
    /// queues it on the least-loaded partition, preserving its exact
    /// due instant. Serial and index-ordered: the routing is the same
    /// for every worker count.
    fn route_arrivals(&mut self, until: SimTime) {
        let mut routed = vec![0usize; self.shards.len()];
        let Some(open) = self.open.as_mut() else {
            return;
        };
        loop {
            let t = open.next_arrival();
            if t > until {
                break;
            }
            for a in open.pop_due(t) {
                let program = open.spec().materialize(&a);
                let idx = least_loaded(&self.shards, &routed);
                routed[idx] += 1;
                self.shards[idx].queue_arrival(RoutedArrival {
                    due: t,
                    program,
                    seed: a.seed,
                    phase: a.phase,
                });
            }
        }
    }

    /// Advances every partition by `h`, on the work-stealing pool when
    /// the host offers parallelism, serially otherwise. Partitions
    /// share nothing within a horizon, so the schedule cannot affect
    /// results.
    fn step_shards(&mut self, h: SimDuration) {
        if self.threads <= 1 {
            for shard in &mut self.shards {
                shard.run_for(h);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<&mut Simulation>> = self.shards.iter_mut().map(Mutex::new).collect();
        let slots = &slots;
        let next = &next;
        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= slots.len() {
                        break;
                    }
                    slots[i].lock().expect("partition slot poisoned").run_for(h);
                });
            }
        })
        .expect("crossbeam scope");
    }

    /// The cross-package handoff queue, applied at a horizon boundary:
    /// partitions holding more runnable tasks than CPUs donate queued
    /// (never running) tasks to partitions with spare capacity.
    /// Donors and receivers are visited in ascending package order, so
    /// the handoff sequence is deterministic and identical for every
    /// worker count.
    fn rebalance(&mut self) {
        let n = self.shards.len();
        let mut counts: Vec<usize> = self.shards.iter().map(|s| s.runnable_tasks()).collect();
        let caps: Vec<usize> = self.shards.iter().map(|s| s.n_cpus()).collect();
        for donor in 0..n {
            for recv in 0..n {
                let surplus = counts[donor].saturating_sub(caps[donor]);
                if surplus == 0 {
                    break;
                }
                if recv == donor {
                    continue;
                }
                let deficit = caps[recv].saturating_sub(counts[recv]);
                if deficit == 0 {
                    continue;
                }
                let want = surplus.min(deficit);
                let tasks = self.shards[donor].extract_queued(want);
                let moved = tasks.len();
                for task in tasks {
                    self.handoffs.push(HandoffRecord {
                        at: self.now,
                        seq: self.next_seq,
                        binary: task.binary,
                        from_shard: donor,
                        to_shard: recv,
                    });
                    self.next_seq += 1;
                    self.shards[recv].inject_task(task);
                }
                counts[donor] -= moved;
                counts[recv] += moved;
                if moved < want {
                    // Nothing else extractable from this donor (its
                    // remaining runnable tasks are all running).
                    break;
                }
            }
        }
    }

    /// The merged event streams of all partitions, in global timestamp
    /// order (ties in partition order), with CPU and package ids
    /// remapped to the machine-global numbering. `None` when event
    /// tracing is disabled. Task ids stay partition-local.
    pub fn events(&self) -> Option<Vec<TraceEvent>> {
        if self.shards.len() == 1 {
            return self.shards[0].events().map(|t| t.to_vec());
        }
        let mut streams = Vec::with_capacity(self.shards.len());
        let mut cpu_offset = 0u32;
        let doms_per_pkg = self.cfg.domains_per_package() as u32;
        for (pkg, shard) in self.shards.iter().enumerate() {
            let trace = shard.events()?;
            streams.push(
                trace
                    .iter()
                    .map(|e| TraceEvent {
                        t: e.t,
                        kind: e
                            .kind
                            .offset_ids(cpu_offset, pkg as u32, pkg as u32 * doms_per_pkg),
                    })
                    .collect(),
            );
            cpu_offset += shard.n_cpus() as u32;
        }
        Some(ebs_trace::merge_streams(streams))
    }

    /// Summarises the run: partition reports merged into one
    /// machine-global [`SimReport`]. Counters sum, per-CPU vectors
    /// concatenate in package order (partition CPU order *is* the
    /// global package-major order), latency statistics recompute from
    /// the pooled raw samples, and residencies merge state-wise.
    pub fn report(&self) -> SimReport {
        if self.shards.len() == 1 {
            return self.shards[0].report();
        }
        let reports: Vec<SimReport> = self.shards.iter().map(|s| s.report()).collect();
        let duration = self.now - SimTime::ZERO;
        let mut migrations_by_reason = [0u64; MigrationReason::ALL.len()];
        for r in &reports {
            for (acc, v) in migrations_by_reason.iter_mut().zip(r.migrations_by_reason) {
                *acc += v;
            }
        }
        let mut by_binary: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for r in &reports {
            for &(binary, n) in &r.completions_by_binary {
                *by_binary.entry(binary).or_default() += n;
            }
        }
        let mut completions_by_binary: Vec<(u64, u64)> = by_binary.into_iter().collect();
        completions_by_binary.sort_unstable();
        let samples: Vec<(&'static str, f64)> = self
            .shards
            .iter()
            .flat_map(|s| s.raw_latencies().iter().copied())
            .collect();
        let latency = LatencyStats::from_samples(samples.iter().map(|&(_, s)| s).collect());
        let phase_latencies: Vec<(String, LatencyStats)> = match &self.cfg.open_workload {
            Some(w) => w
                .curve
                .phases()
                .iter()
                .filter_map(|&ph| {
                    let xs: Vec<f64> = samples
                        .iter()
                        .filter(|&&(p, _)| p == ph)
                        .map(|&(_, s)| s)
                        .collect();
                    (!xs.is_empty()).then(|| (ph.to_string(), LatencyStats::from_samples(xs)))
                })
                .collect(),
            None => Vec::new(),
        };
        // P-state residency across partitions. Homogeneous machines
        // keep the legacy state-wise sum (every partition runs the
        // same table, so index i is the same frequency everywhere);
        // hybrid machines merge by exact frequency, mirroring the
        // per-domain merge inside each partition's report — classes
        // run distinct ladders, so index alignment means nothing.
        let pstate_residency = if self.cfg.is_hybrid() {
            let mut merged: Vec<ebs_dvfs::PStateResidency> = Vec::new();
            for r in reports.iter().flat_map(|r| r.pstate_residency.iter()) {
                match merged.iter_mut().find(|m| m.frequency == r.frequency) {
                    Some(m) => m.time += r.time,
                    None => merged.push(ebs_dvfs::PStateResidency {
                        frequency: r.frequency,
                        time: r.time,
                        fraction: 0.0,
                    }),
                }
            }
            merged.sort_by(|a, b| b.frequency.0.total_cmp(&a.frequency.0));
            let total: SimDuration = merged.iter().map(|m| m.time).sum();
            for m in &mut merged {
                m.fraction = if total.is_zero() {
                    0.0
                } else {
                    m.time.ratio(total)
                };
            }
            merged
        } else {
            match reports.first() {
                Some(first) if !first.pstate_residency.is_empty() => {
                    let states = first.pstate_residency.len();
                    let times: Vec<SimDuration> = (0..states)
                        .map(|i| reports.iter().map(|r| r.pstate_residency[i].time).sum())
                        .collect();
                    let total: SimDuration = times.iter().copied().sum();
                    (0..states)
                        .map(|i| ebs_dvfs::PStateResidency {
                            frequency: first.pstate_residency[i].frequency,
                            time: times[i],
                            fraction: if total.is_zero() {
                                0.0
                            } else {
                                times[i].ratio(total)
                            },
                        })
                        .collect()
                }
                _ => Vec::new(),
            }
        };
        let throttled_fraction: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.throttled_fraction.iter().copied())
            .collect();
        let avg_throttled_fraction = if throttled_fraction.is_empty() {
            0.0
        } else {
            throttled_fraction.iter().sum::<f64>() / throttled_fraction.len() as f64
        };
        let n = reports.len() as f64;
        let instructions_retired: u64 = reports.iter().map(|r| r.instructions_retired).sum();
        SimReport {
            duration,
            engine_steps: reports.iter().map(|r| r.engine_steps).sum(),
            migrations: migrations_by_reason.iter().sum(),
            migrations_by_reason,
            context_switches: reports.iter().map(|r| r.context_switches).sum(),
            completions: completions_by_binary.iter().map(|&(_, c)| c).sum(),
            arrivals: self.open.as_ref().map_or(0, |o| o.accepted()),
            latency,
            phase_latencies,
            completions_by_binary,
            instructions_retired,
            throughput_ips: if duration.is_zero() {
                0.0
            } else {
                instructions_retired as f64 / duration.as_secs_f64()
            },
            throttled_fraction,
            avg_throttled_fraction,
            throttle_stats: reports
                .iter()
                .flat_map(|r| r.throttle_stats.iter().copied())
                .collect(),
            pstate_residency,
            avg_scaled_fraction: reports.iter().map(|r| r.avg_scaled_fraction).sum::<f64>() / n,
            mean_frequency: Hertz(reports.iter().map(|r| r.mean_frequency.0).sum::<f64>() / n),
            dvfs_transitions: reports.iter().map(|r| r.dvfs_transitions).sum(),
            dvfs_decisions: reports.iter().map(|r| r.dvfs_decisions).sum(),
            max_package_temp: reports.iter().map(|r| r.max_package_temp).fold(
                ebs_units::Celsius::AMBIENT,
                |a, b| if b.0 > a.0 { b } else { a },
            ),
            true_energy: Joules(reports.iter().map(|r| r.true_energy.0).sum()),
            estimated_energy: Joules(reports.iter().map(|r| r.estimated_energy.0).sum()),
        }
    }
}

impl ebs_store::Snapshot for ParallelSimulation {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.key("parallel");
        w.usize(self.shards.len());
        for shard in &self.shards {
            shard.save(w);
        }
        w.opt(&self.open, |w, open| open.save(w));
        w.time(self.now);
        w.seq(&self.handoffs, |w, h| {
            w.time(h.at);
            w.u64(h.seq);
            w.u64(h.binary);
            w.usize(h.from_shard);
            w.usize(h.to_shard);
        });
        w.u64(self.next_seq);
    }

    /// Restores into a freshly built engine of the same partitioning
    /// (worker count may differ — partition count may not, since it is
    /// fixed by the topology).
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        r.key("parallel")?;
        let n = r.usize()?;
        if n != self.shards.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "snapshot has {n} partitions, engine has {}",
                self.shards.len()
            )));
        }
        for shard in &mut self.shards {
            shard.restore(r)?;
        }
        let has_open = r.bool()?;
        match (has_open, &mut self.open) {
            (true, Some(open)) => open.restore(r)?,
            (false, None) => {}
            (saved, _) => {
                return Err(ebs_store::StoreError::Invalid(format!(
                    "snapshot open-workload presence {saved} does not match the config"
                )));
            }
        }
        self.now = r.time()?;
        self.handoffs = r.seq(|r| {
            Ok(HandoffRecord {
                at: r.time()?,
                seq: r.u64()?,
                binary: r.u64()?,
                from_shard: r.usize()?,
                to_shard: r.usize()?,
            })
        })?;
        self.next_seq = r.u64()?;
        Ok(())
    }
}

/// The partition with the fewest runnable tasks plus already-routed
/// arrivals; ties go to the lowest package index (`min_by_key` keeps
/// the first minimum).
fn least_loaded(shards: &[Simulation], routed: &[usize]) -> usize {
    (0..shards.len())
        .min_by_key(|&i| shards[i].runnable_tasks() + routed[i])
        .expect("at least one partition")
}

/// The configuration of partition `pkg`: the same machine parameters
/// over a single-package topology. The seed is unchanged, so every
/// partition calibrates the *same* energy model the global cores use;
/// the arrival process moves to the synchronizer.
fn shard_cfg(cfg: &SimConfig, pkg: usize) -> SimConfig {
    let mut s = cfg.clone();
    s.n_nodes = 1;
    s.packages_per_node = 1;
    s.parallel_workers = None;
    s.open_workload = None;
    if !cfg.cooling_factors.is_empty() {
        s.cooling_factors = vec![cfg.cooling_factors[pkg]];
    }
    s
}
