//! Simulation configuration.

use ebs_core::EnergyBalanceConfig;
use ebs_dvfs::{DomainScope, GovernorKind, PStateTable};
use ebs_topology::{TopologyBuilder, TopologyPreset};
use ebs_units::{Celsius, SimDuration, Watts};
use ebs_workloads::OpenWorkload;

/// How the per-CPU maximum power (the thermal budget) is determined.
#[derive(Clone, Debug, PartialEq)]
pub enum MaxPowerSpec {
    /// The same budget for every *logical* CPU, as in Section 6.1
    /// ("we set the maximum power of all CPUs to 60 W") — with SMT the
    /// package budget is split between siblings, so Section 6.4's
    /// "40 W per physical processor" is `PerPackage(Watts(40.0))`.
    PerLogical(Watts),
    /// A budget per physical package, split evenly between its
    /// hardware threads.
    PerPackage(Watts),
    /// Derive each package's budget from its (possibly heterogeneous)
    /// thermal model at the given temperature limit — the Section 6.2
    /// setup with its artificial 38 degC limit.
    FromThermalLimit(Celsius),
}

/// Configuration of the DVFS subsystem.
#[derive(Clone, Debug, PartialEq)]
pub struct DvfsSpec {
    /// The P-state ladder every package scales over. Execution speed
    /// follows the table's *absolute* frequencies, so a table whose
    /// nominal differs from [`SimConfig::freq_hz`] simulates a
    /// differently-clocked part consistently (reports and physics
    /// agree); `freq_hz` only sets the clock of a machine without
    /// DVFS.
    pub table: PStateTable,
    /// The governor policy driving each package's frequency domain.
    pub governor: GovernorKind,
    /// In the cadence baseline (`event_driven == false`): how often the
    /// governor re-decides the P-state (real cpufreq governors run
    /// every few scheduler ticks; 10 ms keeps decisions well inside the
    /// thermal time constant). In event-driven mode the same duration
    /// caps the utilization averaging window, so windowed utilization
    /// stays exactly as responsive as the cadence baseline's.
    pub interval: SimDuration,
    /// Event-driven decision points (the default): governors re-decide
    /// when a signal leaves the [`ebs_dvfs::DecisionHold`] band of the
    /// last decision, instead of on the fixed `interval` cadence. A
    /// steady package then needs no governor wake-ups at all, so the
    /// variable-stride engine's steps stretch past the old 10 ms floor.
    /// `false` selects the measured cadence baseline (mirroring
    /// [`SimConfig::scan_balancing`]).
    pub event_driven: bool,
    /// Optional periodic fallback for event-driven mode: re-decide at
    /// least this often even inside the hold bands. `None` (the
    /// default) trusts the triggers alone. With a [`GovernorKind::
    /// Fixed`] governor (whose hold never expires) and `max_hold ==
    /// Some(interval)`, event-driven decisions degenerate to exactly
    /// the cadence instants — the bit-identity anchor of the
    /// equivalence suite. Ignored in cadence mode.
    pub max_hold: Option<SimDuration>,
}

impl Default for DvfsSpec {
    fn default() -> Self {
        DvfsSpec {
            table: PStateTable::p4_xeon(),
            governor: GovernorKind::ThermalAware,
            interval: SimDuration::from_millis(10),
            event_driven: true,
            max_hold: None,
        }
    }
}

/// Full configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// NUMA nodes.
    pub n_nodes: usize,
    /// Physical packages per node.
    pub packages_per_node: usize,
    /// Cores per package (1 = the paper's machine; more adds the
    /// Section 7 CMP layer to the domain hierarchy).
    pub cores_per_package: usize,
    /// Hardware threads per core (1 = SMT off, 2 = two-way SMT).
    pub threads_per_core: usize,
    /// Performance (class 0) cores leading each package; the rest are
    /// efficiency (class 1) cores. `0` (the default) keeps the machine
    /// homogeneous — the paper's testbed and every legacy preset.
    pub perf_cores_per_package: usize,
    /// Frequency-domain granularity. `None` (the default) resolves to
    /// per-package on homogeneous machines (the paper's testbed
    /// behaviour, bit-identical to the pre-scope engine) and per-core
    /// on hybrid ones (classes run distinct P-state ladders, so they
    /// cannot share a plane).
    pub domain_scope: Option<DomainScope>,
    /// Ignore core classes in balancing, placement, and hot-migration
    /// decisions (capacity-blind): the `exp_hybrid` baseline that
    /// treats every runnable task as worth the same on any core. The
    /// physics (per-class speed, power, calibration) stays
    /// class-aware either way.
    pub class_blind: bool,
    /// RNG seed; every random choice in the run derives from it.
    pub seed: u64,
    /// Simulation tick (scheduler granularity). In the fixed-tick
    /// engine mode every step is exactly one tick; in strided mode the
    /// tick is the engine's *finest* step and the granularity at which
    /// throttle flips are resolved.
    pub tick: SimDuration,
    /// Upper bound on one variable-stride engine step. `None` (the
    /// default) selects the classic fixed-tick core; `Some(cap)`
    /// enables the event-driven core, which advances in one exact step
    /// to the next scheduling-relevant event (capped at `cap`, floored
    /// at one tick). With `cap == tick` the strided core is
    /// bit-identical to the fixed-tick one.
    pub max_stride: Option<SimDuration>,
    /// Core clock in hertz.
    pub freq_hz: f64,
    /// Use the energy-aware balancer (Fig. 4) instead of the stock
    /// load balancer.
    pub energy_balancing: bool,
    /// Tunables of the energy-aware balancer (margins provide the
    /// hysteresis of Section 4.3; the ablation experiments weaken them
    /// to reproduce the ping-pong and over-balancing failure modes).
    pub balance: EnergyBalanceConfig,
    /// Enable hot task migration (Fig. 5).
    pub hot_task_migration: bool,
    /// Force both balancers onto the pre-aggregate scan paths (walk
    /// every runqueue per group selection) instead of the incremental
    /// aggregate tree. Decisions are bitwise identical either way;
    /// this exists for the balance benchmark's baseline and the
    /// equivalence tests.
    pub scan_balancing: bool,
    /// Enable energy-aware initial placement (Section 4.6).
    pub energy_placement: bool,
    /// Enable `hlt` throttling at the maximum power.
    pub throttling: bool,
    /// Dynamic voltage/frequency scaling; `None` pins every package at
    /// the nominal clock (the paper's original testbed behaviour).
    pub dvfs: Option<DvfsSpec>,
    /// The per-CPU power budgets.
    pub max_power: MaxPowerSpec,
    /// Per-package cooling factors scaling the thermal resistance
    /// (>1 = poorer cooling). Empty means homogeneous.
    pub cooling_factors: Vec<f64>,
    /// Use the ground-truth energy model in the estimator instead of a
    /// calibrated one (for ablation: what would perfect estimation
    /// change?).
    pub perfect_estimation: bool,
    /// Respawn a finished task's program immediately (keeps the
    /// configured task population constant, as the paper's throughput
    /// runs do).
    pub respawn: bool,
    /// Sample the per-CPU thermal power at this interval for the
    /// thermal trace (fig. 6/7); `None` disables the trace.
    pub thermal_trace_interval: Option<SimDuration>,
    /// Record which CPU every task runs on, whenever it changes
    /// (fig. 9); cheap, but unneeded for most runs.
    pub task_cpu_trace: bool,
    /// Record the structured scheduling-event trace (context switches,
    /// migrations, governor decisions, ...). Off by default; off means
    /// the engine allocates nothing and reports are bit-identical.
    pub event_trace: bool,
    /// Keep only the newest this-many events (ring buffer); `None`
    /// keeps everything.
    pub event_trace_cap: Option<usize>,
    /// Snapshot the metrics registry (counters and gauges) at this
    /// interval into a time series; `None` disables metrics entirely.
    /// Like the thermal trace, an active snapshot cadence bounds the
    /// variable-stride engine so snapshots land on their exact instants.
    pub metrics_interval: Option<SimDuration>,
    /// Measure host wall time per engine phase (stride selection,
    /// physics, scheduler, ...). Purely an engine-side profile; the
    /// simulation's behaviour is unaffected.
    pub profile_engine: bool,
    /// An open workload driven by the engine: Poisson task arrivals
    /// under a load curve. `None` keeps the paper's closed model
    /// (tasks are spawned explicitly and optionally respawned).
    pub open_workload: Option<OpenWorkload>,
    /// Worker threads of the parallel (per-package partitioned) engine
    /// core; `None` selects the single-loop cores. See
    /// [`SimConfig::parallel`].
    pub parallel_workers: Option<usize>,
    /// Combined throughput factor of two busy SMT siblings relative to
    /// one solo thread (the literature's ~1.25 for the Pentium 4).
    pub smt_speedup: f64,
    /// Cache-warmup model: IPC factor right after an intra-node
    /// migration, ramping linearly back to 1.
    pub warmup_ipc_floor: f64,
    /// Instructions to regain full warmth after an intra-node
    /// migration.
    pub warmup_instructions: u64,
    /// IPC floor after a cross-node migration (node affinity is more
    /// expensive to rebuild, Section 4.1).
    pub warmup_ipc_floor_cross_node: f64,
    /// Instructions to regain full warmth after a cross-node migration.
    pub warmup_instructions_cross_node: u64,
}

impl SimConfig {
    /// Default stride cap of the variable-stride engine core: long
    /// enough to skip most idle ticks, short enough that the thermal
    /// averages (τ ≈ 15 s) move by well under a watt per step.
    pub const DEFAULT_MAX_STRIDE: SimDuration = SimDuration::from_millis(25);

    /// The paper's testbed shape with the paper's defaults: SMT on,
    /// energy-aware scheduling on, throttling on, 60 W logical budgets.
    pub fn xseries445() -> Self {
        SimConfig::with_topology(TopologyPreset::XSeries445 { smt: true }.builder())
    }

    /// The paper's defaults on an arbitrary machine shape.
    pub fn with_topology(topo: TopologyBuilder) -> Self {
        SimConfig {
            n_nodes: topo.n_nodes(),
            packages_per_node: topo.n_packages_per_node(),
            cores_per_package: topo.n_cores_per_package(),
            threads_per_core: topo.n_threads_per_core(),
            perf_cores_per_package: topo.n_perf_cores_per_package(),
            domain_scope: None,
            class_blind: false,
            seed: 1,
            tick: SimDuration::from_millis(1),
            max_stride: None,
            freq_hz: 2.2e9,
            energy_balancing: true,
            balance: EnergyBalanceConfig::default(),
            hot_task_migration: true,
            scan_balancing: false,
            energy_placement: true,
            throttling: true,
            dvfs: None,
            max_power: MaxPowerSpec::PerLogical(Watts(60.0)),
            cooling_factors: Vec::new(),
            perfect_estimation: false,
            respawn: true,
            thermal_trace_interval: None,
            task_cpu_trace: false,
            event_trace: false,
            event_trace_cap: None,
            metrics_interval: None,
            profile_engine: false,
            open_workload: None,
            parallel_workers: None,
            smt_speedup: 1.25,
            warmup_ipc_floor: 0.55,
            warmup_instructions: 40_000_000,
            warmup_ipc_floor_cross_node: 0.40,
            warmup_instructions_cross_node: 90_000_000,
        }
    }

    /// The paper's defaults on a named preset shape.
    pub fn preset(preset: TopologyPreset) -> Self {
        SimConfig::with_topology(preset.builder())
    }

    /// Sets two-way SMT on or off.
    pub fn smt(mut self, smt: bool) -> Self {
        self.threads_per_core = if smt { 2 } else { 1 };
        self
    }

    /// Whether SMT is enabled.
    pub fn smt_enabled(&self) -> bool {
        self.threads_per_core > 1
    }

    /// Replaces the machine shape.
    pub fn topology(mut self, topo: TopologyBuilder) -> Self {
        self.n_nodes = topo.n_nodes();
        self.packages_per_node = topo.n_packages_per_node();
        self.cores_per_package = topo.n_cores_per_package();
        self.threads_per_core = topo.n_threads_per_core();
        self.perf_cores_per_package = topo.n_perf_cores_per_package();
        self
    }

    /// The machine shape as a [`TopologyBuilder`].
    pub fn topology_builder(&self) -> TopologyBuilder {
        TopologyBuilder::new()
            .nodes(self.n_nodes)
            .packages_per_node(self.packages_per_node)
            .cores_per_package(self.cores_per_package)
            .threads_per_core(self.threads_per_core)
            .perf_cores_per_package(self.perf_cores_per_package)
    }

    /// Makes the shape hybrid: the leading `n` cores of each package
    /// become performance (class 0) cores, the rest efficiency
    /// (class 1). `0` keeps the machine homogeneous.
    pub fn perf_cores(mut self, n: usize) -> Self {
        self.perf_cores_per_package = n;
        self
    }

    /// Pins the frequency-domain granularity (see
    /// [`SimConfig::domain_scope`] for the `None` default).
    pub fn scope(mut self, scope: DomainScope) -> Self {
        self.domain_scope = Some(scope);
        self
    }

    /// Makes balancing/placement/hot-migration ignore core classes
    /// (the `exp_hybrid` baseline).
    pub fn class_blind(mut self, on: bool) -> Self {
        self.class_blind = on;
        self
    }

    /// Whether the machine mixes core classes.
    pub fn is_hybrid(&self) -> bool {
        self.perf_cores_per_package > 0
    }

    /// Number of distinct core classes (1 = homogeneous).
    pub fn n_classes(&self) -> usize {
        if self.is_hybrid() {
            2
        } else {
            1
        }
    }

    /// The frequency-domain granularity the engine will run:
    /// the explicit scope if pinned, else per-core for hybrid shapes
    /// and per-package for homogeneous ones.
    pub fn effective_domain_scope(&self) -> DomainScope {
        self.domain_scope.unwrap_or(if self.is_hybrid() {
            DomainScope::PerCore
        } else {
            DomainScope::PerPackage
        })
    }

    /// Frequency domains per package under the effective scope.
    pub fn domains_per_package(&self) -> usize {
        self.effective_domain_scope()
            .domains_per_package(self.cores_per_package)
    }

    /// Frequency domains across the machine.
    pub fn n_domains(&self) -> usize {
        self.n_packages() * self.domains_per_package()
    }

    /// Drives the simulation with an open workload (Poisson arrivals
    /// under a load curve) instead of a fixed task population.
    pub fn open_workload(mut self, workload: OpenWorkload) -> Self {
        self.open_workload = Some(workload);
        self
    }

    /// Removes any engine-owned open workload. Used by outer layers
    /// (the fleet dispatcher) that generate arrivals themselves and
    /// route them in via [`crate::SimEngine::queue_arrival`] — a host
    /// must not *also* draw its own arrival stream.
    pub fn closed(mut self) -> Self {
        self.open_workload = None;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the variable-stride (event-driven) engine core with the
    /// default stride cap, [`SimConfig::DEFAULT_MAX_STRIDE`].
    pub fn strided(self) -> Self {
        self.max_stride(Self::DEFAULT_MAX_STRIDE)
    }

    /// Selects the variable-stride core with an explicit stride cap.
    /// Caps below one tick are treated as one tick (which makes the
    /// strided core bit-identical to the fixed-tick one).
    pub fn max_stride(mut self, cap: SimDuration) -> Self {
        self.max_stride = Some(cap);
        self
    }

    /// Selects the classic fixed-tick engine core (the default).
    pub fn fixed_tick(mut self) -> Self {
        self.max_stride = None;
        self
    }

    /// Whether the variable-stride core is selected.
    pub fn strided_enabled(&self) -> bool {
        self.max_stride.is_some()
    }

    /// Selects the parallel engine core: the machine is split into
    /// per-package simulation partitions with their own event
    /// calendars, synchronized by conservative lookahead, stepped by up
    /// to `workers` threads (clamped to the package count and the
    /// host's parallelism; threads only engage when both exceed one).
    /// Partitions ride the variable-stride core, so this implies
    /// [`SimConfig::strided`] unless an explicit stride cap is already
    /// set. `parallel(1)` runs the whole machine as one partition —
    /// bit-identical to the strided core by construction.
    pub fn parallel(mut self, workers: usize) -> Self {
        self.parallel_workers = Some(workers.max(1));
        if self.max_stride.is_none() {
            self.max_stride = Some(Self::DEFAULT_MAX_STRIDE);
        }
        self
    }

    /// Whether the parallel partitioned core is selected.
    pub fn parallel_enabled(&self) -> bool {
        self.parallel_workers.is_some()
    }

    /// Enables or disables *all* energy-aware mechanisms at once — the
    /// toggle the paper's "energy-aware scheduling enabled/disabled"
    /// comparisons flip.
    pub fn energy_aware(mut self, on: bool) -> Self {
        self.energy_balancing = on;
        self.hot_task_migration = on;
        self.energy_placement = on;
        self
    }

    /// Enables or disables only the merged energy balancer.
    pub fn energy_balancing(mut self, on: bool) -> Self {
        self.energy_balancing = on;
        self
    }

    /// Overrides the energy-balancer tunables (ablations).
    pub fn balance_config(mut self, balance: EnergyBalanceConfig) -> Self {
        self.balance = balance;
        self
    }

    /// Enables or disables only hot task migration.
    pub fn hot_task_migration(mut self, on: bool) -> Self {
        self.hot_task_migration = on;
        self
    }

    /// Forces the pre-aggregate scan-based balancing paths (see
    /// [`SimConfig::scan_balancing`]).
    pub fn scan_balancing(mut self, on: bool) -> Self {
        self.scan_balancing = on;
        self
    }

    /// Enables or disables only energy-aware placement.
    pub fn energy_placement(mut self, on: bool) -> Self {
        self.energy_placement = on;
        self
    }

    /// Enables or disables throttling.
    pub fn throttling(mut self, on: bool) -> Self {
        self.throttling = on;
        self
    }

    /// Enables DVFS with an explicit specification.
    pub fn dvfs(mut self, spec: DvfsSpec) -> Self {
        self.dvfs = Some(spec);
        self
    }

    /// Enables DVFS with the default P4 Xeon table and decision
    /// interval, under the given governor.
    pub fn dvfs_governor(mut self, governor: GovernorKind) -> Self {
        self.dvfs = Some(DvfsSpec {
            governor,
            ..DvfsSpec::default()
        });
        self
    }

    /// Forces the fixed-cadence governor baseline (or re-enables the
    /// event-driven default) on the configured DVFS spec. No-op when
    /// DVFS is disabled; like [`SimConfig::scan_balancing`], the
    /// baseline exists so experiments can measure exactly what the
    /// event-driven path buys.
    pub fn dvfs_event_driven(mut self, on: bool) -> Self {
        if let Some(spec) = self.dvfs.as_mut() {
            spec.event_driven = on;
        }
        self
    }

    /// Disables DVFS (the default).
    pub fn dvfs_off(mut self) -> Self {
        self.dvfs = None;
        self
    }

    /// Whether DVFS is enabled.
    pub fn dvfs_enabled(&self) -> bool {
        self.dvfs.is_some()
    }

    /// Sets the power budget specification.
    pub fn max_power(mut self, spec: MaxPowerSpec) -> Self {
        self.max_power = spec;
        self
    }

    /// Sets per-package cooling factors (length must equal the package
    /// count; checked at machine construction).
    pub fn cooling_factors(mut self, factors: Vec<f64>) -> Self {
        self.cooling_factors = factors;
        self
    }

    /// Enables the thermal-power trace at the given sampling interval.
    pub fn trace_thermal(mut self, every: SimDuration) -> Self {
        self.thermal_trace_interval = Some(every);
        self
    }

    /// Enables the per-task CPU trace.
    pub fn trace_task_cpu(mut self, on: bool) -> Self {
        self.task_cpu_trace = on;
        self
    }

    /// Enables the structured scheduling-event trace.
    pub fn trace_events(mut self, on: bool) -> Self {
        self.event_trace = on;
        self
    }

    /// Bounds the event trace to the newest `cap` events.
    pub fn trace_events_cap(mut self, cap: usize) -> Self {
        self.event_trace = true;
        self.event_trace_cap = Some(cap);
        self
    }

    /// Enables metrics snapshots at the given cadence.
    pub fn metrics_every(mut self, every: SimDuration) -> Self {
        self.metrics_interval = Some(every);
        self
    }

    /// Enables per-phase engine self-profiling.
    pub fn profile_engine(mut self, on: bool) -> Self {
        self.profile_engine = on;
        self
    }

    /// Enables or disables respawning of finished tasks.
    pub fn respawn(mut self, on: bool) -> Self {
        self.respawn = on;
        self
    }

    /// Uses the ground-truth model for estimation (ablation).
    pub fn perfect_estimation(mut self, on: bool) -> Self {
        self.perfect_estimation = on;
        self
    }

    /// Number of physical packages.
    pub fn n_packages(&self) -> usize {
        self.n_nodes * self.packages_per_node
    }

    /// Number of logical CPUs.
    pub fn n_cpus(&self) -> usize {
        self.n_packages() * self.threads_per_package()
    }

    /// Hardware threads per package.
    pub fn threads_per_package(&self) -> usize {
        self.cores_per_package * self.threads_per_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_testbed_shape() {
        let cfg = SimConfig::xseries445();
        assert_eq!(cfg.n_packages(), 8);
        assert_eq!(cfg.n_cpus(), 16);
        assert_eq!(cfg.threads_per_package(), 2);
        let cfg = cfg.smt(false);
        assert_eq!(cfg.n_cpus(), 8);
        assert_eq!(cfg.threads_per_package(), 1);
    }

    #[test]
    fn topology_builders_round_trip() {
        let cfg = SimConfig::preset(TopologyPreset::Numa16);
        assert_eq!(cfg.n_packages(), 16);
        assert_eq!(cfg.n_cpus(), 32);
        assert_eq!(cfg.threads_per_package(), 2);
        assert!(!cfg.smt_enabled());
        let builder = cfg.topology_builder();
        assert_eq!(builder, TopologyPreset::Numa16.builder());
        // Replacing the shape keeps the rest of the config.
        let cfg = cfg.seed(5).topology(TopologyPreset::Dual.builder());
        assert_eq!(cfg.n_packages(), 2);
        assert_eq!(cfg.n_cpus(), 8);
        assert_eq!(cfg.seed, 5);
        assert!(cfg.smt_enabled());
    }

    #[test]
    fn hybrid_shape_and_scope_resolution() {
        let cfg = SimConfig::xseries445();
        assert!(!cfg.is_hybrid());
        assert_eq!(cfg.n_classes(), 1);
        assert_eq!(cfg.effective_domain_scope(), DomainScope::PerPackage);
        assert_eq!(cfg.n_domains(), cfg.n_packages());

        let cfg = SimConfig::preset(TopologyPreset::Hybrid8);
        assert!(cfg.is_hybrid());
        assert_eq!(cfg.n_classes(), 2);
        assert_eq!(cfg.perf_cores_per_package, 4);
        // Hybrid shapes default to per-core domains.
        assert_eq!(cfg.effective_domain_scope(), DomainScope::PerCore);
        assert_eq!(cfg.n_domains(), 8);
        // The builder round-trips the hybrid split.
        assert_eq!(cfg.topology_builder(), TopologyPreset::Hybrid8.builder());
        // Replacing the shape with a homogeneous one clears the split.
        let cfg2 = cfg.clone().topology(TopologyPreset::Dual.builder());
        assert!(!cfg2.is_hybrid());
        assert_eq!(cfg2.perf_cores_per_package, 0);
        // An explicit scope pins the granularity.
        let pinned = cfg.scope(DomainScope::PerPackage);
        assert_eq!(pinned.effective_domain_scope(), DomainScope::PerPackage);
        assert_eq!(pinned.n_domains(), 1);
        // Class-blind is a separate toggle.
        assert!(!pinned.class_blind);
        assert!(pinned.class_blind(true).class_blind);
    }

    #[test]
    fn open_workload_builder() {
        use ebs_workloads::{catalog, LoadCurve, OpenWorkload};
        let cfg = SimConfig::xseries445();
        assert!(cfg.open_workload.is_none());
        let cfg = cfg.open_workload(
            OpenWorkload::new(vec![catalog::aluadd()], 4.0).curve(LoadCurve::Constant),
        );
        let w = cfg.open_workload.as_ref().unwrap();
        assert_eq!(w.base_rate_hz, 4.0);
        assert_eq!(w.curve, LoadCurve::Constant);
    }

    #[test]
    fn energy_aware_toggles_all_three() {
        let cfg = SimConfig::xseries445().energy_aware(false);
        assert!(!cfg.energy_balancing);
        assert!(!cfg.hot_task_migration);
        assert!(!cfg.energy_placement);
        let cfg = cfg.energy_balancing(true);
        assert!(cfg.energy_balancing);
        assert!(!cfg.hot_task_migration);
    }

    #[test]
    fn dvfs_builders() {
        let cfg = SimConfig::xseries445();
        assert!(!cfg.dvfs_enabled());
        let cfg = cfg.dvfs_governor(GovernorKind::ThermalAware);
        assert!(cfg.dvfs_enabled());
        let spec = cfg.dvfs.clone().unwrap();
        assert_eq!(spec.governor, GovernorKind::ThermalAware);
        assert_eq!(spec.table, PStateTable::p4_xeon());
        assert_eq!(spec.interval, SimDuration::from_millis(10));
        // Event-driven decision points are the default; the cadence
        // baseline stays reachable behind the flag.
        assert!(spec.event_driven);
        assert_eq!(spec.max_hold, None);
        let cadence = cfg.clone().dvfs_event_driven(false);
        assert!(!cadence.dvfs.as_ref().unwrap().event_driven);
        assert!(cadence.dvfs_event_driven(true).dvfs.unwrap().event_driven);
        let custom = DvfsSpec {
            governor: GovernorKind::Fixed(2),
            interval: SimDuration::from_millis(50),
            ..DvfsSpec::default()
        };
        let cfg = cfg.dvfs(custom.clone());
        assert_eq!(cfg.dvfs, Some(custom));
        assert!(!cfg.dvfs_off().dvfs_enabled());
    }

    #[test]
    fn engine_mode_builders() {
        let cfg = SimConfig::xseries445();
        assert!(!cfg.strided_enabled());
        assert_eq!(cfg.max_stride, None);
        let cfg = cfg.strided();
        assert!(cfg.strided_enabled());
        assert_eq!(cfg.max_stride, Some(SimConfig::DEFAULT_MAX_STRIDE));
        let cfg = cfg.max_stride(SimDuration::from_millis(5));
        assert_eq!(cfg.max_stride, Some(SimDuration::from_millis(5)));
        assert!(!cfg.fixed_tick().strided_enabled());
    }

    #[test]
    fn parallel_builder_implies_strided() {
        let cfg = SimConfig::xseries445();
        assert!(!cfg.parallel_enabled());
        let cfg = cfg.parallel(4);
        assert!(cfg.parallel_enabled());
        assert_eq!(cfg.parallel_workers, Some(4));
        // Partitions ride the strided core.
        assert_eq!(cfg.max_stride, Some(SimConfig::DEFAULT_MAX_STRIDE));
        // An explicit stride cap survives.
        let cfg = SimConfig::xseries445()
            .max_stride(SimDuration::from_millis(5))
            .parallel(2);
        assert_eq!(cfg.max_stride, Some(SimDuration::from_millis(5)));
        // Zero workers clamps to one.
        assert_eq!(
            SimConfig::xseries445().parallel(0).parallel_workers,
            Some(1)
        );
    }

    #[test]
    fn builder_round_trip() {
        let cfg = SimConfig::xseries445()
            .seed(99)
            .throttling(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
            .trace_thermal(SimDuration::from_secs(1))
            .trace_task_cpu(true)
            .respawn(false)
            .perfect_estimation(true)
            .trace_events(true)
            .metrics_every(SimDuration::from_millis(250))
            .profile_engine(true)
            .cooling_factors(vec![1.0; 8]);
        assert_eq!(cfg.seed, 99);
        assert!(!cfg.throttling);
        assert_eq!(cfg.max_power, MaxPowerSpec::PerPackage(Watts(40.0)));
        assert_eq!(cfg.thermal_trace_interval, Some(SimDuration::from_secs(1)));
        assert!(cfg.task_cpu_trace);
        assert!(!cfg.respawn);
        assert!(cfg.perfect_estimation);
        assert!(cfg.event_trace);
        assert_eq!(cfg.event_trace_cap, None);
        assert_eq!(cfg.metrics_interval, Some(SimDuration::from_millis(250)));
        assert!(cfg.profile_engine);
        assert_eq!(cfg.cooling_factors.len(), 8);
        let cfg = cfg.trace_events_cap(1024);
        assert_eq!(cfg.event_trace_cap, Some(1024));
    }
}
