//! Per-task runtime state: the running program plus the cache-warmth
//! model.
//!
//! Migrations break processor affinity (Section 4.1): after a move the
//! task must refill caches, which the simulator models as a reduced IPC
//! ramping linearly back to 1 over a number of instructions. "Caches
//! can be considered warm after executing some millions of
//! instructions" (Section 6.5) — three orders of magnitude less than
//! the ~10 billion instructions between hot-task migrations, which is
//! why the paper calls the penalty negligible. The model makes that
//! argument measurable rather than assumed.

use ebs_units::{Instructions, SimTime};
use ebs_workloads::ProgramState;

/// Cache-warmth parameters (from the simulation config).
#[derive(Clone, Copy, Debug)]
pub struct WarmthModel {
    /// IPC factor immediately after an intra-node migration.
    pub floor: f64,
    /// Instructions to full warmth, intra-node.
    pub ramp: u64,
    /// IPC factor immediately after a cross-node migration.
    pub floor_cross_node: f64,
    /// Instructions to full warmth, cross-node.
    pub ramp_cross_node: u64,
}

/// Runtime state the engine keeps for each live task.
#[derive(Clone, Debug)]
pub struct TaskRuntime {
    /// The program execution state.
    pub program: ProgramState,
    /// Migration count last seen by the engine (to detect new moves).
    pub migrations_seen: u64,
    /// Instructions executed since the last migration.
    instr_since_migration: Instructions,
    /// Whether the last migration crossed a node boundary.
    last_move_cross_node: bool,
    /// Whether the first timeslice has completed (placement table).
    pub first_slice_recorded: bool,
    /// The core class the task last executed on. A dispatch onto a
    /// different class triggers the estimator's cross-class profile
    /// refit (the same counter activity costs different energy there).
    pub last_class: usize,
    /// When (and in which load-curve phase) the task arrived, for
    /// open-workload tasks; `None` marks closed-workload tasks, which
    /// respawn instead of reporting a sojourn time.
    pub arrival: Option<(SimTime, &'static str)>,
}

impl TaskRuntime {
    /// Creates runtime state for a freshly spawned task. A new task
    /// starts cold (it has never touched any cache).
    pub fn new(program: ProgramState) -> Self {
        TaskRuntime {
            program,
            migrations_seen: 0,
            instr_since_migration: 0,
            last_move_cross_node: false,
            first_slice_recorded: false,
            last_class: 0,
            arrival: None,
        }
    }

    /// Notes that the task was migrated (the engine observed its
    /// migration counter advance); resets warmth.
    pub fn note_migration(&mut self, migrations: u64, cross_node: bool) {
        self.migrations_seen = migrations;
        self.instr_since_migration = 0;
        self.last_move_cross_node = cross_node;
    }

    /// Credits executed instructions towards cache warmth.
    pub fn add_warmth(&mut self, instructions: Instructions) {
        self.instr_since_migration = self.instr_since_migration.saturating_add(instructions);
    }

    /// Instructions still to execute before the cache-warmth ramp of
    /// the last migration completes (0 when fully warm). The
    /// variable-stride engine bounds a step by this so the warmth
    /// factor stays near-constant within one step.
    pub fn instructions_to_full_warmth(&self, model: &WarmthModel) -> u64 {
        let ramp = if self.last_move_cross_node {
            model.ramp_cross_node
        } else {
            model.ramp
        };
        ramp.saturating_sub(self.instr_since_migration)
    }

    /// The current IPC multiplier in `[floor, 1]`.
    pub fn warmth_factor(&self, model: &WarmthModel) -> f64 {
        let (floor, ramp) = if self.last_move_cross_node {
            (model.floor_cross_node, model.ramp_cross_node)
        } else {
            (model.floor, model.ramp)
        };
        if self.instr_since_migration >= ramp {
            return 1.0;
        }
        let progress = self.instr_since_migration as f64 / ramp as f64;
        floor + (1.0 - floor) * progress
    }
}

impl ebs_store::Snapshot for TaskRuntime {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        self.program.save(w);
        w.u64(self.migrations_seen);
        w.u64(self.instr_since_migration);
        w.bool(self.last_move_cross_node);
        w.bool(self.first_slice_recorded);
        // `last_class` is the one byte-layout change of snapshot format
        // v2; a writer targeting v1 (migration tests) omits it.
        if w.format_version() >= 2 {
            w.usize(self.last_class);
        }
        w.opt(&self.arrival, |w, &(t, phase)| {
            w.time(t);
            w.str(phase);
        });
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.program.restore(r)?;
        self.migrations_seen = r.u64()?;
        self.instr_since_migration = r.u64()?;
        self.last_move_cross_node = r.bool()?;
        self.first_slice_recorded = r.bool()?;
        // v1 images predate core classes; every v1 machine was
        // homogeneous, so class 0 is exact, not a guess.
        self.last_class = if r.format_version() >= 2 {
            r.usize()?
        } else {
            0
        };
        self.arrival = r.opt(|r| Ok((r.time()?, ebs_store::intern(&r.str()?))))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_units::SimDuration;
    use ebs_workloads::{Behavior, Phase, Program};

    fn model() -> WarmthModel {
        WarmthModel {
            floor: 0.55,
            ramp: 40_000_000,
            floor_cross_node: 0.40,
            ramp_cross_node: 90_000_000,
        }
    }

    fn runtime() -> TaskRuntime {
        let program = Program::new(
            "t",
            1,
            vec![Phase::new(
                "p",
                ebs_counters::EventRates::builder()
                    .uops_retired(1.0)
                    .build(),
                1.0,
                SimDuration::from_secs(1),
            )],
            Behavior::Steady,
            0.0,
        );
        TaskRuntime::new(ProgramState::new(program, 1))
    }

    #[test]
    fn new_task_starts_cold_and_warms_up() {
        let mut rt = runtime();
        let m = model();
        assert!((rt.warmth_factor(&m) - 0.55).abs() < 1e-12);
        rt.add_warmth(20_000_000);
        let half = rt.warmth_factor(&m);
        assert!((half - 0.775).abs() < 1e-9, "{half}");
        rt.add_warmth(20_000_000);
        assert_eq!(rt.warmth_factor(&m), 1.0);
        // Warmth saturates.
        rt.add_warmth(u64::MAX / 2);
        assert_eq!(rt.warmth_factor(&m), 1.0);
    }

    #[test]
    fn warmth_remainder_counts_down() {
        let mut rt = runtime();
        let m = model();
        assert_eq!(rt.instructions_to_full_warmth(&m), 40_000_000);
        rt.add_warmth(15_000_000);
        assert_eq!(rt.instructions_to_full_warmth(&m), 25_000_000);
        rt.add_warmth(100_000_000);
        assert_eq!(rt.instructions_to_full_warmth(&m), 0);
        // A cross-node move restarts the longer ramp.
        rt.note_migration(1, true);
        assert_eq!(rt.instructions_to_full_warmth(&m), 90_000_000);
    }

    #[test]
    fn migration_resets_warmth() {
        let mut rt = runtime();
        let m = model();
        rt.add_warmth(100_000_000);
        assert_eq!(rt.warmth_factor(&m), 1.0);
        rt.note_migration(1, false);
        assert!((rt.warmth_factor(&m) - 0.55).abs() < 1e-12);
        assert_eq!(rt.migrations_seen, 1);
    }

    #[test]
    fn cross_node_migration_is_costlier() {
        let mut intra = runtime();
        let mut cross = runtime();
        let m = model();
        intra.note_migration(1, false);
        cross.note_migration(1, true);
        assert!(cross.warmth_factor(&m) < intra.warmth_factor(&m));
        // And it takes longer to recover.
        intra.add_warmth(40_000_000);
        cross.add_warmth(40_000_000);
        assert_eq!(intra.warmth_factor(&m), 1.0);
        assert!(cross.warmth_factor(&m) < 1.0);
    }

    #[test]
    fn warmth_penalty_is_negligible_at_paper_scale() {
        // Section 6.5: a migration every ~10 s costs well under 1 % of
        // the ~10 billion instructions executed between moves.
        let m = model();
        let mut rt = runtime();
        rt.note_migration(1, false);
        // Integrate lost instructions over the ramp: average factor
        // (floor+1)/2 over `ramp` instructions of progress.
        let lost = (1.0 - (m.floor + 1.0) / 2.0) * m.ramp as f64;
        let between_migrations = 10e9;
        assert!(
            lost / between_migrations < 0.01,
            "warmup loss fraction {}",
            lost / between_migrations
        );
    }
}
