//! Traces and run reports.

use ebs_dvfs::PStateResidency;
use ebs_sched::TaskId;
use ebs_thermal::ThrottleStats;
use ebs_topology::CpuId;
use ebs_units::{Celsius, Hertz, Joules, SimDuration, SimTime, Watts};

/// Sampled per-CPU thermal power over time — the data behind the
/// paper's Figures 6 and 7.
#[derive(Clone, Debug, Default)]
pub struct ThermalTrace {
    /// One row per sample: time and the thermal power of every CPU.
    pub samples: Vec<(SimTime, Vec<Watts>)>,
}

impl ThermalTrace {
    /// Records one sample.
    pub fn push(&mut self, t: SimTime, values: Vec<Watts>) {
        self.samples.push((t, values));
    }

    /// The minimum and maximum thermal power over all CPUs in samples
    /// taken at or after `from` — the "width of the array of curves"
    /// the paper reads off Figures 6 and 7.
    pub fn band(&self, from: SimTime) -> Option<(Watts, Watts)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (t, row) in &self.samples {
            if *t < from {
                continue;
            }
            for w in row {
                lo = lo.min(w.0);
                hi = hi.max(w.0);
            }
        }
        if lo.is_finite() {
            Some((Watts(lo), Watts(hi)))
        } else {
            None
        }
    }

    /// The largest spread between the hottest and coolest CPU within
    /// any single sample at or after `from`.
    pub fn max_spread(&self, from: SimTime) -> Option<Watts> {
        self.samples
            .iter()
            .filter(|(t, _)| *t >= from)
            .map(|(_, row)| {
                let lo = row.iter().cloned().fold(Watts(f64::INFINITY), Watts::min);
                let hi = row
                    .iter()
                    .cloned()
                    .fold(Watts(f64::NEG_INFINITY), Watts::max);
                hi - lo
            })
            .max_by(|a, b| a.partial_cmp(b).expect("finite spreads"))
    }

    /// Fraction of samples (at or after `from`) in which at least one
    /// CPU exceeds `limit` — "some of the time some CPUs operate above
    /// the limit".
    pub fn fraction_any_above(&self, limit: Watts, from: SimTime) -> f64 {
        let rows: Vec<_> = self.samples.iter().filter(|(t, _)| *t >= from).collect();
        if rows.is_empty() {
            return 0.0;
        }
        let above = rows
            .iter()
            .filter(|(_, row)| row.iter().any(|&w| w > limit))
            .count();
        above as f64 / rows.len() as f64
    }

    /// Renders the trace as CSV (`time_s,cpu0,cpu1,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if let Some((_, first)) = self.samples.first() {
            out.push_str("time_s");
            for i in 0..first.len() {
                out.push_str(&format!(",cpu{i}"));
            }
            out.push('\n');
        }
        for (t, row) in &self.samples {
            out.push_str(&format!("{:.3}", t.as_secs_f64()));
            for w in row {
                out.push_str(&format!(",{:.3}", w.0));
            }
            out.push('\n');
        }
        out
    }
}

/// Which CPU a task ran on, recorded at every change — the data behind
/// the paper's Figure 9.
#[derive(Clone, Debug, Default)]
pub struct TaskCpuTrace {
    /// (time, task, cpu it moved to).
    pub events: Vec<(SimTime, TaskId, CpuId)>,
}

impl TaskCpuTrace {
    /// Records a placement change.
    pub fn push(&mut self, t: SimTime, task: TaskId, cpu: CpuId) {
        self.events.push((t, task, cpu));
    }

    /// The CPU visit sequence of one task.
    pub fn visits(&self, task: TaskId) -> Vec<(SimTime, CpuId)> {
        self.events
            .iter()
            .filter(|(_, id, _)| *id == task)
            .map(|&(t, _, c)| (t, c))
            .collect()
    }

    /// Renders the trace as CSV (`time_s,task,cpu`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,task,cpu\n");
        for (t, task, cpu) in &self.events {
            out.push_str(&format!("{:.3},{},{}\n", t.as_secs_f64(), task.0, cpu.0));
        }
        out
    }
}

/// Sojourn-time (arrival to completion) statistics of an open
/// workload's tasks, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Completed tasks the statistics cover.
    pub count: u64,
    /// Mean sojourn time.
    pub mean_s: f64,
    /// Median sojourn time.
    pub p50_s: f64,
    /// 95th-percentile sojourn time.
    pub p95_s: f64,
    /// 99th-percentile sojourn time.
    pub p99_s: f64,
    /// Worst sojourn time.
    pub max_s: f64,
}

impl LatencyStats {
    /// Computes the statistics from raw samples (empty input yields
    /// the all-zero default). Percentiles use the nearest-rank method.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let rank = |q: f64| samples[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        LatencyStats {
            count: n as u64,
            mean_s: samples.iter().sum::<f64>() / n as f64,
            p50_s: rank(0.50),
            p95_s: rank(0.95),
            p99_s: rank(0.99),
            max_s: samples[n - 1],
        }
    }

    /// NaN-safe bit-equality: every float compares via its bit
    /// pattern, so two identical runs agree even where a metric is
    /// NaN (a zero-completion cell), which `==` would call unequal.
    pub fn bit_eq(&self, other: &LatencyStats) -> bool {
        self.count == other.count
            && self.mean_s.to_bits() == other.mean_s.to_bits()
            && self.p50_s.to_bits() == other.p50_s.to_bits()
            && self.p95_s.to_bits() == other.p95_s.to_bits()
            && self.p99_s.to_bits() == other.p99_s.to_bits()
            && self.max_s.to_bits() == other.max_s.to_bits()
    }
}

/// Summary of a finished simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Simulated wall time.
    pub duration: SimDuration,
    /// Engine steps taken. The fixed-tick core takes
    /// `duration / tick`; the variable-stride core takes fewer —
    /// `duration / engine_steps` is the realised mean stride.
    pub engine_steps: u64,
    /// Total task migrations.
    pub migrations: u64,
    /// Migrations by reason, in [`ebs_sched::MigrationReason::ALL`]
    /// order (load, energy, hot-task, exchange).
    pub migrations_by_reason: [u64; 4],
    /// Context switches.
    pub context_switches: u64,
    /// Tasks that ran to completion.
    pub completions: u64,
    /// Open-workload tasks that arrived during the run (0 for closed
    /// workloads).
    pub arrivals: u64,
    /// Sojourn-time statistics over every completed open-workload
    /// task (all-zero for closed workloads).
    pub latency: LatencyStats,
    /// Sojourn-time statistics split by the load-curve phase the task
    /// *arrived* in, in the curve's canonical phase order (empty for
    /// closed workloads and for phases without completions).
    pub phase_latencies: Vec<(String, LatencyStats)>,
    /// Completions per binary id.
    pub completions_by_binary: Vec<(u64, u64)>,
    /// Total instructions retired — the throughput measure for
    /// non-terminating workloads.
    pub instructions_retired: u64,
    /// Instructions per simulated second.
    pub throughput_ips: f64,
    /// Fraction of time each logical CPU spent throttled (Table 3).
    pub throttled_fraction: Vec<f64>,
    /// Average throttled fraction over all CPUs.
    pub avg_throttled_fraction: f64,
    /// Per-package throttle statistics (engagements, throttled and
    /// observed time) straight from the controllers.
    pub throttle_stats: Vec<ThrottleStats>,
    /// P-state residency aggregated over all packages, fastest state
    /// first (one entry per table state; a single entry means DVFS was
    /// off and the clock pinned at nominal).
    pub pstate_residency: Vec<PStateResidency>,
    /// Average fraction of time the packages ran below the nominal
    /// clock — DVFS's analogue of the throttled fraction.
    pub avg_scaled_fraction: f64,
    /// Time-weighted mean core clock over the run, averaged over
    /// packages.
    pub mean_frequency: Hertz,
    /// Total P-state transitions performed by the governors.
    pub dvfs_transitions: u64,
    /// Governor decisions taken (a decision may keep the state). The
    /// fixed cadence pays one per package per interval; event-driven
    /// governors only decide when a hold band is escaped, so this is
    /// the direct measure of the wake-ups the trigger API removes.
    pub dvfs_decisions: u64,
    /// Hottest package temperature seen during the run.
    pub max_package_temp: Celsius,
    /// Ground-truth energy the machine physically dissipated.
    pub true_energy: Joules,
    /// Energy the counter-based estimator accounted for — comparing
    /// the two gives the end-to-end estimation error (paper: <10 %).
    pub estimated_energy: Joules,
}

impl SimReport {
    /// Relative end-to-end energy estimation error, `|est - true| /
    /// true` (zero for an empty run).
    pub fn estimation_error(&self) -> f64 {
        if self.true_energy.0 == 0.0 {
            0.0
        } else {
            (self.estimated_energy.0 - self.true_energy.0).abs() / self.true_energy.0
        }
    }

    /// Relative throughput gain of `self` over a baseline run, in
    /// instructions per second (the paper's "increase in throughput").
    pub fn throughput_gain_over(&self, baseline: &SimReport) -> f64 {
        if baseline.throughput_ips == 0.0 {
            0.0
        } else {
            self.throughput_ips / baseline.throughput_ips - 1.0
        }
    }

    /// Relative throughput *loss* versus a (faster) baseline, clamped
    /// at zero — the penalty metric of the DVFS-vs-`hlt` comparison.
    pub fn throughput_loss_vs(&self, baseline: &SimReport) -> f64 {
        (-self.throughput_gain_over(baseline)).max(0.0)
    }

    /// True energy spent per retired instruction, in nanojoules — the
    /// efficiency metric frequency scaling moves and `hlt` cannot.
    pub fn nj_per_instruction(&self) -> f64 {
        if self.instructions_retired == 0 {
            0.0
        } else {
            self.true_energy.0 * 1e9 / self.instructions_retired as f64
        }
    }

    /// NaN-safe bit-equality over every field: integers and durations
    /// compare exactly, floats via their bit patterns. This is the
    /// comparison the bit-identity gates want — stricter than `==` on
    /// signed zeros, yet true where both sides hold the same NaN (a
    /// zero-completion cell's percentiles), which `==` would fail.
    pub fn bit_eq(&self, other: &SimReport) -> bool {
        let f = |a: f64, b: f64| a.to_bits() == b.to_bits();
        self.duration == other.duration
            && self.engine_steps == other.engine_steps
            && self.migrations == other.migrations
            && self.migrations_by_reason == other.migrations_by_reason
            && self.context_switches == other.context_switches
            && self.completions == other.completions
            && self.arrivals == other.arrivals
            && self.latency.bit_eq(&other.latency)
            && self.phase_latencies.len() == other.phase_latencies.len()
            && self
                .phase_latencies
                .iter()
                .zip(&other.phase_latencies)
                .all(|((an, a), (bn, b))| an == bn && a.bit_eq(b))
            && self.completions_by_binary == other.completions_by_binary
            && self.instructions_retired == other.instructions_retired
            && f(self.throughput_ips, other.throughput_ips)
            && self.throttled_fraction.len() == other.throttled_fraction.len()
            && self
                .throttled_fraction
                .iter()
                .zip(&other.throttled_fraction)
                .all(|(&a, &b)| f(a, b))
            && f(self.avg_throttled_fraction, other.avg_throttled_fraction)
            && self.throttle_stats == other.throttle_stats
            && self.pstate_residency.len() == other.pstate_residency.len()
            && self
                .pstate_residency
                .iter()
                .zip(&other.pstate_residency)
                .all(|(a, b)| {
                    a.frequency.0.to_bits() == b.frequency.0.to_bits()
                        && a.time == b.time
                        && f(a.fraction, b.fraction)
                })
            && f(self.avg_scaled_fraction, other.avg_scaled_fraction)
            && f(self.mean_frequency.0, other.mean_frequency.0)
            && self.dvfs_transitions == other.dvfs_transitions
            && self.dvfs_decisions == other.dvfs_decisions
            && f(self.max_package_temp.0, other.max_package_temp.0)
            && f(self.true_energy.0, other.true_energy.0)
            && f(self.estimated_energy.0, other.estimated_energy.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ThermalTrace {
        let mut t = ThermalTrace::default();
        t.push(SimTime::from_secs(0), vec![Watts(10.0), Watts(20.0)]);
        t.push(SimTime::from_secs(1), vec![Watts(30.0), Watts(55.0)]);
        t.push(SimTime::from_secs(2), vec![Watts(35.0), Watts(45.0)]);
        t
    }

    #[test]
    fn band_over_window() {
        let t = trace();
        let (lo, hi) = t.band(SimTime::ZERO).unwrap();
        assert_eq!((lo, hi), (Watts(10.0), Watts(55.0)));
        let (lo, hi) = t.band(SimTime::from_secs(2)).unwrap();
        assert_eq!((lo, hi), (Watts(35.0), Watts(45.0)));
        assert!(t.band(SimTime::from_secs(3)).is_none());
    }

    #[test]
    fn max_spread_is_within_sample() {
        let t = trace();
        assert_eq!(t.max_spread(SimTime::ZERO), Some(Watts(25.0)));
        assert_eq!(t.max_spread(SimTime::from_secs(2)), Some(Watts(10.0)));
    }

    #[test]
    fn fraction_above_limit() {
        let t = trace();
        let f = t.fraction_any_above(Watts(50.0), SimTime::ZERO);
        assert!((f - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.fraction_any_above(Watts(100.0), SimTime::ZERO), 0.0);
    }

    #[test]
    fn thermal_csv_shape() {
        let csv = trace().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,cpu0,cpu1");
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("0.000,10.000,20.000"));
    }

    #[test]
    fn task_trace_visits() {
        let mut t = TaskCpuTrace::default();
        t.push(SimTime::from_secs(0), TaskId(0), CpuId(0));
        t.push(SimTime::from_secs(10), TaskId(0), CpuId(1));
        t.push(SimTime::from_secs(11), TaskId(1), CpuId(5));
        t.push(SimTime::from_secs(20), TaskId(0), CpuId(2));
        let visits = t.visits(TaskId(0));
        assert_eq!(visits.len(), 3);
        assert_eq!(visits[1], (SimTime::from_secs(10), CpuId(1)));
        assert!(t.to_csv().contains("11.000,1,5"));
    }

    #[test]
    fn latency_stats_percentiles() {
        // 1..=100 seconds: nearest-rank percentiles are exact.
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencyStats::from_samples(samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_s, 50.0);
        assert_eq!(s.p95_s, 95.0);
        assert_eq!(s.p99_s, 99.0);
        assert_eq!(s.max_s, 100.0);
        assert!((s.mean_s - 50.5).abs() < 1e-12);
        // Unsorted input is handled; tiny inputs clamp sanely.
        let s = LatencyStats::from_samples(vec![3.0, 1.0]);
        assert_eq!((s.p50_s, s.p99_s, s.max_s), (1.0, 3.0, 3.0));
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
    }

    #[test]
    fn ratio_metrics_guard_degenerate_runs() {
        // A zero-length / fully-throttled run retires nothing and may
        // dissipate nothing; every ratio metric must report 0 rather
        // than NaN or infinity.
        let empty = SimReport {
            duration: SimDuration::ZERO,
            engine_steps: 0,
            migrations: 0,
            migrations_by_reason: [0; 4],
            context_switches: 0,
            completions: 0,
            arrivals: 0,
            latency: LatencyStats::default(),
            phase_latencies: vec![],
            completions_by_binary: vec![],
            instructions_retired: 0,
            throughput_ips: 0.0,
            throttled_fraction: vec![],
            avg_throttled_fraction: 0.0,
            throttle_stats: vec![],
            pstate_residency: vec![],
            avg_scaled_fraction: 0.0,
            mean_frequency: Hertz::from_ghz(2.2),
            dvfs_transitions: 0,
            dvfs_decisions: 0,
            max_package_temp: Celsius(22.0),
            true_energy: Joules::ZERO,
            estimated_energy: Joules::ZERO,
        };
        assert_eq!(empty.nj_per_instruction(), 0.0);
        assert_eq!(empty.estimation_error(), 0.0);
        // Gain/loss against a zero-throughput baseline (and of a
        // zero-throughput run against a real one) stay finite.
        assert_eq!(empty.throughput_gain_over(&empty), 0.0);
        assert_eq!(empty.throughput_loss_vs(&empty), 0.0);
        let mut real = empty.clone();
        real.throughput_ips = 100.0;
        real.instructions_retired = 1;
        real.true_energy = Joules(5.0);
        assert_eq!(real.throughput_gain_over(&empty), 0.0);
        assert_eq!(real.throughput_loss_vs(&empty), 0.0);
        assert_eq!(empty.throughput_loss_vs(&real), 1.0);
        for v in [
            empty.nj_per_instruction(),
            empty.estimation_error(),
            real.throughput_gain_over(&empty),
            empty.throughput_gain_over(&real),
        ] {
            assert!(v.is_finite(), "metric not finite: {v}");
        }
    }

    #[test]
    fn throughput_gain() {
        let mk = |ips: f64| SimReport {
            duration: SimDuration::from_secs(1),
            engine_steps: 1000,
            migrations: 0,
            migrations_by_reason: [0; 4],
            context_switches: 0,
            completions: 0,
            arrivals: 0,
            latency: LatencyStats::default(),
            phase_latencies: vec![],
            completions_by_binary: vec![],
            instructions_retired: 0,
            throughput_ips: ips,
            throttled_fraction: vec![],
            avg_throttled_fraction: 0.0,
            throttle_stats: vec![],
            pstate_residency: vec![],
            avg_scaled_fraction: 0.0,
            mean_frequency: Hertz::from_ghz(2.2),
            dvfs_transitions: 0,
            dvfs_decisions: 0,
            max_package_temp: Celsius(22.0),
            true_energy: Joules(100.0),
            estimated_energy: Joules(95.0),
        };
        let base = mk(100.0);
        let better = mk(105.0);
        assert!((better.throughput_gain_over(&base) - 0.05).abs() < 1e-12);
        assert_eq!(better.throughput_gain_over(&mk(0.0)), 0.0);
        // Loss is the clamped negative gain.
        assert!((base.throughput_loss_vs(&better) - 5.0 / 105.0).abs() < 1e-12);
        assert_eq!(better.throughput_loss_vs(&base), 0.0);
        // No instructions -> no per-instruction energy.
        assert_eq!(base.nj_per_instruction(), 0.0);
        let mut r = mk(1.0);
        r.instructions_retired = 50_000_000_000;
        assert!((r.nj_per_instruction() - 2.0).abs() < 1e-12);
    }
}
