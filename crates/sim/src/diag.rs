//! Trace-diff debugging for the equivalence gates.
//!
//! When two engine configurations that should agree drift apart, an
//! aggregate-report mismatch says *that* they diverged; the event
//! trace says *where*. These helpers re-run both cells with event
//! tracing forced on and name the first divergent event — instant,
//! CPU, kind — which is usually enough to localise the bug to one
//! subsystem.
//!
//! Tracing never feeds back into scheduling or the RNG, so the traced
//! re-run reproduces the original runs exactly (per the bit-identity
//! guarantees tested in `tests/trace.rs`).

use crate::config::SimConfig;
use crate::engine::Simulation;
use crate::parallel::ParallelSimulation;
use crate::trace::SimReport;
use ebs_trace::{first_divergence, TraceEvent};
use ebs_units::SimDuration;

/// Byte-level fingerprint of a report for assertion messages (Rust's
/// float Debug is the shortest round-trip representation, so string
/// equality is value bit-equality — except under NaN, which is why
/// the equality check itself is [`SimReport::bit_eq`], not this
/// string). Shared by every bit-identity suite so the gates render
/// mismatches the same way.
pub fn report_fingerprint(r: &SimReport) -> String {
    format!("{r:?}")
}

/// Relative deviation of two metrics, shared by the tolerance suites.
/// Non-finite input yields infinity so a NaN metric can never slip
/// through a `dev < tol` comparison as a pass.
pub fn rel_dev(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return f64::INFINITY;
    }
    if a == 0.0 && b == 0.0 {
        0.0
    } else {
        (a - b).abs() / a.abs().max(b.abs())
    }
}

/// Runs `cfg` for `duration` with event tracing forced on (`setup`
/// spawns the workload) and returns the recorded event stream.
pub fn traced_events(
    cfg: SimConfig,
    duration: SimDuration,
    setup: impl FnOnce(&mut Simulation),
) -> Vec<TraceEvent> {
    let mut sim = Simulation::new(cfg.trace_events(true));
    setup(&mut sim);
    sim.run_for(duration);
    sim.events().map(|e| e.to_vec()).unwrap_or_default()
}

/// Replays two configurations over the same workload and summarises
/// where their event streams first disagree — the gate-failure
/// diagnostic. Returns a one-line human-readable verdict.
///
/// `setup` must be deterministic (it runs once per cell); spawning the
/// same mix into both simulations qualifies.
pub fn stride_divergence(
    left: SimConfig,
    right: SimConfig,
    duration: SimDuration,
    mut setup: impl FnMut(&mut Simulation),
) -> String {
    let a = traced_events(left, duration, &mut setup);
    let b = traced_events(right, duration, &mut setup);
    match first_divergence(&a, &b) {
        None => format!(
            "event streams identical ({} events) — divergence is outside the traced event set",
            a.len()
        ),
        Some(d) => format!("first divergent event — {d}"),
    }
}

/// Replays a strided cell against the partitioned engine built from
/// `parallel_cfg` and names the first divergent event — the
/// diagnostic behind the `parallel(1)` bit-identity gate. The
/// partitioned engine's merged, id-remapped stream is compared
/// against the sequential stream directly (with one worker the
/// partition *is* the whole machine, so no remap happens).
pub fn parallel_divergence(
    sequential: SimConfig,
    parallel_cfg: SimConfig,
    duration: SimDuration,
    mut setup: impl FnMut(&mut Simulation),
    mut parallel_setup: impl FnMut(&mut ParallelSimulation),
) -> String {
    let a = traced_events(sequential, duration, &mut setup);
    let mut sim = ParallelSimulation::new(parallel_cfg.trace_events(true));
    parallel_setup(&mut sim);
    sim.run_for(duration);
    let b = sim.events().unwrap_or_default();
    match first_divergence(&a, &b) {
        None => format!(
            "event streams identical ({} events) — divergence is outside the traced event set",
            a.len()
        ),
        Some(d) => format!("first divergent event — {d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workloads::catalog;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::xseries445().smt(false).seed(seed)
    }

    #[test]
    fn identical_cells_report_no_divergence() {
        let text = stride_divergence(cfg(3), cfg(3), SimDuration::from_millis(300), |sim| {
            sim.spawn_mix(&[catalog::bitcnts()], 2);
        });
        assert!(text.contains("identical"), "{text}");
    }

    #[test]
    fn different_seeds_name_the_first_divergent_event() {
        // `bash` blocks with seed-driven sleeps, so different seeds
        // diverge within the first few slices.
        let text = stride_divergence(cfg(3), cfg(4), SimDuration::from_secs(1), |sim| {
            sim.spawn_mix(&[catalog::bash()], 2);
        });
        assert!(text.contains("first divergent event"), "{text}");
        assert!(text.contains("[t+"), "{text}");
    }
}
