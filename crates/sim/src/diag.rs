//! Trace-diff debugging for the equivalence gates.
//!
//! When two engine configurations that should agree drift apart, an
//! aggregate-report mismatch says *that* they diverged; the event
//! trace says *where*. These helpers re-run both cells with event
//! tracing forced on and name the first divergent event — instant,
//! CPU, kind — which is usually enough to localise the bug to one
//! subsystem.
//!
//! Every cell runs through [`build_engine`], so one code path serves
//! any pair of cores — fixed-tick vs strided, strided vs partitioned —
//! instead of a per-core dispatch per comparison.
//!
//! Tracing never feeds back into scheduling or the RNG, so the traced
//! re-run reproduces the original runs exactly (per the bit-identity
//! guarantees tested in `tests/trace.rs`).

use crate::api::{build_engine, SimEngine};
use crate::config::SimConfig;
use crate::trace::SimReport;
use ebs_trace::{first_divergence, TraceEvent};
use ebs_units::SimDuration;

/// Byte-level fingerprint of a report for assertion messages (Rust's
/// float Debug is the shortest round-trip representation, so string
/// equality is value bit-equality — except under NaN, which is why
/// the equality check itself is [`SimReport::bit_eq`], not this
/// string). Shared by every bit-identity suite so the gates render
/// mismatches the same way.
pub fn report_fingerprint(r: &SimReport) -> String {
    format!("{r:?}")
}

/// Relative deviation of two metrics, shared by the tolerance suites.
/// Non-finite input yields infinity so a NaN metric can never slip
/// through a `dev < tol` comparison as a pass.
pub fn rel_dev(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return f64::INFINITY;
    }
    if a == 0.0 && b == 0.0 {
        0.0
    } else {
        (a - b).abs() / a.abs().max(b.abs())
    }
}

/// Runs `cfg` for `duration` with event tracing forced on (`setup`
/// spawns the workload) and returns the recorded event stream, from
/// whichever engine core the config selects.
pub fn traced_events(
    cfg: SimConfig,
    duration: SimDuration,
    setup: impl FnOnce(&mut dyn SimEngine),
) -> Vec<TraceEvent> {
    let mut sim = build_engine(cfg.trace_events(true));
    setup(sim.as_mut());
    sim.run_for(duration);
    sim.event_stream().unwrap_or_default()
}

/// The one-line verdict both divergence helpers render: where two
/// traced event streams first disagree, or that they never do.
pub fn divergence_verdict(a: &[TraceEvent], b: &[TraceEvent]) -> String {
    match first_divergence(a, b) {
        None => format!(
            "event streams identical ({} events) — divergence is outside the traced event set",
            a.len()
        ),
        Some(d) => format!("first divergent event — {d}"),
    }
}

/// Replays two configurations over the same workload and summarises
/// where their event streams first disagree — the gate-failure
/// diagnostic. Returns a one-line human-readable verdict.
///
/// `setup` must be deterministic (it runs once per cell); spawning the
/// same mix into both simulations qualifies. Either config may select
/// any engine core — the partitioned engine's merged, id-remapped
/// stream compares directly against a sequential stream.
pub fn stride_divergence(
    left: SimConfig,
    right: SimConfig,
    duration: SimDuration,
    mut setup: impl FnMut(&mut dyn SimEngine),
) -> String {
    let a = traced_events(left, duration, &mut setup);
    let b = traced_events(right, duration, &mut setup);
    divergence_verdict(&a, &b)
}

/// Replays a sequential cell against the partitioned engine built from
/// `parallel_cfg` and names the first divergent event — the diagnostic
/// behind the `parallel(1)` bit-identity gate. Since both cores hang
/// off [`SimEngine`], this is [`stride_divergence`] under a name that
/// says which gate failed.
pub fn parallel_divergence(
    sequential: SimConfig,
    parallel_cfg: SimConfig,
    duration: SimDuration,
    setup: impl FnMut(&mut dyn SimEngine),
) -> String {
    stride_divergence(sequential, parallel_cfg, duration, setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workloads::catalog;

    fn cfg(seed: u64) -> SimConfig {
        SimConfig::xseries445().smt(false).seed(seed)
    }

    #[test]
    fn identical_cells_report_no_divergence() {
        let text = stride_divergence(cfg(3), cfg(3), SimDuration::from_millis(300), |sim| {
            sim.spawn_mix(&[catalog::bitcnts()], 2);
        });
        assert!(text.contains("identical"), "{text}");
    }

    #[test]
    fn different_seeds_name_the_first_divergent_event() {
        // `bash` blocks with seed-driven sleeps, so different seeds
        // diverge within the first few slices.
        let text = stride_divergence(cfg(3), cfg(4), SimDuration::from_secs(1), |sim| {
            sim.spawn_mix(&[catalog::bash()], 2);
        });
        assert!(text.contains("first divergent event"), "{text}");
        assert!(text.contains("[t+"), "{text}");
    }

    #[test]
    fn parallel_divergence_drives_both_cores() {
        // The parallel(1) partition is the strided core, so against
        // `strided()` the streams must be identical.
        let text = parallel_divergence(
            cfg(3).strided(),
            cfg(3).parallel(1),
            SimDuration::from_millis(300),
            |sim| {
                sim.spawn_mix(&[catalog::aluadd()], 2);
            },
        );
        assert!(text.contains("identical"), "{text}");
    }
}
