//! Deterministic discrete-time simulation of the paper's testbed.
//!
//! The paper evaluates energy-aware scheduling on an IBM xSeries 445:
//! two NUMA nodes of four 2.2 GHz Pentium 4 Xeons, each two-way
//! multithreaded. This crate provides that machine in software —
//! counter-generating CPUs, RC thermal dynamics per package,
//! `hlt`-style throttling, SMT contention, and cache-affinity costs —
//! and drives the full scheduling stack over it — in fixed 1 ms ticks
//! or with the variable-stride (event-driven) core selected by
//! `SimConfig::strided` (see the engine docs for the equivalence
//! guarantees):
//!
//! - execution generates events into per-CPU [`ebs_counters::CounterBank`]s;
//! - the [`ebs_core::EnergyEstimator`] converts them to energy on every
//!   task switch and timeslice end, updating task profiles and per-CPU
//!   thermal power;
//! - the configured policy (baseline load balancing, or the merged
//!   energy-aware balancer plus hot task migration plus energy-aware
//!   placement) moves tasks around;
//! - the throttle controller halts CPUs whose thermal power exceeds
//!   their maximum power.
//!
//! Everything is reproducible from the seed in [`SimConfig`].
//!
//! # Examples
//!
//! ```
//! use ebs_sim::{SimConfig, Simulation};
//! use ebs_units::SimDuration;
//! use ebs_workloads::section61_mix;
//!
//! let cfg = SimConfig::xseries445()
//!     .smt(false)
//!     .energy_aware(true)
//!     .seed(7);
//! let mut sim = Simulation::new(cfg);
//! sim.spawn_mix(&section61_mix(), 1);
//! sim.run_for(SimDuration::from_secs(2));
//! assert!(sim.report().instructions_retired > 0);
//! ```

mod api;
mod classes;
mod config;
mod diag;
mod engine;
mod machine;
mod parallel;
mod runner;
mod runtime;
mod trace;

pub use api::{build_engine, SimEngine};
pub use classes::{ClassCatalog, CoreClass, DomainMap};
pub use config::{DvfsSpec, MaxPowerSpec, SimConfig};
pub use diag::{
    divergence_verdict, parallel_divergence, rel_dev, report_fingerprint, stride_divergence,
    traced_events,
};
pub use engine::{RoutedArrival, Simulation};
pub use machine::PhysicalMachine;
pub use parallel::{HandoffRecord, ParallelSimulation};
pub use runner::{
    default_workers, map_parallel, mean, run_configs, run_configs_with_workers, run_one, run_seeds,
};
pub use runtime::TaskRuntime;
pub use trace::{LatencyStats, SimReport, TaskCpuTrace, ThermalTrace};
