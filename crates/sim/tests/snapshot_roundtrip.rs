//! Checkpoint/restore round-trip suite.
//!
//! The contract of `ebs-store` snapshots: checkpointing at a
//! `run_for` boundary, restoring into a freshly built engine of the
//! same config, and running to the end is **bit-identical** to
//! running through the boundary uninterrupted — same end-of-run state
//! hash, same report, on both the strided and the parallel(4) engine
//! cores, across topology presets × governors × seeds.
//!
//! The boundary matters: a `run_for` horizon caps the last stride and
//! drains due arrivals, so the uninterrupted leg pauses at the same
//! instant (two `run_for` calls on one engine) rather than running
//! straight past it — exactly the structure of the fork-sweep's
//! warm-up/measurement split.

use ebs_dvfs::GovernorKind;
use ebs_sim::{
    report_fingerprint, MaxPowerSpec, ParallelSimulation, SimConfig, SimEngine, Simulation,
};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};
use proptest::prelude::*;

fn preset(idx: usize) -> TopologyPreset {
    [
        TopologyPreset::Dual,
        TopologyPreset::XSeries445 { smt: false },
        TopologyPreset::XSeries445 { smt: true },
        TopologyPreset::Numa16,
    ][idx]
}

/// The enforcement/governor axis: `hlt` throttling, thermal-aware
/// DVFS, and utilization-driven DVFS.
fn apply_governor(cfg: SimConfig, idx: usize) -> SimConfig {
    match idx {
        0 => cfg.throttling(true),
        1 => cfg
            .throttling(false)
            .dvfs_governor(GovernorKind::ThermalAware),
        _ => cfg.throttling(false).dvfs_governor(GovernorKind::OnDemand),
    }
}

fn open_cfg(preset_idx: usize, governor_idx: usize, seed: u64) -> SimConfig {
    let shape = preset(preset_idx).builder();
    let workload = OpenWorkload::new(
        vec![catalog::bitcnts(), catalog::memrw(), catalog::aluadd()],
        1.2 * shape.n_cores() as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(4),
        floor: 0.3,
    })
    .service_work(200_000_000, 500_000_000);
    let cfg = SimConfig::with_topology(shape)
        .seed(seed)
        .respawn(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(45.0)))
        .open_workload(workload)
        .strided();
    apply_governor(cfg, governor_idx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Strided core: checkpoint at the half-way boundary, restore
    /// into a fresh engine, run to the end — bit-identical to the
    /// uninterrupted engine.
    #[test]
    fn strided_checkpoint_restore_is_lossless(
        preset_idx in 0usize..4,
        governor_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let half = SimDuration::from_secs(2);
        let cfg = open_cfg(preset_idx, governor_idx, seed);

        let mut uninterrupted = Simulation::new(cfg.clone());
        uninterrupted.run_for(half);
        let image = uninterrupted.snapshot();
        prop_assert_eq!(image.hash(), uninterrupted.state_hash());

        let mut resumed = Simulation::from_snapshot(cfg, &image)
            .expect("restore into a same-config engine");
        prop_assert_eq!(resumed.state_hash(), uninterrupted.state_hash());

        uninterrupted.run_for(half);
        resumed.run_for(half);
        prop_assert_eq!(
            resumed.state_hash(),
            uninterrupted.state_hash(),
            "end-of-run state hashes diverged"
        );
        let (a, b) = (uninterrupted.report(), resumed.report());
        prop_assert!(
            a.bit_eq(&b),
            "reports diverged:\n{}\nvs\n{}",
            report_fingerprint(&a),
            report_fingerprint(&b)
        );
    }

    /// Parallel(4) core: the whole partitioned state — every shard,
    /// the synchronizer's arrival cursor, the handoff log — survives
    /// the round trip losslessly.
    #[test]
    fn parallel4_checkpoint_restore_is_lossless(
        preset_idx in 0usize..4,
        governor_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let half = SimDuration::from_secs(2);
        let cfg = open_cfg(preset_idx, governor_idx, seed).parallel(4);

        let mut uninterrupted = ParallelSimulation::new(cfg.clone());
        uninterrupted.run_for(half);
        let image = uninterrupted.snapshot();

        let mut resumed = ParallelSimulation::from_snapshot(cfg, &image)
            .expect("restore into a same-config engine");
        prop_assert_eq!(resumed.state_hash(), uninterrupted.state_hash());

        uninterrupted.run_for(half);
        resumed.run_for(half);
        prop_assert_eq!(
            resumed.state_hash(),
            uninterrupted.state_hash(),
            "end-of-run state hashes diverged"
        );
        let (a, b) = (uninterrupted.report(), resumed.report());
        prop_assert!(
            a.bit_eq(&b),
            "reports diverged:\n{}\nvs\n{}",
            report_fingerprint(&a),
            report_fingerprint(&b)
        );
        prop_assert_eq!(uninterrupted.handoff_log(), resumed.handoff_log());
    }
}

/// A snapshot must refuse to restore into an engine of a different
/// shape instead of silently corrupting it.
#[test]
fn shape_mismatch_is_rejected() {
    let mut small = Simulation::new(open_cfg(0, 0, 1));
    small.run_for(SimDuration::from_millis(200));
    let image = small.snapshot();
    let err = Simulation::from_snapshot(open_cfg(3, 0, 1), &image);
    assert!(err.is_err(), "16-package engine accepted a 2-package image");
}

/// Snapshot-format migration: a genuine v1 image — written without
/// the per-task core-class tag that format v2 added — restores into
/// the v2 store through the standard fork entry point. Every v1
/// machine was homogeneous (class 0 everywhere), so the migrated
/// state is *bit-identical* to the v2 snapshot of the same engine,
/// and it re-snapshots as v2.
#[test]
fn v1_image_migrates_into_the_v2_store() {
    use ebs_store::Snapshot as _;
    let cfg = open_cfg(1, 2, 7);
    let mut warm = Simulation::new(cfg.clone());
    warm.run_for(SimDuration::from_secs(2));

    let mut w = ebs_store::StateWriter::versioned(1);
    warm.save(&mut w);
    let v1 = w.finish();
    assert_eq!(v1.version(), 1);
    assert!(
        matches!(
            v1.open(),
            Err(ebs_store::StoreError::Version { found: 1, .. })
        ),
        "strict open must refuse a v1 image"
    );

    let mut resumed = Simulation::from_snapshot(cfg, &v1).expect("v1 image restores");
    assert_eq!(
        resumed.state_hash(),
        warm.state_hash(),
        "migrated state must be bit-identical to the v2 snapshot"
    );
    assert_eq!(resumed.snapshot().version(), ebs_store::FORMAT_VERSION);

    warm.run_for(SimDuration::from_secs(2));
    resumed.run_for(SimDuration::from_secs(2));
    assert_eq!(resumed.state_hash(), warm.state_hash());
    assert!(warm.report().bit_eq(&resumed.report()));
}

/// Fork semantics across *policies*: one warm-up snapshot restored
/// into differently configured cells is deterministic — every fork of
/// the same image under the same cell config lands in the same state.
#[test]
fn cross_policy_forks_are_deterministic() {
    let warmup_cfg = open_cfg(1, 0, 42);
    let mut warmup = Simulation::new(warmup_cfg);
    warmup.run_for(SimDuration::from_secs(2));
    let image = warmup.snapshot();
    for governor_idx in 0..3 {
        let cell = || {
            let cfg = open_cfg(1, governor_idx, 42);
            let mut sim = Simulation::from_snapshot(cfg, &image).expect("fork");
            sim.run_for(SimDuration::from_secs(2));
            sim.state_hash()
        };
        assert_eq!(
            cell(),
            cell(),
            "governor {governor_idx} fork not deterministic"
        );
    }
}
