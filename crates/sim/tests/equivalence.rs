//! Equivalence suite for the variable-stride engine core.
//!
//! Two layers of guarantee:
//!
//! 1. **Bit-identity at a one-tick cap**: with `max_stride == tick`
//!    the strided core must produce byte-for-byte the same reports as
//!    the fixed-tick core (both execute the same `step_span`; the
//!    stride computation may read state but never change behaviour).
//!    Checked over the exp_table2 and exp_dvfs experiment shapes.
//! 2. **Tolerance at the default cap**: with real strides the headline
//!    metrics — energy, temperature, throughput, latency percentiles —
//!    must agree with fixed-tick within tight bounds, across topology
//!    presets and load curves, and stay deterministic per seed.

use ebs_dvfs::GovernorKind;
use ebs_sim::{
    rel_dev as rel, report_fingerprint as fingerprint, stride_divergence, MaxPowerSpec, SimConfig,
    SimEngine, SimReport, Simulation,
};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, section61_mix, LoadCurve, OpenWorkload};
use proptest::prelude::*;

/// Runs `cfg` for `duration`, spawning `mix` copies of the section 6.1
/// mix first (0 = open/empty runs).
fn run(cfg: SimConfig, mix: usize, duration: SimDuration) -> SimReport {
    let mut sim = Simulation::new(cfg);
    if mix > 0 {
        sim.spawn_mix(&section61_mix(), mix);
    }
    sim.run_for(duration);
    sim.report()
}

#[test]
fn table2_shape_is_bit_identical_at_one_tick_cap() {
    // The exp_table2 setup: each program solo, throttling off.
    for program in section61_mix() {
        let cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .respawn(false)
            .seed(7);
        let duration = SimDuration::from_secs(5);
        let run_mode = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            sim.record_slice_powers();
            let id = sim.spawn_program(&program);
            sim.run_for(duration);
            let slices = sim
                .slice_powers()
                .and_then(|log| log.get(&id).cloned())
                .unwrap_or_default();
            // The state hash covers every serialized field — a far
            // sharper equality oracle than the aggregate report.
            (
                fingerprint(&sim.report()),
                format!("{slices:?}"),
                sim.state_hash(),
            )
        };
        let fixed = run_mode(cfg.clone());
        let strided = run_mode(cfg.clone().max_stride(SimDuration::from_millis(1)));
        if fixed != strided {
            // Replay both cells with event tracing to localise the bug.
            let diff = stride_divergence(
                cfg.clone(),
                cfg.max_stride(SimDuration::from_millis(1)),
                duration,
                |sim| {
                    sim.spawn_program(&program);
                },
            );
            panic!("{} diverged at cap = tick; {diff}", program.name);
        }
    }
}

#[test]
fn dvfs_study_is_bit_identical_at_one_tick_cap() {
    // The exp_dvfs variant matrix: every enforcement mechanism.
    let base = || {
        SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
            .seed(1)
    };
    let variants = vec![
        base(),
        base().throttling(true),
        base().throttling(true).energy_aware(true),
        base().dvfs_governor(GovernorKind::ThermalAware),
        base()
            .dvfs_governor(GovernorKind::ThermalAware)
            .energy_aware(true),
        base()
            .dvfs_governor(GovernorKind::ThermalAware)
            .throttling(true),
    ];
    for (i, cfg) in variants.into_iter().enumerate() {
        let duration = SimDuration::from_secs(3);
        let hashed_run = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            sim.spawn_mix(&section61_mix(), 3);
            sim.run_for(duration);
            (fingerprint(&sim.report()), sim.state_hash())
        };
        let fixed = hashed_run(cfg.clone());
        let strided = hashed_run(cfg.clone().max_stride(SimDuration::from_millis(1)));
        if fixed != strided {
            let diff = stride_divergence(
                cfg.clone(),
                cfg.max_stride(SimDuration::from_millis(1)),
                duration,
                |sim| sim.spawn_mix(&section61_mix(), 3),
            );
            panic!("dvfs variant {i} diverged at cap = tick; {diff}");
        }
    }
}

#[test]
fn throttle_duty_cycle_survives_strides() {
    // Bang-bang `hlt` enforcement is the part a naive strided engine
    // breaks: flips must not drift by more than the tick they are
    // resolved at. bitcnts under a 40 W package budget throttles
    // heavily; the duty cycle must match the fixed-tick core.
    let cfg = || {
        SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
            .seed(5)
    };
    let duration = SimDuration::from_secs(40);
    let run_one = |cfg: SimConfig| {
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(duration);
        sim.report()
    };
    let fixed = run_one(cfg());
    let strided = run_one(cfg().strided());
    // Only the package running bitcnts throttles; compare that one.
    let hot = |r: &SimReport| r.throttled_fraction.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        hot(&fixed) > 0.15,
        "scenario must actually throttle: {}",
        hot(&fixed)
    );
    let d = (hot(&fixed) - hot(&strided)).abs();
    assert!(
        d < 0.03,
        "duty cycle drifted: fixed {} vs strided {}",
        hot(&fixed),
        hot(&strided)
    );
    let engagements = |r: &SimReport| r.throttle_stats.iter().map(|s| s.engagements).sum::<u64>();
    assert!(
        engagements(&strided) > 0,
        "strided core never engaged the throttle"
    );
    let rel_energy = (fixed.true_energy.0 - strided.true_energy.0).abs() / fixed.true_energy.0;
    assert!(rel_energy < 0.02, "energy drifted {rel_energy}");
}

fn preset(idx: usize) -> TopologyPreset {
    [
        TopologyPreset::Dual,
        TopologyPreset::XSeries445 { smt: false },
        TopologyPreset::XSeries445 { smt: true },
        TopologyPreset::Numa16,
    ][idx]
}

fn curve(idx: usize) -> LoadCurve {
    [
        LoadCurve::Constant,
        LoadCurve::Diurnal {
            period: SimDuration::from_secs(4),
            floor: 0.3,
        },
        LoadCurve::Burst {
            period: SimDuration::from_secs(3),
            duty: 0.25,
            high: 2.0,
        },
        LoadCurve::Step {
            at: SimDuration::from_secs(2),
            before: 0.4,
            after: 1.0,
        },
    ][idx]
}

fn open_cfg(preset_idx: usize, curve_idx: usize, seed: u64) -> SimConfig {
    let shape = preset(preset_idx).builder();
    let workload = OpenWorkload::new(
        vec![catalog::aluadd(), catalog::memrw(), catalog::pushpop()],
        1.2 * shape.n_cores() as f64,
    )
    .curve(curve(curve_idx))
    .service_work(200_000_000, 500_000_000);
    SimConfig::with_topology(shape)
        .seed(seed)
        .respawn(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(45.0)))
        .open_workload(workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Strided vs fixed-tick on open workloads across machine shapes
    /// and load curves: identical arrival streams, and headline
    /// metrics within tight tolerance.
    #[test]
    fn strided_matches_fixed_within_tolerance(
        preset_idx in 0usize..4,
        curve_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(4);
        let fixed = run(open_cfg(preset_idx, curve_idx, seed), 0, duration);
        let strided = run(open_cfg(preset_idx, curve_idx, seed).strided(), 0, duration);

        // The thinned arrival stream is a pure function of the seed
        // and the clock, so it is *exactly* preserved.
        prop_assert_eq!(fixed.arrivals, strided.arrivals);
        prop_assert_eq!(fixed.duration, strided.duration);
        // Work, energy, and heat agree tightly.
        prop_assert!(
            rel(fixed.instructions_retired as f64, strided.instructions_retired as f64) < 0.03,
            "instructions: {} vs {}", fixed.instructions_retired, strided.instructions_retired
        );
        prop_assert!(
            rel(fixed.true_energy.0, strided.true_energy.0) < 0.03,
            "energy: {:?} vs {:?}", fixed.true_energy, strided.true_energy
        );
        prop_assert!(
            rel(fixed.estimated_energy.0, strided.estimated_energy.0) < 0.03,
            "estimated energy: {:?} vs {:?}", fixed.estimated_energy, strided.estimated_energy
        );
        prop_assert!(
            (fixed.max_package_temp.0 - strided.max_package_temp.0).abs() < 1.5,
            "max temp: {:?} vs {:?}", fixed.max_package_temp, strided.max_package_temp
        );
        // Completions may differ by tasks in flight at the horizon.
        prop_assert!(
            fixed.completions.abs_diff(strided.completions) <= 3,
            "completions: {} vs {}", fixed.completions, strided.completions
        );
        // Latency percentiles (milliseconds scale) stay close.
        if fixed.latency.count > 20 && strided.latency.count > 20 {
            prop_assert!(
                rel(fixed.latency.p50_s, strided.latency.p50_s) < 0.15,
                "p50: {} vs {}", fixed.latency.p50_s, strided.latency.p50_s
            );
            prop_assert!(
                rel(fixed.latency.p95_s, strided.latency.p95_s) < 0.25,
                "p95: {} vs {}", fixed.latency.p95_s, strided.latency.p95_s
            );
        }
    }

    /// The strided core is deterministic: same seed, same report.
    #[test]
    fn strided_runs_are_deterministic(
        preset_idx in 0usize..4,
        curve_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(3);
        let hashed_run = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            sim.run_for(duration);
            (sim.report(), sim.state_hash())
        };
        let (a, ha) = hashed_run(open_cfg(preset_idx, curve_idx, seed).strided());
        let (b, hb) = hashed_run(open_cfg(preset_idx, curve_idx, seed).strided());
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert!(a.bit_eq(&b), "reports not bit-equal");
        prop_assert_eq!(ha, hb, "state hashes diverged");
    }
}

/// Homogeneous bit-identity regression for the heterogeneous-hardware
/// refactor: on every single-class preset, the refactor's knobs at
/// their neutral settings are byte-level no-ops on both engine cores —
/// pinning the legacy `PerPackage` scope explicitly and switching the
/// policy layer `class_blind` must change nothing, because with one
/// class there are no capacities to ignore and the per-domain state is
/// exactly the old per-package state.
#[test]
fn homogeneous_presets_are_unchanged_by_the_class_refactor() {
    use ebs_dvfs::DomainScope;
    use ebs_sim::ParallelSimulation;
    for preset in TopologyPreset::all() {
        let base = SimConfig::preset(preset)
            .seed(13)
            .respawn(false)
            .dvfs_governor(GovernorKind::OnDemand);
        assert!(
            !base.is_hybrid(),
            "{} should be single-class",
            preset.name()
        );
        let strided_run = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg.strided());
            sim.spawn_mix(&section61_mix(), 2);
            sim.run_for(SimDuration::from_secs(2));
            (fingerprint(&sim.report()), sim.state_hash())
        };
        let parallel_run = |cfg: SimConfig| {
            let mut sim = ParallelSimulation::new(cfg.parallel(2));
            sim.spawn_mix(&section61_mix(), 2);
            sim.run_for(SimDuration::from_secs(2));
            (fingerprint(&sim.report()), sim.state_hash())
        };
        for run in [strided_run, parallel_run] {
            let default = run(base.clone());
            let pinned = run(base.clone().scope(DomainScope::PerPackage));
            let blind = run(base.clone().class_blind(true));
            assert_eq!(
                default,
                pinned,
                "{}: pinning PerPackage scope changed a homogeneous run",
                preset.name()
            );
            assert_eq!(
                default,
                blind,
                "{}: class_blind changed a homogeneous run",
                preset.name()
            );
        }
    }
}
