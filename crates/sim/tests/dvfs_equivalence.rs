//! Equivalence suite for event-driven DVFS governors.
//!
//! Mirrors the engine-core equivalence suite's two layers:
//!
//! 1. **Bit-identity for degenerate triggers**: with a [`Fixed`]
//!    governor (whose [`DecisionHold`] never expires) and
//!    `max_hold == interval`, the event-driven path decides at exactly
//!    the cadence instants — so it must produce byte-for-byte the same
//!    reports as the cadence baseline, on both engine cores.
//! 2. **Tolerance for real triggers**: across topology presets ×
//!    governors × seeds, event-driven runs must agree with cadence
//!    runs within the engine-core suite's tolerances — arrivals
//!    exactly (pure function of the clock), instructions/energy within
//!    3 %, temperature within 1.5 K, latency percentiles within
//!    15 %/25 % — while taking strictly fewer governor decisions.

use ebs_dvfs::GovernorKind;
use ebs_sim::{
    rel_dev as rel, report_fingerprint as fingerprint, stride_divergence, DvfsSpec, MaxPowerSpec,
    SimConfig, SimEngine, SimReport, Simulation,
};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, section61_mix, LoadCurve, OpenWorkload};
use proptest::prelude::*;

fn run(cfg: SimConfig, mix: usize, duration: SimDuration) -> SimReport {
    let mut sim = Simulation::new(cfg);
    if mix > 0 {
        sim.spawn_mix(&section61_mix(), mix);
    }
    sim.run_for(duration);
    sim.report()
}

#[test]
fn degenerate_triggers_are_bit_identical_to_the_cadence() {
    // Fixed(2) pins the clock below nominal so the DVFS subsystem is
    // actually exercised (scaled execution, residency accounting), and
    // its hold never expires — the only decision points left in
    // event-driven mode are the max_hold fallbacks, configured to the
    // cadence interval.
    let spec = |event: bool| DvfsSpec {
        governor: GovernorKind::Fixed(2),
        event_driven: event,
        max_hold: event.then(|| DvfsSpec::default().interval),
        ..DvfsSpec::default()
    };
    for strided in [false, true] {
        let base = || {
            let cfg = SimConfig::xseries445()
                .smt(false)
                .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
                .seed(3);
            if strided {
                cfg.strided()
            } else {
                cfg
            }
        };
        let duration = SimDuration::from_secs(3);
        let hashed_run = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            sim.spawn_mix(&section61_mix(), 3);
            sim.run_for(duration);
            (fingerprint(&sim.report()), sim.state_hash())
        };
        let (cadence_fp, _) = hashed_run(base().dvfs(spec(false)));
        let (event_fp, event_hash) = hashed_run(base().dvfs(spec(true)));
        if cadence_fp != event_fp {
            // Replay both cells with event tracing to localise the bug.
            let diff = stride_divergence(
                base().dvfs(spec(false)),
                base().dvfs(spec(true)),
                duration,
                |sim| sim.spawn_mix(&section61_mix(), 3),
            );
            panic!(
                "degenerate event-driven config diverged from the cadence \
                 (strided = {strided}); {diff}"
            );
        }
        // The state hash is compared *within* a config, not across:
        // the event-driven cell's internal hold/arming bookkeeping
        // differs from the cadence cell by design even when the
        // reports are byte-identical. What must hold is that the
        // hash is reproducible.
        let (_, event_hash_again) = hashed_run(base().dvfs(spec(true)));
        assert_eq!(
            event_hash, event_hash_again,
            "event-driven state hash not reproducible (strided = {strided})"
        );
    }
}

fn preset(idx: usize) -> TopologyPreset {
    [
        TopologyPreset::Dual,
        TopologyPreset::XSeries445 { smt: false },
        TopologyPreset::XSeries445 { smt: true },
        TopologyPreset::Numa16,
    ][idx]
}

fn governor(idx: usize) -> GovernorKind {
    [
        GovernorKind::OnDemand,
        GovernorKind::ThermalAware,
        GovernorKind::Fixed(1),
    ][idx]
        .clone()
}

/// An open-workload cell under budget pressure, so both the
/// utilization-driven and the thermal governors actually move.
fn open_cfg(preset_idx: usize, governor_idx: usize, seed: u64, event: bool) -> SimConfig {
    let shape = preset(preset_idx).builder();
    let workload = OpenWorkload::new(
        vec![catalog::bitcnts(), catalog::memrw(), catalog::aluadd()],
        1.2 * shape.n_cores() as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(4),
        floor: 0.3,
    })
    .service_work(200_000_000, 500_000_000);
    SimConfig::with_topology(shape)
        .seed(seed)
        .respawn(false)
        .throttling(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(45.0)))
        .open_workload(workload)
        .strided()
        .dvfs_governor(governor(governor_idx))
        .dvfs_event_driven(event)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Event-driven vs cadence across presets × governors: identical
    /// arrival streams, headline metrics within the engine-core
    /// equivalence tolerances, fewer governor wake-ups.
    #[test]
    fn event_driven_matches_cadence_within_tolerance(
        preset_idx in 0usize..4,
        governor_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(4);
        let cadence = run(open_cfg(preset_idx, governor_idx, seed, false), 0, duration);
        let event = run(open_cfg(preset_idx, governor_idx, seed, true), 0, duration);

        prop_assert_eq!(cadence.arrivals, event.arrivals);
        prop_assert_eq!(cadence.duration, event.duration);
        prop_assert!(
            rel(cadence.instructions_retired as f64, event.instructions_retired as f64) < 0.03,
            "instructions: {} vs {}", cadence.instructions_retired, event.instructions_retired
        );
        prop_assert!(
            rel(cadence.true_energy.0, event.true_energy.0) < 0.03,
            "energy: {:?} vs {:?}", cadence.true_energy, event.true_energy
        );
        prop_assert!(
            (cadence.max_package_temp.0 - event.max_package_temp.0).abs() < 1.5,
            "max temp: {:?} vs {:?}", cadence.max_package_temp, event.max_package_temp
        );
        prop_assert!(
            cadence.completions.abs_diff(event.completions) <= 3,
            "completions: {} vs {}", cadence.completions, event.completions
        );
        if cadence.latency.count > 20 && event.latency.count > 20 {
            prop_assert!(
                rel(cadence.latency.p50_s, event.latency.p50_s) < 0.15,
                "p50: {} vs {}", cadence.latency.p50_s, event.latency.p50_s
            );
            prop_assert!(
                rel(cadence.latency.p95_s, event.latency.p95_s) < 0.25,
                "p95: {} vs {}", cadence.latency.p95_s, event.latency.p95_s
            );
        }
        // The whole point: triggers fire less often than the cadence.
        prop_assert!(
            event.dvfs_decisions < cadence.dvfs_decisions,
            "no decision savings: {} vs {}", event.dvfs_decisions, cadence.dvfs_decisions
        );
        // And no NaN ever leaks into the frequency accounting (the
        // zero-width-window regression, observed end to end).
        prop_assert!(event.mean_frequency.0.is_finite());
        let fractions: f64 = event.pstate_residency.iter().map(|r| r.fraction).sum();
        prop_assert!((fractions - 1.0).abs() < 1e-9, "residency fractions {fractions}");
    }

    /// Event-driven runs stay deterministic per seed.
    #[test]
    fn event_driven_runs_are_deterministic(
        preset_idx in 0usize..4,
        governor_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(3);
        let a = run(open_cfg(preset_idx, governor_idx, seed, true), 0, duration);
        let b = run(open_cfg(preset_idx, governor_idx, seed, true), 0, duration);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
