//! Integration tests of the scenario engine: open-workload arrivals
//! on generated topologies, determinism per seed, and runner
//! invariance across worker counts.

use ebs_sim::{run_configs_with_workers, MaxPowerSpec, SimConfig, SimReport, Simulation};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};

fn diurnal_workload(n_cpus: usize) -> OpenWorkload {
    OpenWorkload::new(
        vec![catalog::aluadd(), catalog::memrw()],
        1.5 * n_cpus as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(6),
        floor: 0.3,
    })
    .service_work(200_000_000, 600_000_000)
}

fn open_cfg(preset: TopologyPreset, seed: u64) -> SimConfig {
    let shape = preset.builder();
    SimConfig::with_topology(shape)
        .seed(seed)
        .respawn(false)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .open_workload(diurnal_workload(shape.n_cpus()))
}

fn signature(r: &SimReport) -> (u64, u64, u64, u64, u64) {
    (
        r.instructions_retired,
        r.arrivals,
        r.completions,
        r.migrations,
        r.context_switches,
    )
}

#[test]
fn open_run_is_deterministic_per_seed() {
    let run = |seed| {
        let mut sim = Simulation::new(open_cfg(TopologyPreset::Dual, seed));
        sim.run_for(SimDuration::from_secs(8));
        let r = sim.report();
        (signature(&r), r.latency)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).0, run(8).0, "seeds must differ");
}

#[test]
fn arrivals_complete_and_report_latencies() {
    let mut sim = Simulation::new(open_cfg(TopologyPreset::XSeries445 { smt: false }, 3));
    sim.run_for(SimDuration::from_secs(10));
    let r = sim.report();
    // ~12 arrivals/s over 10 s.
    assert!(r.arrivals > 60, "only {} arrivals", r.arrivals);
    assert!(r.completions > 0);
    assert!(r.completions <= r.arrivals, "completed more than arrived");
    assert_eq!(r.latency.count, r.completions);
    assert!(r.latency.p50_s > 0.0);
    assert!(r.latency.p95_s >= r.latency.p50_s);
    assert!(r.latency.max_s >= r.latency.p99_s);
    // The diurnal curve has two phases; both see completions over
    // 10 s (period 6 s), and their counts sum to the total.
    assert_eq!(r.phase_latencies.len(), 2);
    let phases: Vec<&str> = r.phase_latencies.iter().map(|(p, _)| p.as_str()).collect();
    assert_eq!(phases, vec!["trough", "peak"]);
    let total: u64 = r.phase_latencies.iter().map(|(_, s)| s.count).sum();
    assert_eq!(total, r.latency.count);
}

#[test]
fn closed_runs_report_no_arrivals() {
    let mut sim = Simulation::new(SimConfig::xseries445().smt(false).seed(1));
    sim.spawn_program(&catalog::aluadd());
    sim.run_for(SimDuration::from_secs(2));
    let r = sim.report();
    assert_eq!(r.arrivals, 0);
    assert_eq!(r.latency, ebs_sim::LatencyStats::default());
    assert!(r.phase_latencies.is_empty());
}

#[test]
fn open_runs_are_identical_across_worker_counts() {
    let configs: Vec<SimConfig> = (0..5)
        .map(|s| open_cfg(TopologyPreset::Dual, 100 + s))
        .collect();
    let duration = SimDuration::from_secs(3);
    let serial = run_configs_with_workers(configs.clone(), duration, 1, |_| {});
    let pooled = run_configs_with_workers(configs.clone(), duration, 4, |_| {});
    let wide = run_configs_with_workers(configs, duration, 999, |_| {});
    for ((a, b), c) in serial.iter().zip(&pooled).zip(&wide) {
        assert_eq!(signature(a), signature(b));
        assert_eq!(signature(a), signature(c));
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.latency, c.latency);
    }
}

#[test]
fn step_curve_shifts_load_between_phases() {
    let shape = TopologyPreset::XSeries445 { smt: false }.builder();
    let workload = OpenWorkload::new(vec![catalog::aluadd()], 10.0)
        .curve(LoadCurve::Step {
            at: SimDuration::from_secs(5),
            before: 0.2,
            after: 1.0,
        })
        .service_work(100_000_000, 200_000_000);
    let mut sim = Simulation::new(
        SimConfig::with_topology(shape)
            .seed(11)
            .respawn(false)
            .open_workload(workload),
    );
    sim.run_for(SimDuration::from_secs(10));
    let r = sim.report();
    let count = |phase: &str| {
        r.phase_latencies
            .iter()
            .find(|(p, _)| p == phase)
            .map_or(0, |(_, s)| s.count)
    };
    // 5 s at 2/s before the step, 5 s at 10/s after: the "after"
    // phase must dominate completions.
    assert!(
        count("after") > count("before"),
        "before {} vs after {}",
        count("before"),
        count("after")
    );
    assert!(r.arrivals > 20);
}

#[test]
fn open_workload_runs_on_a_large_generated_topology() {
    // A shape the paper never had: 16 packages across 4 NUMA nodes
    // with dual cores. The whole stack — placement, balancing, DVFS,
    // throttling — must run on it without panics.
    let mut sim = Simulation::new(
        open_cfg(TopologyPreset::Numa16, 5)
            .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware)
            .throttling(false),
    );
    sim.run_for(SimDuration::from_secs(4));
    let r = sim.report();
    assert!(r.arrivals > 0);
    assert!(r.instructions_retired > 0);
    assert!(r.completions > 0);
}
