//! Behavioural integration tests of the simulated machine: SMT
//! contention, estimation accuracy, physics consistency, and DVFS
//! enforcement.

use ebs_dvfs::GovernorKind;
use ebs_sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs_units::{SimDuration, SimTime, Watts};
use ebs_workloads::{catalog, section61_mix};

/// Two tasks forced onto one package's hardware threads progress
/// slower per task (but faster combined) than one task alone: the SMT
/// contention model.
#[test]
fn smt_siblings_share_the_pipeline() {
    let single_pkg = |n_tasks: usize| {
        let mut cfg = SimConfig::xseries445()
            .smt(true)
            .energy_aware(false)
            .throttling(false)
            .seed(1);
        cfg.n_nodes = 1;
        cfg.packages_per_node = 1; // One package, two hardware threads.
        let mut sim = Simulation::new(cfg);
        for _ in 0..n_tasks {
            sim.spawn_program(&catalog::aluadd());
        }
        sim.run_for(SimDuration::from_secs(10));
        sim.report().instructions_retired as f64
    };
    let solo = single_pkg(1);
    let pair = single_pkg(2);
    // Combined throughput improves, but by the SMT factor (~1.25), not
    // by 2x.
    assert!(pair > solo * 1.1, "no SMT benefit: {pair} vs {solo}");
    assert!(pair < solo * 1.45, "SMT speedup too high: {pair} vs {solo}");
}

/// Counter-based estimation tracks ground-truth energy within the
/// paper's 10 % bound, end to end, for a mixed workload with
/// migrations, throttling, and idling.
#[test]
fn end_to_end_estimation_error_is_small() {
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(true)
        .throttling(false)
        .seed(9);
    let mut sim = Simulation::new(cfg);
    sim.spawn_mix(&section61_mix(), 2);
    sim.run_for(SimDuration::from_secs(60));
    let report = sim.report();
    assert!(report.true_energy.0 > 0.0);
    assert!(
        report.estimation_error() < 0.10,
        "estimation error {:.3}",
        report.estimation_error()
    );
    // With the ground-truth model the only gap is the
    // counter-invisible leakage (a few percent, always an
    // underestimate).
    let mut sim = Simulation::new(
        SimConfig::xseries445()
            .smt(false)
            .energy_aware(true)
            .throttling(false)
            .perfect_estimation(true)
            .seed(9),
    );
    sim.spawn_mix(&section61_mix(), 2);
    sim.run_for(SimDuration::from_secs(60));
    let perfect = sim.report();
    assert!(perfect.estimated_energy <= perfect.true_energy);
    assert!(perfect.estimation_error() < 0.06);
}

/// An idle machine dissipates exactly the halt power.
#[test]
fn idle_machine_burns_halt_power() {
    let cfg = SimConfig::xseries445().smt(true).seed(1);
    let mut sim = Simulation::new(cfg);
    let dur = SimDuration::from_secs(10);
    sim.run_for(dur);
    let report = sim.report();
    // 8 packages at 13.6 W for 10 s = 1088 J, plus the small leakage
    // of the dies warming a few kelvin above ambient (at the halted
    // steady state of ~26.6 degC that is ~0.7 W per package).
    let floor = 8.0 * 13.6 * 10.0;
    let ceiling = floor + 8.0 * 0.8 * 10.0;
    assert!(
        report.true_energy.0 >= floor && report.true_energy.0 <= ceiling,
        "true energy {:?} outside [{floor}, {ceiling}] J",
        report.true_energy
    );
}

/// Throttling caps the thermal power near the budget: the bang-bang
/// controller holds the package at its limit, not far above it.
#[test]
fn throttle_holds_the_package_at_its_budget() {
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(false) // No escape: the task must throttle.
        .throttling(true)
        .max_power(MaxPowerSpec::PerLogical(Watts(40.0)))
        .trace_thermal(SimDuration::from_secs(1))
        .seed(2);
    let mut sim = Simulation::new(cfg);
    sim.spawn_program(&catalog::bitcnts());
    sim.run_for(SimDuration::from_secs(120));
    // After convergence the hottest CPU's thermal power hovers at the
    // 40 W limit (within the bang-bang ripple).
    let (_, hi) = sim
        .thermal_trace()
        .band(ebs_units::SimTime::from_secs(60))
        .unwrap();
    assert!(hi.0 < 43.0, "thermal power escaped the limit: {hi:?}");
    assert!(hi.0 > 36.0, "throttle overshot far below the limit: {hi:?}");
    let frac = sim.report().avg_throttled_fraction;
    assert!(frac > 0.02, "never throttled");
}

/// A DVFS-enforced run never exceeds the package power budget: the
/// ThermalAware governor engages below the limit, so the thermal power
/// of every CPU stays under 40 W with `hlt` throttling switched off
/// entirely.
#[test]
fn dvfs_enforcement_never_exceeds_the_budget() {
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(false)
        .throttling(false) // No hlt backstop: DVFS enforces alone.
        .dvfs_governor(GovernorKind::ThermalAware)
        .max_power(MaxPowerSpec::PerLogical(Watts(40.0)))
        .trace_thermal(SimDuration::from_secs(1))
        .seed(8);
    let mut sim = Simulation::new(cfg);
    // Hot tasks on every package: each wants ~61 W against 40 W.
    for _ in 0..8 {
        sim.spawn_program(&catalog::bitcnts());
    }
    sim.run_for(SimDuration::from_secs(120));
    let (_, hi) = sim
        .thermal_trace()
        .band(SimTime::from_secs(30))
        .expect("trace has samples");
    assert!(
        hi < Watts(40.0),
        "thermal power escaped the budget under DVFS: {hi:?}"
    );
    let report = sim.report();
    assert_eq!(report.avg_throttled_fraction, 0.0, "hlt was off");
    assert!(report.avg_scaled_fraction > 0.5, "DVFS barely engaged");
    // Work still progresses at the scaled clock.
    assert!(report.instructions_retired > 0);
}

/// DVFS and hlt throttling enforce the same budget, but scaling wastes
/// less: at an equal package power budget the ThermalAware governor
/// loses less throughput than the bang-bang hlt controller, and spends
/// less energy per instruction (V² drops where hlt's does not).
#[test]
fn dvfs_beats_hlt_at_the_same_budget() {
    let base = || {
        SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .max_power(MaxPowerSpec::PerLogical(Watts(40.0)))
            .seed(31)
    };
    let run = |cfg: SimConfig| {
        let mut sim = Simulation::new(cfg);
        sim.spawn_program(&catalog::bitcnts());
        sim.run_for(SimDuration::from_secs(180));
        sim.report()
    };
    let unconstrained = run(base().throttling(false));
    let hlt = run(base().throttling(true));
    let dvfs = run(base()
        .throttling(false)
        .dvfs_governor(GovernorKind::ThermalAware));
    let hlt_loss = hlt.throughput_loss_vs(&unconstrained);
    let dvfs_loss = dvfs.throughput_loss_vs(&unconstrained);
    assert!(hlt_loss > 0.2, "hlt never bit: loss {hlt_loss}");
    assert!(
        dvfs_loss < hlt_loss,
        "DVFS lost more throughput than hlt: {dvfs_loss} vs {hlt_loss}"
    );
    assert!(
        dvfs.nj_per_instruction() < hlt.nj_per_instruction(),
        "DVFS spent more energy per instruction: {} vs {}",
        dvfs.nj_per_instruction(),
        hlt.nj_per_instruction()
    );
}

/// Paper Section 4.2: "The error resulting from estimating energy and
/// then estimating temperature based on the energy estimate is smaller
/// than one Kelvin for real-world applications." Thermal power mapped
/// through the RC model must track the true die temperature that
/// closely once the averages have settled.
#[test]
fn estimated_temperature_tracks_truth_within_one_kelvin() {
    use ebs_thermal::RcThermalModel;
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(false)
        .throttling(false)
        .seed(3);
    let mut sim = Simulation::new(cfg);
    let id = sim.spawn_program(&catalog::bitcnts());
    let model = RcThermalModel::reference();
    let mut worst = 0.0_f64;
    for step in 0..40 {
        sim.run_for(SimDuration::from_secs(5));
        if step < 4 {
            continue; // The averages need ~20 s to settle.
        }
        let cpu = sim.system().task(id).cpu();
        let pkg = sim.system().topology().package_of(cpu);
        let predicted = model.temp_for_power(sim.power_state().thermal_power(cpu));
        let truth = sim.machine().package_temp(pkg);
        worst = worst.max(predicted.delta(truth).abs());
    }
    assert!(worst < 1.0, "temperature estimate off by {worst:.2} K");
}

/// Migration costs show up in throughput: the same workload with
/// artificially enormous warm-up penalties retires fewer instructions.
#[test]
fn cache_warmth_penalty_is_observable() {
    let run = |floor: f64, ramp: u64| {
        let mut cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(true)
            .throttling(false)
            .seed(6);
        cfg.warmup_ipc_floor = floor;
        cfg.warmup_instructions = ramp;
        cfg.warmup_ipc_floor_cross_node = floor * 0.8;
        cfg.warmup_instructions_cross_node = ramp * 2;
        let mut sim = Simulation::new(cfg);
        sim.spawn_mix(&section61_mix(), 3);
        sim.run_for(SimDuration::from_secs(60));
        sim.report().instructions_retired
    };
    let realistic = run(0.55, 40_000_000);
    let brutal = run(0.05, 4_000_000_000);
    assert!(
        brutal < realistic,
        "huge warmup penalty had no effect: {brutal} vs {realistic}"
    );
    // The realistic penalty is small: Section 6.5's argument.
    let none = run(1.0, 1);
    let loss = 1.0 - realistic as f64 / none as f64;
    assert!(loss < 0.03, "realistic warmup lost {loss:.3} of throughput");
}

/// Disabled SMT halves the logical CPU count but each thread gets the
/// full pipeline: 8 solo tasks retire more with SMT off than 8 tasks
/// spread as siblings pairs would.
#[test]
fn smt_off_gives_full_pipeline_per_task() {
    let run = |smt: bool| {
        let cfg = SimConfig::xseries445()
            .smt(smt)
            .energy_aware(false)
            .throttling(false)
            .seed(4);
        let mut sim = Simulation::new(cfg);
        for _ in 0..8 {
            sim.spawn_program(&catalog::pushpop());
        }
        sim.run_for(SimDuration::from_secs(20));
        sim.report().instructions_retired
    };
    let smt_off = run(false);
    let smt_on = run(true);
    // 8 tasks on 8 packages: with SMT off each runs solo; with SMT on
    // the idlest-CPU placement also spreads them one per package, so
    // throughput should be equal (no contention either way).
    let ratio = smt_on as f64 / smt_off as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "8 tasks on 8 packages should not contend: ratio {ratio}"
    );
}
