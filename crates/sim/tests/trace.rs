//! Observability guarantees: tracing must be free when off, faithful
//! when on, and never change what the simulation does.
//!
//! - **Off ⇒ bit-identical**: enabling nothing produces the same
//!   `SimReport` bytes as the seed code path always did, and enabling
//!   event tracing / profiling produces the same report as not
//!   enabling them (they observe, never steer).
//! - **On ⇒ faithful**: event counts reconcile exactly with the
//!   report's counters, the legacy task-CPU trace (now fed from the
//!   event stream) is byte-identical to its bespoke-push ancestor, and
//!   the Perfetto export round-trips through a JSON parser with
//!   matched slices.
//! - **Sampling floors**: the metrics cadence bounds variable strides
//!   (snapshots land exactly); no subscription, no floor.

use ebs_sim::{MaxPowerSpec, SimConfig, SimReport, Simulation};
use ebs_trace::{parse_json, EventKind, Json};
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, section61_mix, LoadCurve, OpenWorkload};
use std::collections::HashMap;

fn fingerprint(r: &SimReport) -> String {
    format!("{r:?}")
}

fn base_cfg() -> SimConfig {
    SimConfig::xseries445().smt(false).seed(11)
}

/// A config that exercises DVFS, throttling, and migrations at once.
fn busy_cfg() -> SimConfig {
    base_cfg()
        .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware)
        .throttling(true)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
}

fn run_traced(cfg: SimConfig, duration: SimDuration) -> Simulation {
    let mut sim = Simulation::new(cfg);
    sim.spawn_mix(&section61_mix(), 2);
    sim.run_for(duration);
    sim
}

#[test]
fn tracing_and_profiling_leave_reports_bit_identical() {
    let duration = SimDuration::from_secs(2);
    for strided in [false, true] {
        let cfg = || {
            let c = busy_cfg();
            if strided {
                c.strided()
            } else {
                c
            }
        };
        let plain = fingerprint(&run_traced(cfg(), duration).report());
        let traced = fingerprint(
            &run_traced(cfg().trace_events(true).profile_engine(true), duration).report(),
        );
        assert_eq!(
            plain, traced,
            "tracing changed the simulation (strided = {strided})"
        );
    }
}

#[test]
fn metrics_leave_reports_bit_identical_on_the_fixed_core() {
    // Metrics snapshots bound *strides* (like the thermal trace), so
    // bit-identity holds on the fixed-tick core, where there are no
    // strides to bound.
    let duration = SimDuration::from_secs(2);
    let plain = fingerprint(&run_traced(busy_cfg(), duration).report());
    let metered = fingerprint(
        &run_traced(
            busy_cfg().metrics_every(SimDuration::from_millis(100)),
            duration,
        )
        .report(),
    );
    assert_eq!(plain, metered, "metrics sampling changed the simulation");
}

/// A config whose load churns: an overloaded bursty open workload on
/// top of the closed mix, so balancing actually migrates and arrivals
/// actually complete.
fn churn_cfg() -> SimConfig {
    let shape = ebs_topology::TopologyPreset::XSeries445 { smt: false }.builder();
    let workload = OpenWorkload::new(
        vec![catalog::aluadd(), catalog::memrw(), catalog::bash()],
        1.5 * shape.n_cores() as f64,
    )
    .curve(LoadCurve::Burst {
        period: SimDuration::from_secs(1),
        duty: 0.4,
        high: 2.5,
    })
    .service_work(200_000_000, 800_000_000);
    SimConfig::with_topology(shape)
        .seed(11)
        .respawn(false)
        .dvfs_governor(ebs_dvfs::GovernorKind::ThermalAware)
        .throttling(true)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .open_workload(workload)
}

#[test]
fn event_counts_reconcile_with_report_counters() {
    let sim = run_traced(churn_cfg().trace_events(true), SimDuration::from_secs(4));
    let report = sim.report();
    let events = sim.events().expect("tracing on").to_vec();
    let count = |pred: &dyn Fn(&EventKind) -> bool| -> u64 {
        events.iter().filter(|e| pred(&e.kind)).count() as u64
    };
    assert_eq!(
        count(&|k| matches!(k, EventKind::EngineStep { .. })),
        report.engine_steps,
        "one EngineStep per step"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::GovernorDecision { .. })),
        report.dvfs_decisions,
        "one GovernorDecision per decision"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::PStateTransition { .. })),
        report.dvfs_transitions,
        "one PStateTransition per domain transition"
    );
    assert_eq!(
        count(&|k| matches!(k, EventKind::Completion { .. })),
        report.completions,
        "one Completion per completed task"
    );
    // A Migration event is emitted when the migrated task is next
    // dispatched; tasks migrated again before running, or parked at
    // the horizon, emit fewer events than the migration count.
    let migrations = count(&|k| matches!(k, EventKind::Migration { .. }));
    assert!(
        migrations <= report.migrations,
        "{migrations} migration events > {} migrations",
        report.migrations
    );
    assert!(migrations > 0, "churning run should migrate");
    assert!(report.completions > 0, "open arrivals should complete");
    // Spawns cover the initial mix (12 tasks) plus every accepted
    // arrival.
    let spawns = count(&|k| matches!(k, EventKind::Spawn { .. }));
    assert_eq!(spawns, 12 + report.arrivals, "one Spawn per task");
}

#[test]
fn throttle_events_reconcile_with_engagement_counts() {
    // bitcnts under a 40 W package budget throttles heavily (the
    // equivalence suite's duty-cycle scenario).
    let cfg = base_cfg()
        .energy_aware(false)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .trace_events(true);
    let mut sim = Simulation::new(cfg);
    sim.spawn_program(&catalog::bitcnts());
    sim.run_for(SimDuration::from_secs(20));
    let report = sim.report();
    let engagements: u64 = report.throttle_stats.iter().map(|s| s.engagements).sum();
    assert!(engagements > 0, "scenario must throttle");
    let events = sim.events().expect("tracing on").to_vec();
    let engages = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ThrottleEngage { .. }))
        .count() as u64;
    let releases = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ThrottleRelease { .. }))
        .count() as u64;
    assert_eq!(engages, engagements, "one ThrottleEngage per engagement");
    // Every engage is eventually released, except possibly the last.
    assert!(
        engages - releases <= 1,
        "{engages} engages vs {releases} releases"
    );
}

#[test]
fn task_cpu_trace_is_identical_with_event_tracing_on_or_off() {
    // Satellite: the fig. 9 trace is now produced from the event
    // stream; its CSV must be byte-identical whether or not the event
    // sink is also subscribed.
    let duration = SimDuration::from_secs(2);
    let csv = |cfg: SimConfig| {
        let sim = run_traced(cfg.trace_task_cpu(true), duration);
        sim.task_trace().to_csv()
    };
    let alone = csv(base_cfg());
    let with_events = csv(base_cfg().trace_events(true));
    assert!(!alone.is_empty());
    assert_eq!(alone, with_events);
}

#[test]
fn event_ring_capacity_keeps_the_newest_events() {
    let sim = run_traced(busy_cfg().trace_events_cap(256), SimDuration::from_secs(2));
    let trace = sim.events().expect("tracing on");
    assert_eq!(trace.len(), 256);
    assert!(trace.dropped() > 0);
    // The ring still yields events oldest-first.
    let events = trace.to_vec();
    assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
}

#[test]
fn metrics_cadence_floors_strides_only_when_subscribed() {
    // An open workload with long quiet gaps: the strided engine takes
    // long spans unless something bounds them.
    let cfg = |metrics: bool| {
        let shape = ebs_topology::TopologyPreset::Dual.builder();
        let workload = OpenWorkload::new(vec![catalog::aluadd()], 0.5)
            .curve(LoadCurve::Constant)
            .service_work(50_000_000, 100_000_000);
        let c = SimConfig::with_topology(shape)
            .seed(3)
            .respawn(false)
            .open_workload(workload)
            .strided();
        if metrics {
            c.metrics_every(SimDuration::from_millis(1))
        } else {
            c
        }
    };
    let steps = |cfg: SimConfig| {
        let mut sim = Simulation::new(cfg);
        sim.run_for(SimDuration::from_secs(2));
        sim.report().engine_steps
    };
    let free = steps(cfg(false));
    let floored = steps(cfg(true));
    // A 1 ms cadence forces a step per tick: 2000 steps. Without the
    // subscription the engine must stride far past that.
    assert!(floored >= 2_000, "cadence not honoured: {floored} steps");
    assert!(
        free * 2 < floored,
        "no-sampling run took {free} steps vs {floored} with a 1 ms cadence — the floor \
         is applied unconditionally"
    );
}

#[test]
fn metrics_snapshots_land_on_the_cadence_and_export_csv() {
    let every = SimDuration::from_millis(100);
    let sim = run_traced(
        busy_cfg().metrics_every(every).strided(),
        SimDuration::from_secs(2),
    );
    let reg = sim.metrics().expect("metrics on");
    let snaps = reg.snapshots();
    // One snapshot at the end of the first step, then every 100 ms:
    // at least 20 over 2 s, each exactly on a multiple of the cadence
    // (the stride bound guarantees the engine steps on those instants
    // after the first).
    assert!(snaps.len() >= 20, "only {} snapshots", snaps.len());
    for snap in &snaps[1..] {
        assert_eq!(
            snap.t.as_micros() % every.as_micros(),
            0,
            "snapshot off-cadence at {:?}",
            snap.t
        );
    }
    let csv = reg.to_csv();
    let mut lines = csv.lines();
    let header = lines.next().expect("header");
    assert!(header.starts_with("time_s,"));
    assert!(header.contains("engine.steps"));
    assert!(header.contains("thermal.power_w.cpu0"));
    assert!(header.contains("dvfs.freq_ghz.pkg0"));
    assert_eq!(lines.count(), snaps.len());
}

#[test]
fn perfetto_export_round_trips_with_matched_slices() {
    let sim = run_traced(
        busy_cfg()
            .trace_events(true)
            .metrics_every(SimDuration::from_millis(100)),
        SimDuration::from_secs(2),
    );
    let doc = sim.perfetto_json().expect("tracing on");
    let parsed = parse_json(&doc).expect("exporter must emit valid JSON");
    let list = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(list.len() > 100, "suspiciously small trace: {}", list.len());

    let mut open: HashMap<(u64, u64), f64> = HashMap::new();
    let mut counter_names: Vec<String> = Vec::new();
    let mut slices = 0u64;
    for item in list {
        let ph = item.get("ph").and_then(Json::as_str).expect("ph");
        let pid = item.get("pid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let tid = item.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let ts = item.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        match ph {
            "B" => {
                slices += 1;
                assert!(
                    open.insert((pid, tid), ts).is_none(),
                    "nested slice on track ({pid},{tid})"
                );
            }
            "E" => {
                let begin = open.remove(&(pid, tid)).expect("slice end without a begin");
                assert!(ts >= begin, "slice ends before it begins");
            }
            "C" => {
                if let Some(name) = item.get("name").and_then(Json::as_str) {
                    if !counter_names.iter().any(|n| n == name) {
                        counter_names.push(name.to_string());
                    }
                }
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed slices: {open:?}");
    assert!(slices > 10, "expected task slices, saw {slices}");
    // The acceptance bar: thermal power and frequency counter tracks.
    assert!(
        counter_names
            .iter()
            .any(|n| n.starts_with("thermal.power_w.")),
        "no thermal power counters in {counter_names:?}"
    );
    assert!(
        counter_names
            .iter()
            .any(|n| n.starts_with("dvfs.freq_ghz.")),
        "no frequency counters in {counter_names:?}"
    );
    // Task slices carry program names from the catalog.
    assert!(
        doc.contains("bitcnts"),
        "slice labels missing program names"
    );
}

#[test]
fn engine_profile_counts_every_phase() {
    let mut sim = Simulation::new(busy_cfg().profile_engine(true));
    sim.spawn_mix(&section61_mix(), 1);
    sim.run_for(SimDuration::from_millis(500));
    let profile = sim.engine_profile().expect("profiling on");
    let rows = profile.rows();
    let by_name: HashMap<&str, u64> = rows.iter().map(|r| (r.name, r.calls)).collect();
    let steps = sim.report().engine_steps;
    // Counter-based (CI-safe): every phase inside step_span runs once
    // per step; the stride phase once per run_for iteration.
    for phase in [
        "arrivals",
        "physics",
        "throttle",
        "dvfs",
        "scheduler",
        "sampling",
    ] {
        assert_eq!(by_name[phase], steps, "phase {phase} calls != steps");
    }
    assert_eq!(by_name["stride"], steps);
    // The table renders one row per phase.
    assert_eq!(format!("{profile}").lines().count(), rows.len() + 1);
}
