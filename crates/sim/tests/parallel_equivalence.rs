//! Equivalence suite for the parallel (partitioned) engine core.
//!
//! Three layers of guarantee, mirroring the strided suite:
//!
//! 1. **Bit-identity with one worker**: `parallel(1)` constructs a
//!    single whole-machine partition — literally the strided core — so
//!    its reports must be byte-for-byte identical to `strided()`.
//!    Checked over the exp_table2, exp_dvfs, and exp_scaling smoke
//!    shapes. Failures replay with event tracing and name the first
//!    divergent event.
//! 2. **Tolerance with many workers**: multi-partition runs discretise
//!    cross-package balancing at horizon boundaries, so they agree
//!    with the strided core within the strided suite's tolerances —
//!    exact arrival streams, energy and instructions within 3 %,
//!    latency percentiles within 15 % / 25 %.
//! 3. **Determinism**: reports depend on `(seed)` only — never on the
//!    worker count (any `w ≥ 2` is identical to any other) or on the
//!    thread schedule (repeated runs are identical). Cross-partition
//!    handoffs are logged and must be applied exactly once, in the
//!    same order, for every worker count.

use ebs_dvfs::GovernorKind;
use ebs_sim::{
    parallel_divergence, rel_dev as rel, report_fingerprint as fingerprint, MaxPowerSpec,
    ParallelSimulation, SimConfig, SimEngine, SimReport,
};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, section61_mix, LoadCurve, OpenWorkload};
use proptest::prelude::*;

/// Runs `cfg` on the sequential engine (whatever core `cfg` selects).
fn run_sequential(cfg: SimConfig, mix: usize, duration: SimDuration) -> SimReport {
    let mut sim = ebs_sim::Simulation::new(cfg);
    if mix > 0 {
        sim.spawn_mix(&section61_mix(), mix);
    }
    sim.run_for(duration);
    sim.report()
}

/// Runs `cfg` on the partitioned engine.
fn run_parallel(cfg: SimConfig, mix: usize, duration: SimDuration) -> SimReport {
    let mut sim = ParallelSimulation::new(cfg);
    if mix > 0 {
        sim.spawn_mix(&section61_mix(), mix);
    }
    sim.run_for(duration);
    sim.report()
}

/// Asserts bit-identity between `strided()` and `parallel(1)` over one
/// scenario, replaying with event tracing on failure.
fn assert_one_worker_identity(cfg: SimConfig, mix: usize, duration: SimDuration, label: &str) {
    let hashed = |cfg: SimConfig| {
        let mut sim = ParallelSimulation::new(cfg);
        if mix > 0 {
            sim.spawn_mix(&section61_mix(), mix);
        }
        sim.run_for(duration);
        (sim.report(), sim.state_hash())
    };
    let strided = run_sequential(cfg.clone().strided(), mix, duration);
    let par = run_parallel(cfg.clone().parallel(1), mix, duration);
    // The state hash covers every serialized field of every shard —
    // two parallel(1) builds must agree on it exactly.
    let (ra, ha) = hashed(cfg.clone().parallel(1));
    let (rb, hb) = hashed(cfg.clone().parallel(1));
    assert_eq!(ha, hb, "{label}: parallel(1) state hash not deterministic");
    assert!(
        ra.bit_eq(&rb),
        "{label}: parallel(1) reports not bit-equal across builds"
    );
    if !strided.bit_eq(&par) || fingerprint(&strided) != fingerprint(&par) {
        let diff = parallel_divergence(cfg.clone().strided(), cfg.parallel(1), duration, |sim| {
            if mix > 0 {
                sim.spawn_mix(&section61_mix(), mix);
            }
        });
        panic!("{label}: parallel(1) diverged from strided; {diff}");
    }
}

#[test]
fn one_worker_is_bit_identical_on_table2_shape() {
    // The exp_table2 setup: each program solo, throttling off.
    for program in section61_mix() {
        let cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .respawn(false)
            .seed(7);
        let duration = SimDuration::from_secs(5);
        let strided = {
            let mut sim = ebs_sim::Simulation::new(cfg.clone().strided());
            sim.spawn_program(&program);
            sim.run_for(duration);
            fingerprint(&sim.report())
        };
        let par = {
            let mut sim = ParallelSimulation::new(cfg.clone().parallel(1));
            sim.spawn_program(&program);
            sim.run_for(duration);
            fingerprint(&sim.report())
        };
        if strided != par {
            let diff =
                parallel_divergence(cfg.clone().strided(), cfg.parallel(1), duration, |sim| {
                    sim.spawn_program(&program);
                });
            panic!(
                "{} solo: parallel(1) diverged from strided; {diff}",
                program.name
            );
        }
    }
}

#[test]
fn one_worker_is_bit_identical_on_dvfs_shapes() {
    // The exp_dvfs variant matrix: every enforcement mechanism.
    let base = || {
        SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
            .seed(1)
    };
    let variants = vec![
        base(),
        base().throttling(true),
        base().throttling(true).energy_aware(true),
        base().dvfs_governor(GovernorKind::ThermalAware),
        base()
            .dvfs_governor(GovernorKind::ThermalAware)
            .energy_aware(true),
    ];
    for (i, cfg) in variants.into_iter().enumerate() {
        assert_one_worker_identity(
            cfg,
            3,
            SimDuration::from_secs(3),
            &format!("dvfs variant {i}"),
        );
    }
}

#[test]
fn one_worker_is_bit_identical_on_scaling_smoke_shapes() {
    // The exp_scaling smoke shape: open workload over the topology
    // ladder, including the engine-owned arrival process.
    for preset in [
        TopologyPreset::Dual,
        TopologyPreset::XSeries445 { smt: false },
        TopologyPreset::Numa16,
    ] {
        let shape = preset.builder();
        let workload = OpenWorkload::new(
            vec![
                catalog::bitcnts(),
                catalog::memrw(),
                catalog::aluadd(),
                catalog::pushpop(),
            ],
            1.5 * shape.n_cores() as f64,
        )
        .curve(LoadCurve::Burst {
            period: SimDuration::from_secs(3),
            duty: 0.25,
            high: 2.0,
        })
        .service_work(600_000_000, 1_800_000_000);
        let cfg = SimConfig::with_topology(shape)
            .seed(42)
            .respawn(false)
            .max_power(MaxPowerSpec::PerLogical(Watts(40.0)))
            .open_workload(workload);
        assert_one_worker_identity(cfg, 0, SimDuration::from_secs(4), preset.name());
    }
}

/// An open-workload cell on a hybrid (two-class) preset.
fn hybrid_cfg(preset: TopologyPreset, seed: u64) -> SimConfig {
    let shape = preset.builder();
    let workload = OpenWorkload::new(
        vec![catalog::aluadd(), catalog::memrw(), catalog::pushpop()],
        1.2 * shape.n_cores() as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(3),
        floor: 0.3,
    })
    .service_work(200_000_000, 500_000_000);
    SimConfig::with_topology(shape)
        .seed(seed)
        .respawn(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(45.0)))
        .open_workload(workload)
}

/// Class-heterogeneous machines through the partitioned core:
/// `parallel(1)` stays bit-identical to strided on every hybrid
/// preset (partitioning must not perturb per-core frequency domains
/// or cross-class refits).
#[test]
fn one_worker_is_bit_identical_on_hybrid_shapes() {
    for preset in TopologyPreset::hybrids() {
        assert_one_worker_identity(
            hybrid_cfg(preset, 19),
            0,
            SimDuration::from_secs(3),
            preset.name(),
        );
    }
}

/// Worker-count invariance holds on multi-package hybrid shapes: the
/// partition-per-package split leaves each shard class-complete (every
/// package carries both classes), and the frequency-keyed residency
/// merge is schedule-independent.
#[test]
fn hybrid_multi_worker_runs_are_worker_count_invariant() {
    let duration = SimDuration::from_secs(3);
    let w2a = run_parallel(
        hybrid_cfg(TopologyPreset::BigLittle16, 5).parallel(2),
        0,
        duration,
    );
    let w2b = run_parallel(
        hybrid_cfg(TopologyPreset::BigLittle16, 5).parallel(2),
        0,
        duration,
    );
    let w4 = run_parallel(
        hybrid_cfg(TopologyPreset::Hybrid64, 5).parallel(4),
        0,
        duration,
    );
    let w8 = run_parallel(
        hybrid_cfg(TopologyPreset::Hybrid64, 5).parallel(8),
        0,
        duration,
    );
    assert_eq!(fingerprint(&w2a), fingerprint(&w2b));
    assert_eq!(fingerprint(&w4), fingerprint(&w8));
    // Hybrid residency merges by frequency across both classes'
    // ladders: both ladders must be populated after a loaded run.
    assert!(
        w4.pstate_residency.len() > 1,
        "hybrid residency should span both class ladders: {:?}",
        w4.pstate_residency
    );
}

/// The first-divergent-event diagnostics work on hybrid shapes: two
/// genuinely different cells name the first divergent event instead
/// of claiming identity.
#[test]
fn divergence_diagnostics_work_on_hybrid_shapes() {
    let text = parallel_divergence(
        hybrid_cfg(TopologyPreset::Hybrid8, 3).strided(),
        hybrid_cfg(TopologyPreset::Hybrid8, 4).parallel(1),
        SimDuration::from_secs(2),
        |_| {},
    );
    assert!(
        text.contains("diverge") || text.contains("event"),
        "diagnostics on a hybrid shape produced: {text}"
    );
}

fn preset(idx: usize) -> TopologyPreset {
    [
        TopologyPreset::XSeries445 { smt: false },
        TopologyPreset::XSeries445 { smt: true },
        TopologyPreset::Numa16,
    ][idx]
}

fn curve(idx: usize) -> LoadCurve {
    [
        LoadCurve::Constant,
        LoadCurve::Diurnal {
            period: SimDuration::from_secs(4),
            floor: 0.3,
        },
        LoadCurve::Burst {
            period: SimDuration::from_secs(3),
            duty: 0.25,
            high: 2.0,
        },
        LoadCurve::Step {
            at: SimDuration::from_secs(2),
            before: 0.4,
            after: 1.0,
        },
    ][idx]
}

/// The strided suite's open-workload cell on a multi-package preset.
fn open_cfg(preset_idx: usize, curve_idx: usize, seed: u64) -> SimConfig {
    let shape = preset(preset_idx).builder();
    let workload = OpenWorkload::new(
        vec![catalog::aluadd(), catalog::memrw(), catalog::pushpop()],
        1.2 * shape.n_cores() as f64,
    )
    .curve(curve(curve_idx))
    .service_work(200_000_000, 500_000_000);
    SimConfig::with_topology(shape)
        .seed(seed)
        .respawn(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(45.0)))
        .open_workload(workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Multi-worker partitioned runs vs the strided core on open
    /// workloads: identical arrival streams, and headline metrics
    /// within the strided suite's tolerances.
    #[test]
    fn multi_worker_matches_strided_within_tolerance(
        preset_idx in 0usize..3,
        curve_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(4);
        let strided = run_sequential(open_cfg(preset_idx, curve_idx, seed).strided(), 0, duration);
        let par = run_parallel(open_cfg(preset_idx, curve_idx, seed).parallel(4), 0, duration);

        // The thinned arrival stream is a pure function of the seed
        // and the clock, owned by one global process: *exactly*
        // preserved.
        prop_assert_eq!(strided.arrivals, par.arrivals);
        prop_assert_eq!(strided.duration, par.duration);
        prop_assert!(
            rel(strided.instructions_retired as f64, par.instructions_retired as f64) < 0.03,
            "instructions: {} vs {}", strided.instructions_retired, par.instructions_retired
        );
        prop_assert!(
            rel(strided.true_energy.0, par.true_energy.0) < 0.03,
            "energy: {:?} vs {:?}", strided.true_energy, par.true_energy
        );
        prop_assert!(
            rel(strided.estimated_energy.0, par.estimated_energy.0) < 0.03,
            "estimated energy: {:?} vs {:?}", strided.estimated_energy, par.estimated_energy
        );
        // Peak package temperature depends on task *concentration*,
        // which the partitioned placement legitimately shifts (tasks
        // route at horizon boundaries instead of continuously); only
        // gross physics divergence is ruled out here.
        prop_assert!(
            (strided.max_package_temp.0 - par.max_package_temp.0).abs() < 5.0,
            "max temp: {:?} vs {:?}", strided.max_package_temp, par.max_package_temp
        );
        // Latency percentiles stay close once both sides have enough
        // completions for percentiles to be stable.
        if strided.latency.count > 20 && par.latency.count > 20 {
            prop_assert!(
                rel(strided.latency.p50_s, par.latency.p50_s) < 0.15,
                "p50: {} vs {}", strided.latency.p50_s, par.latency.p50_s
            );
            prop_assert!(
                rel(strided.latency.p95_s, par.latency.p95_s) < 0.25,
                "p95: {} vs {}", strided.latency.p95_s, par.latency.p95_s
            );
        }
    }

    /// The partitioned engine is deterministic per seed, and the
    /// worker count never changes results — it only sizes the thread
    /// pool. Any `w ≥ 2` produces the same report as any other, and
    /// repeated runs reproduce bit-exactly.
    #[test]
    fn parallel_runs_are_deterministic_and_worker_count_invariant(
        curve_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(3);
        let w2a = run_parallel(open_cfg(2, curve_idx, seed).parallel(2), 0, duration);
        let w2b = run_parallel(open_cfg(2, curve_idx, seed).parallel(2), 0, duration);
        let w4 = run_parallel(open_cfg(2, curve_idx, seed).parallel(4), 0, duration);
        prop_assert_eq!(fingerprint(&w2a), fingerprint(&w2b));
        prop_assert_eq!(fingerprint(&w2a), fingerprint(&w4));
    }

    /// Cross-partition handoffs queued at a horizon boundary are
    /// applied exactly once (contiguous global sequence numbers) and
    /// in the same deterministic order for every worker count; one
    /// worker runs a single whole-machine partition, so its log is
    /// empty by construction.
    #[test]
    fn handoffs_are_exactly_once_and_worker_count_invariant(
        curve_idx in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let duration = SimDuration::from_secs(3);
        let log_of = |workers: usize| {
            let mut sim = ParallelSimulation::new(open_cfg(2, curve_idx, seed).parallel(workers));
            sim.run_for(duration);
            sim.handoff_log().to_vec()
        };
        let w1 = log_of(1);
        let w2 = log_of(2);
        let w4 = log_of(4);
        prop_assert!(w1.is_empty(), "single-partition mode must not hand off");
        prop_assert_eq!(&w2, &w4);
        for (i, h) in w2.iter().enumerate() {
            // Exactly-once application: the sequence is contiguous,
            // each record names distinct partitions, and boundaries
            // are non-decreasing horizon instants.
            prop_assert_eq!(h.seq, i as u64);
            prop_assert!(h.from_shard != h.to_shard);
            if i > 0 {
                prop_assert!(w2[i - 1].at <= h.at);
            }
        }
    }
}

/// A skewed closed workload must actually exercise the handoff queue
/// — guards against the rebalancer silently never firing. Half the
/// partitions are loaded with a queued surplus of long tasks; the
/// other half drain early and must receive the surplus when their
/// CPUs go idle.
#[test]
fn drained_partitions_receive_handoffs() {
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(false)
        .throttling(false)
        .respawn(false)
        .seed(11)
        .parallel(4);
    let mut sim = ParallelSimulation::new(cfg);
    assert_eq!(sim.partitions(), 8);
    let short = catalog::aluadd().with_total_work(200_000_000); // ~50 ms
    let long = catalog::aluadd().with_total_work(20_000_000_000); // ~4.5 s
                                                                  // One short task per partition, then 12 long tasks: least-loaded
                                                                  // routing parks a *second* queued long on partitions 0–3 only.
    sim.spawn_mix(&[short], 8);
    sim.spawn_mix(&[long], 12);
    sim.run_for(SimDuration::from_secs(8));
    let log = sim.handoff_log();
    assert!(
        !log.is_empty(),
        "partitions drained with queued surplus elsewhere, yet no handoffs fired"
    );
    for h in log {
        assert!(h.from_shard < 4, "surplus lives on partitions 0-3: {h:?}");
        assert!(h.to_shard >= 4, "deficit lives on partitions 4-7: {h:?}");
    }
    // Exactly-once: every moved task completes exactly once overall
    // (20 tasks, all bounded, all must finish within the run).
    assert_eq!(sim.report().completions, 20);
}
