//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 6).
//!
//! Each experiment is a function returning a result struct whose
//! `Display` prints the same rows or series the paper reports; the
//! binaries in `src/bin/` are thin wrappers, and `exp_all` runs the
//! complete evaluation. Absolute numbers differ from the paper (the
//! substrate is a simulator, not an xSeries 445), but the shapes —
//! who wins, by roughly what factor, where the crossovers fall — are
//! the reproduction targets; see `EXPERIMENTS.md`.

pub mod experiments;
pub mod fmt;

/// Standard multi-seed set for averaged experiments.
pub const SEEDS: [u64; 5] = [11, 23, 37, 51, 73];

fn flag_requested(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Returns `true` when the binary was invoked with `--quick`
/// (shortened runs for smoke testing; full runs match paper scale).
pub fn quick_requested() -> bool {
    flag_requested("--quick")
}

/// Returns `true` when the binary was invoked with `--smoke` (the
/// reduced sweep matrix CI runs on every push).
pub fn smoke_requested() -> bool {
    flag_requested("--smoke")
}

/// Returns `true` when the binary was invoked with `--trace` (emit a
/// Perfetto trace and a metrics CSV instead of / alongside the tables).
pub fn trace_requested() -> bool {
    flag_requested("--trace")
}

/// Writes a results artefact (CSV or text) under `results/`.
pub fn write_artifact(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// The heterogeneous per-package cooling factors of the simulated
/// testbed, tuned so Table 3's pattern emerges: packages 0 and 3 cool
/// poorly (their hardware threads 0/8 and 3/11 throttle most),
/// package 4 is middling (threads 4/12 throttle a little without
/// energy balancing), and the rest never exceed the 38 degC limit even
/// running bitcnts.
pub fn testbed_cooling_factors() -> Vec<f64> {
    vec![1.25, 0.62, 0.65, 1.28, 0.85, 0.60, 0.63, 0.66]
}
