//! Benchmarks balancing-pass cost across the topology ladder, scan
//! (pre-aggregate) vs aggregate-tree group selection, for both
//! balancers; artifact `results/balance_bench.csv`. `--quick` reduces
//! the timed rounds for CI while keeping the full ladder through
//! numa64's 256 CPUs.

fn main() {
    let quick = ebs_bench::quick_requested() || ebs_bench::smoke_requested();
    let bench = ebs_bench::experiments::balance_bench::run(quick);
    ebs_bench::write_artifact("balance_bench.csv", &bench.to_csv()).expect("balance_bench.csv");
    println!("{bench}");
}
