//! Regenerates Figure 10 (hot task migration with multiple tasks).

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::fig10::run(quick));
}
