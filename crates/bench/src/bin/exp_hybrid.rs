//! Runs the heterogeneous-hardware study: class-aware vs class-blind
//! energy balancing on a two-package hybrid machine, swept across P/E
//! splits and open-workload curves. Writes the grid to
//! `results/hybrid.csv` and exits non-zero if class-aware balancing
//! fails to beat class-blind in gips/joule on at least one cell.

use std::process::ExitCode;

fn main() -> ExitCode {
    let smoke = ebs_bench::smoke_requested() || ebs_bench::quick_requested();
    let study = ebs_bench::experiments::hybrid::run(smoke);
    ebs_bench::write_artifact("hybrid.csv", &study.to_csv()).expect("hybrid csv");
    print!("{study}");
    if study.any_aware_win() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
