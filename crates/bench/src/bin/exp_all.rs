//! Runs the complete evaluation: every table and figure, in paper
//! order, writing CSV artefacts under `results/`.

use ebs_bench::experiments as exp;

fn main() {
    let quick = ebs_bench::quick_requested();
    let mode = if quick { "quick" } else { "full" };
    println!("== EBS evaluation ({mode} mode) ==\n");

    let t1 = exp::table1::run(quick);
    println!("{t1}");
    let t2 = exp::table2::run(quick);
    println!("{t2}");
    let f3 = exp::fig3::run(quick);
    ebs_bench::write_artifact("fig3.csv", &f3.to_csv()).expect("fig3.csv");
    println!("{f3}");
    let f67 = exp::fig67::run(quick);
    ebs_bench::write_artifact("fig6.csv", &f67.disabled.trace.to_csv()).expect("fig6.csv");
    ebs_bench::write_artifact("fig7.csv", &f67.enabled.trace.to_csv()).expect("fig7.csv");
    println!("{f67}");
    let mig = exp::migrations::run(quick);
    println!("{mig}");
    let t3 = exp::table3::run(quick);
    println!("{t3}");
    let f8 = exp::fig8::run(quick);
    println!("{f8}");
    let f9 = exp::fig9::run(quick);
    ebs_bench::write_artifact("fig9.csv", &f9.to_csv()).expect("fig9.csv");
    println!("{f9}");
    let f10 = exp::fig10::run(quick);
    println!("{f10}");
    let ab = exp::ablation::run(quick);
    println!("{ab}");
    let dv = exp::dvfs::run(quick);
    ebs_bench::write_artifact("dvfs.csv", &dv.to_csv()).expect("dvfs.csv");
    println!("{dv}");
    let fl = exp::fleet::run(quick);
    ebs_bench::write_artifact("fleet.csv", &fl.to_csv()).expect("fleet.csv");
    println!("{fl}");

    println!("done; CSV artefacts in results/");
}
