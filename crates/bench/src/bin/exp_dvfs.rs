//! Runs the DVFS-vs-hlt thermal enforcement study.

fn main() {
    let quick = ebs_bench::quick_requested();
    let study = ebs_bench::experiments::dvfs::run(quick);
    ebs_bench::write_artifact("dvfs.csv", &study.to_csv()).expect("dvfs.csv");
    println!("{study}");
}
