//! Runs the DVFS-vs-hlt thermal enforcement study. With `--trace` it
//! instead runs one traced cell and exports a Perfetto timeline
//! (`results/trace_dvfs.json`) plus the metrics-registry CSV
//! (`results/metrics_dvfs.csv`).

fn main() {
    let quick = ebs_bench::quick_requested();
    if ebs_bench::trace_requested() {
        let traced = ebs_bench::experiments::dvfs::traced_run(quick);
        ebs_bench::write_artifact("trace_dvfs.json", &traced.perfetto_json)
            .expect("trace_dvfs.json");
        ebs_bench::write_artifact("metrics_dvfs.csv", &traced.metrics_csv)
            .expect("metrics_dvfs.csv");
        print!("{traced}");
        return;
    }
    let study = ebs_bench::experiments::dvfs::run(quick);
    ebs_bench::write_artifact("dvfs.csv", &study.to_csv()).expect("dvfs.csv");
    println!("{study}");
}
