//! Regenerates Figures 6 and 7 (thermal power of the eight CPUs with
//! energy balancing disabled/enabled).

fn main() {
    let quick = ebs_bench::quick_requested();
    let fig = ebs_bench::experiments::fig67::run(quick);
    let p6 = ebs_bench::write_artifact("fig6.csv", &fig.disabled.trace.to_csv())
        .expect("write fig6.csv");
    let p7 =
        ebs_bench::write_artifact("fig7.csv", &fig.enabled.trace.to_csv()).expect("write fig7.csv");
    println!("{fig}");
    println!("curves written to {} and {}", p6.display(), p7.display());
}
