//! Regenerates Table 3 (CPU throttling percentages and throughput).

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::table3::run(quick));
}
