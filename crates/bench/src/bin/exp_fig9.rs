//! Regenerates Figure 9 (hot task migration of a single task).

fn main() {
    let quick = ebs_bench::quick_requested();
    let fig = ebs_bench::experiments::fig9::run(quick);
    let path = ebs_bench::write_artifact("fig9.csv", &fig.to_csv()).expect("write fig9.csv");
    println!("{fig}");
    println!("visit trace written to {}", path.display());
}
