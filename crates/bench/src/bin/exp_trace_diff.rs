//! Trace-diff debugging tool: replays one scaling-sweep cell on both
//! engine cores (stride cap pinned to one tick, event tracing on) and
//! prints the first divergent event, or that the traced streams
//! match.
//!
//! Usage:
//!
//! ```text
//! exp_trace_diff [topology/curve/policy] [--seed-b N]
//! ```
//!
//! With `--seed-b N` the cell is instead replayed on the strided core
//! under its sweep seed and seed `N` — a demonstration mode whose
//! divergence is expected at the first seed-driven arrival.

use ebs_bench::experiments::trace_diff;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut key: Option<String> = None;
    let mut seed_b: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--seed-b" {
            seed_b = args.get(i + 1).and_then(|s| s.parse().ok());
            i += 2;
        } else {
            if !args[i].starts_with("--") && key.is_none() {
                key = Some(args[i].clone());
            }
            i += 1;
        }
    }
    let key = key.as_deref().unwrap_or(trace_diff::DEFAULT_KEY);
    let result = match seed_b {
        Some(seed) => trace_diff::seeds(key, seed),
        None => trace_diff::engines(key),
    };
    match result {
        Ok(diff) => {
            print!("{diff}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("trace-diff error: {message}");
            ExitCode::FAILURE
        }
    }
}
