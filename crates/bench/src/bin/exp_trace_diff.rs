//! Trace-diff debugging tool: replays one scaling-sweep cell on both
//! engine cores (stride cap pinned to one tick, event tracing on) and
//! prints the first divergent event, or that the traced streams
//! match.
//!
//! Usage:
//!
//! ```text
//! exp_trace_diff [topology/curve/policy] [--seed-b N]
//! exp_trace_diff [topology/curve/policy] --from-snapshot results/<group>.snap
//! ```
//!
//! With `--seed-b N` the cell is instead replayed on the strided core
//! under its sweep seed and seed `N` — a demonstration mode whose
//! divergence is expected at the first seed-driven arrival.
//!
//! With `--from-snapshot <path>` the cell is forked twice from the
//! named `exp_scaling --fork` checkpoint and the two forks are
//! diffed — the bisection mode for a failed state-hash gate.

use ebs_bench::experiments::trace_diff;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut key: Option<String> = None;
    let mut seed_b: Option<u64> = None;
    let mut snapshot: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--seed-b" {
            seed_b = args.get(i + 1).and_then(|s| s.parse().ok());
            i += 2;
        } else if args[i] == "--from-snapshot" {
            snapshot = args.get(i + 1).cloned();
            i += 2;
        } else {
            if !args[i].starts_with("--") && key.is_none() {
                key = Some(args[i].clone());
            }
            i += 1;
        }
    }
    let key = key.as_deref().unwrap_or(trace_diff::DEFAULT_KEY);
    let result = match (snapshot, seed_b) {
        (Some(path), _) => trace_diff::from_snapshot(&path, key),
        (None, Some(seed)) => trace_diff::seeds(key, seed),
        (None, None) => trace_diff::engines(key),
    };
    match result {
        Ok(diff) => {
            print!("{diff}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("trace-diff error: {message}");
            ExitCode::FAILURE
        }
    }
}
