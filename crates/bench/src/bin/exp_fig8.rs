//! Regenerates Figure 8 (throughput gain vs workload homogeneity).

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::fig8::run(quick));
}
