//! CI regression gate over the scaling sweep: compares the strided
//! (`results/scaling.csv`) and fixed-tick (`results/scaling_fixed.csv`)
//! legs of `exp_scaling --smoke` cell by cell and exits non-zero when
//! any headline metric drifts past the equivalence-suite tolerances.
//! Optional arguments override the two artifact paths, strided first.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strided = args
        .first()
        .map(String::as_str)
        .unwrap_or("results/scaling.csv");
    let fixed = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("results/scaling_fixed.csv");
    match ebs_bench::experiments::scaling_gate::run(strided, fixed) {
        Ok(result) => {
            print!("{result}");
            if result.passed() {
                ExitCode::SUCCESS
            } else {
                // Localise the first violation: replay its cell with
                // event tracing at a one-tick stride cap and name the
                // first divergent scheduling event.
                if let Some(v) = result.violations.first() {
                    println!(
                        "replaying {} with event tracing to localise the drift:",
                        v.key
                    );
                    print!(
                        "{}",
                        ebs_bench::experiments::scaling_gate::trace_diff_summary(&v.key)
                    );
                }
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("scaling gate error: {message}");
            ExitCode::FAILURE
        }
    }
}
