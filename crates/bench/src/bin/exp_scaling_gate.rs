//! CI regression gate over the scaling sweep: compares the strided
//! (`results/scaling.csv`) and fixed-tick (`results/scaling_fixed.csv`)
//! legs of `exp_scaling --smoke` cell by cell and exits non-zero when
//! any headline metric drifts past the equivalence-suite tolerances.
//! Optional arguments override the two artifact paths, strided first.
//!
//! When `results/scaling_fork_hashes.csv` exists (written by
//! `exp_scaling --fork`), the state-hash gate runs too: every fork
//! cell's end-state hash must match its straight-leg twin exactly —
//! an equality oracle that does not inherit the ≥20-completion
//! percentile gating hole of the metric tolerances.

use std::process::ExitCode;

const HASHES: &str = "results/scaling_fork_hashes.csv";

/// Runs the state-hash gate when its artifact exists. `true` = pass
/// (including "artifact absent": the fork sweep did not run).
fn hash_gate_passes() -> bool {
    if !std::path::Path::new(HASHES).exists() {
        return true;
    }
    match ebs_bench::experiments::scaling_gate::hash_gate(HASHES) {
        Ok((cells, mismatched)) if mismatched.is_empty() => {
            println!("state-hash gate: {cells} fork cells, all hashes identical");
            true
        }
        Ok((cells, mismatched)) => {
            println!(
                "state-hash gate: {}/{cells} fork cells DIVERGED: {}",
                mismatched.len(),
                mismatched.join(", ")
            );
            false
        }
        Err(message) => {
            eprintln!("state-hash gate error: {message}");
            false
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strided = args
        .first()
        .map(String::as_str)
        .unwrap_or("results/scaling.csv");
    let fixed = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("results/scaling_fixed.csv");
    match ebs_bench::experiments::scaling_gate::run(strided, fixed) {
        Ok(result) => {
            print!("{result}");
            if result.passed() {
                if hash_gate_passes() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            } else {
                // Localise the first violation: replay its cell with
                // event tracing at a one-tick stride cap and name the
                // first divergent scheduling event.
                if let Some(v) = result.violations.first() {
                    println!(
                        "replaying {} with event tracing to localise the drift:",
                        v.key
                    );
                    print!(
                        "{}",
                        ebs_bench::experiments::scaling_gate::trace_diff_summary(&v.key)
                    );
                }
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("scaling gate error: {message}");
            ExitCode::FAILURE
        }
    }
}
