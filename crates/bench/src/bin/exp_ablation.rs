//! Runs the Section 4.3 balancer-metric ablation (beyond the paper).

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::ablation::run(quick));
}
