//! Regenerates Table 2 (program power levels).

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::table2::run(quick));
}
