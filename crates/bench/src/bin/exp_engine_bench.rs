//! Benchmarks the engine cores: simulated seconds per wall second for
//! the fixed-tick, variable-stride, and partitioned (parallel) loops
//! across the topology ladder. `--quick` runs the reduced two-shape
//! matrix CI exercises.
//!
//! On the full ladder, the numa64 shape (256 CPUs) gates the parallel
//! core: its simulated-seconds-per-wall-second must reach at least 2x
//! the single-thread strided core, with the retired work matching —
//! skipped on hosts without parallelism, where partitions step
//! serially and no speedup is physically possible.

fn main() {
    let quick = ebs_bench::quick_requested();
    let bench = ebs_bench::experiments::engine_bench::run(quick);
    ebs_bench::write_artifact("engine_bench.csv", &bench.to_csv()).expect("engine_bench.csv");
    println!("{bench}");
    if quick {
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores <= 1 {
        println!("numa64 parallel speedup gate: skipped (single-CPU host)");
        return;
    }
    let strided = bench
        .cell("numa64", "strided", "off")
        .expect("numa64 strided cell");
    let par = bench
        .cell("numa64", "par4", "off")
        .expect("numa64 par4 cell");
    // Counter verification first: a speedup that drops work is noise.
    let rel =
        (strided.instructions as f64 - par.instructions as f64).abs() / strided.instructions as f64;
    assert!(
        rel < 0.03,
        "numa64 par4 retired work drifted {rel} from strided"
    );
    let speedup = bench
        .parallel_speedup("numa64", "par4")
        .expect("numa64 speedup");
    println!("numa64 parallel speedup: {speedup:.2}x (par4 over single-thread strided)");
    assert!(
        speedup >= 2.0,
        "numa64 parallel core below the 2x gate: {speedup:.2}x"
    );
}
