//! Benchmarks the engine cores: simulated seconds per wall second for
//! the fixed-tick and variable-stride loops across the topology
//! ladder. `--quick` runs the reduced two-shape matrix CI exercises.

fn main() {
    let quick = ebs_bench::quick_requested();
    let bench = ebs_bench::experiments::engine_bench::run(quick);
    ebs_bench::write_artifact("engine_bench.csv", &bench.to_csv()).expect("engine_bench.csv");
    println!("{bench}");
}
