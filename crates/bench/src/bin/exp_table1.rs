//! Regenerates Table 1 (successive-timeslice power changes).

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::table1::run(quick));
}
