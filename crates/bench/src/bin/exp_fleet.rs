//! Runs the fleet headline: a diurnal open workload dispatched across
//! a 64-host mixed rack (8 hosts with `--smoke`), stock vs power-aware
//! placement crossed with `hlt` vs DVFS budget enforcement. Writes
//! per-epoch fleet metrics to `results/fleet.csv` and exits non-zero
//! if the worker-invariance gate fails (the failure message names the
//! first divergent host and event).

use std::process::ExitCode;

fn main() -> ExitCode {
    let smoke = ebs_bench::smoke_requested() || ebs_bench::quick_requested();
    let sweep = ebs_bench::experiments::fleet::run(smoke);
    ebs_bench::write_artifact("fleet.csv", &sweep.to_csv()).expect("fleet csv");
    print!("{sweep}");
    if sweep.invariance_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
