//! Regenerates the Section 6.1 migration counts.

fn main() {
    let quick = ebs_bench::quick_requested();
    println!("{}", ebs_bench::experiments::migrations::run(quick));
}
