//! Regenerates Figure 3 (temperature vs power vs thermal power).

fn main() {
    let quick = ebs_bench::quick_requested();
    let fig = ebs_bench::experiments::fig3::run(quick);
    let path = ebs_bench::write_artifact("fig3.csv", &fig.to_csv()).expect("write fig3.csv");
    println!("{fig}");
    println!("curves written to {}", path.display());
}
