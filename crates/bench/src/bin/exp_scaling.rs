//! Runs the scenario-engine scaling sweep: the policy matrix across
//! generated topologies and open-workload load curves, sharded through
//! the capped parallel runner. `--smoke` (or `--quick`) runs the
//! reduced 24-cell matrix CI exercises on every push; `--fixed` runs
//! the sweep on the fixed-tick engine core and writes
//! `results/scaling_fixed.csv` — the baseline leg of the CI
//! fixed-vs-strided regression gate (`exp_scaling_gate`).
//!
//! `--fork` runs the checkpoint/fork sweep instead: both legs of the
//! warm-up-amortized matrix (per-cell warm-ups vs one shared warm-up
//! per topology×curve group, forked from its `ebs-store` checkpoint),
//! verifies they are byte-identical cell for cell, and writes
//! `results/scaling_fork.csv`, `results/scaling_straight.csv`,
//! `results/scaling_fork_hashes.csv` (the state-hash oracle the gate
//! consumes), and one `results/*.snap` checkpoint per group (replay
//! them with `exp_trace_diff --from-snapshot`). Exits non-zero when
//! the legs diverge.

use std::process::ExitCode;

fn main() -> ExitCode {
    let smoke = ebs_bench::smoke_requested() || ebs_bench::quick_requested();
    let fixed = std::env::args().any(|a| a == "--fixed");
    let fork = std::env::args().any(|a| a == "--fork");
    if fork {
        let cmp = ebs_bench::experiments::scaling::run_fork_compare(smoke);
        ebs_bench::write_artifact("scaling_fork.csv", &cmp.forked.sweep.to_csv())
            .expect("fork csv");
        ebs_bench::write_artifact("scaling_straight.csv", &cmp.straight.sweep.to_csv())
            .expect("straight csv");
        ebs_bench::write_artifact("scaling_fork_hashes.csv", &cmp.hashes_csv())
            .expect("hashes csv");
        for (key, image) in &cmp.snapshots {
            let name = format!("{}.snap", key.replace('/', "-"));
            image
                .write_file(&std::path::Path::new("results").join(name))
                .expect("snap file");
        }
        print!("{cmp}");
        return if cmp.identical() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    let sweep = ebs_bench::experiments::scaling::run_with_engine(smoke, !fixed);
    let artifact = if fixed {
        "scaling_fixed.csv"
    } else {
        "scaling.csv"
    };
    ebs_bench::write_artifact(artifact, &sweep.to_csv()).expect("scaling csv");
    println!("{sweep}");
    ExitCode::SUCCESS
}
