//! Runs the scenario-engine scaling sweep: the policy matrix across
//! generated topologies and open-workload load curves, sharded through
//! the capped parallel runner. `--smoke` (or `--quick`) runs the
//! reduced 24-cell matrix CI exercises on every push.

fn main() {
    let smoke = ebs_bench::smoke_requested() || ebs_bench::quick_requested();
    let sweep = ebs_bench::experiments::scaling::run(smoke);
    ebs_bench::write_artifact("scaling.csv", &sweep.to_csv()).expect("scaling.csv");
    println!("{sweep}");
}
