//! Runs the scenario-engine scaling sweep: the policy matrix across
//! generated topologies and open-workload load curves, sharded through
//! the capped parallel runner. `--smoke` (or `--quick`) runs the
//! reduced 24-cell matrix CI exercises on every push; `--fixed` runs
//! the sweep on the fixed-tick engine core and writes
//! `results/scaling_fixed.csv` — the baseline leg of the CI
//! fixed-vs-strided regression gate (`exp_scaling_gate`).

fn main() {
    let smoke = ebs_bench::smoke_requested() || ebs_bench::quick_requested();
    let fixed = std::env::args().any(|a| a == "--fixed");
    let sweep = ebs_bench::experiments::scaling::run_with_engine(smoke, !fixed);
    let artifact = if fixed {
        "scaling_fixed.csv"
    } else {
        "scaling.csv"
    };
    ebs_bench::write_artifact(artifact, &sweep.to_csv()).expect("scaling csv");
    println!("{sweep}");
}
