//! Trace-diff debugging for the gates: replays one scaling-sweep cell
//! with event tracing on and reports the first divergent event.
//!
//! Two modes:
//!
//! - [`engines`] (the gate's failure path): fixed-tick vs strided
//!   with the stride cap pinned to one tick. At cap == tick the two
//!   cores must be bit-identical, so the first divergent event *is*
//!   the regression, named as a typed scheduling event with its
//!   timestamp instead of a whole-report fingerprint mismatch.
//!   Identical streams mean the gate's drift came from real strides —
//!   tolerance territory, not broken determinism.
//! - [`seeds`]: the same strided cell under two seeds, a
//!   demonstration mode whose divergence is expected at the first
//!   seed-driven arrival.

use crate::experiments::scaling;
use ebs_sim::stride_divergence;
use ebs_units::SimDuration;
use std::fmt;

/// The cell replayed when the binary gets no key argument: a DVFS
/// smoke cell, where the stride machinery has the most moving parts.
pub const DEFAULT_KEY: &str = "xseries445/diurnal/stock+dvfs";

/// The replay horizon: the smoke sweep's own cell duration — long
/// enough for arrivals, migrations, and governor decisions, short
/// enough to run inside an already-failing CI job.
fn horizon() -> SimDuration {
    SimDuration::from_secs(6)
}

/// One trace-diff outcome.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// The `topology/curve/policy` cell key replayed.
    pub key: String,
    /// Human description of what was compared.
    pub mode: String,
    /// The verdict line: the first divergent event, or a statement
    /// that the traced streams match.
    pub summary: String,
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace-diff: cell {} ({}, {:.0} s replay)",
            self.key,
            self.mode,
            horizon().as_secs_f64()
        )?;
        writeln!(f, "  {}", self.summary)
    }
}

/// Replays `key` on the fixed-tick core against the strided core at a
/// one-tick stride cap.
///
/// # Errors
///
/// Returns a message when `key` names no sweep cell.
pub fn engines(key: &str) -> Result<TraceDiff, String> {
    let (strided, fixed) = scaling::cell_configs(key)
        .ok_or_else(|| format!("no sweep cell named {key} (expected topology/curve/policy)"))?;
    let summary = stride_divergence(
        fixed,
        strided.max_stride(SimDuration::from_millis(1)),
        horizon(),
        |_| {},
    );
    Ok(TraceDiff {
        key: key.to_string(),
        mode: "fixed-tick vs strided at cap = tick".to_string(),
        summary,
    })
}

/// Replays `key` on the strided core under its sweep seed and
/// `seed_b`.
///
/// # Errors
///
/// Returns a message when `key` names no sweep cell.
pub fn seeds(key: &str, seed_b: u64) -> Result<TraceDiff, String> {
    let (strided, _) = scaling::cell_configs(key)
        .ok_or_else(|| format!("no sweep cell named {key} (expected topology/curve/policy)"))?;
    let summary = stride_divergence(strided.clone(), strided.seed(seed_b), horizon(), |_| {});
    Ok(TraceDiff {
        key: key.to_string(),
        mode: format!("strided, sweep seed vs seed {seed_b}"),
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_replay_of_a_smoke_cell_matches_at_cap_tick() {
        // The equivalence guarantee, observed through the event
        // streams: at cap == tick the cores emit identical traces.
        let diff = engines("dual2/burst/ea+dvfs").expect("known cell");
        assert!(
            diff.summary.contains("identical"),
            "cores diverged at cap = tick: {}",
            diff.summary
        );
        assert!(diff.to_string().contains("dual2/burst/ea+dvfs"));
    }

    #[test]
    fn seed_replay_names_the_first_divergent_event() {
        // Different seeds shift the first open arrival, so the diff
        // must localise a concrete event, not just report a mismatch.
        let diff = seeds("dual2/diurnal/stock+hlt", 77).expect("known cell");
        assert!(
            diff.summary.contains("first divergent event"),
            "seeds did not diverge: {}",
            diff.summary
        );
    }

    #[test]
    fn unknown_keys_are_an_error() {
        assert!(engines("nope/nope/nope").is_err());
        assert!(seeds("nope/nope/nope", 1).is_err());
    }
}
