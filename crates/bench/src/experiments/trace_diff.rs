//! Trace-diff debugging for the gates: replays one scaling-sweep cell
//! with event tracing on and reports the first divergent event.
//!
//! Two modes:
//!
//! - [`engines`] (the gate's failure path): fixed-tick vs strided
//!   with the stride cap pinned to one tick. At cap == tick the two
//!   cores must be bit-identical, so the first divergent event *is*
//!   the regression, named as a typed scheduling event with its
//!   timestamp instead of a whole-report fingerprint mismatch.
//!   Identical streams mean the gate's drift came from real strides —
//!   tolerance territory, not broken determinism.
//! - [`seeds`]: the same strided cell under two seeds, a
//!   demonstration mode whose divergence is expected at the first
//!   seed-driven arrival.
//! - [`from_snapshot`]: replays a `results/*.snap` checkpoint
//!   (written by `exp_scaling --fork`) twice under one cell's config
//!   and diffs the forks — the bisection mode for a failed state-hash
//!   gate, confirming (or localising) fork determinism from the exact
//!   checkpoint CI used.

use crate::experiments::scaling;
use ebs_sim::{stride_divergence, SimEngine, Simulation};
use ebs_store::StateImage;
use ebs_trace::{first_divergence, TraceEvent};
use ebs_units::SimDuration;
use std::fmt;
use std::path::Path;

/// The cell replayed when the binary gets no key argument: a DVFS
/// smoke cell, where the stride machinery has the most moving parts.
pub const DEFAULT_KEY: &str = "xseries445/diurnal/stock+dvfs";

/// The replay horizon: the smoke sweep's own cell duration — long
/// enough for arrivals, migrations, and governor decisions, short
/// enough to run inside an already-failing CI job.
fn horizon() -> SimDuration {
    SimDuration::from_secs(6)
}

/// One trace-diff outcome.
#[derive(Clone, Debug)]
pub struct TraceDiff {
    /// The `topology/curve/policy` cell key replayed.
    pub key: String,
    /// Human description of what was compared.
    pub mode: String,
    /// The verdict line: the first divergent event, or a statement
    /// that the traced streams match.
    pub summary: String,
}

impl fmt::Display for TraceDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace-diff: cell {} ({}, {:.0} s replay)",
            self.key,
            self.mode,
            horizon().as_secs_f64()
        )?;
        writeln!(f, "  {}", self.summary)
    }
}

/// Replays `key` on the fixed-tick core against the strided core at a
/// one-tick stride cap.
///
/// # Errors
///
/// Returns a message when `key` names no sweep cell.
pub fn engines(key: &str) -> Result<TraceDiff, String> {
    let (strided, fixed) = scaling::cell_configs(key)
        .ok_or_else(|| format!("no sweep cell named {key} (expected topology/curve/policy)"))?;
    let summary = stride_divergence(
        fixed,
        strided.max_stride(SimDuration::from_millis(1)),
        horizon(),
        |_| {},
    );
    Ok(TraceDiff {
        key: key.to_string(),
        mode: "fixed-tick vs strided at cap = tick".to_string(),
        summary,
    })
}

/// Replays `key` on the strided core under its sweep seed and
/// `seed_b`.
///
/// # Errors
///
/// Returns a message when `key` names no sweep cell.
pub fn seeds(key: &str, seed_b: u64) -> Result<TraceDiff, String> {
    let (strided, _) = scaling::cell_configs(key)
        .ok_or_else(|| format!("no sweep cell named {key} (expected topology/curve/policy)"))?;
    let summary = stride_divergence(strided.clone(), strided.seed(seed_b), horizon(), |_| {});
    Ok(TraceDiff {
        key: key.to_string(),
        mode: format!("strided, sweep seed vs seed {seed_b}"),
        summary,
    })
}

/// Replays the checkpoint at `snap_path` twice under `key`'s strided
/// cell config with event tracing on and diffs the two forks.
///
/// Identical event streams *and* equal end-state hashes mean the fork
/// is deterministic from that checkpoint — a state-hash gate failure
/// then points at the straight leg, not the fork machinery. A
/// divergent event localises nondeterminism to its first observable
/// effect; matching streams with differing hashes push the hunt
/// outside the traced event set.
///
/// # Errors
///
/// Returns a message when the snapshot cannot be read, `key` names no
/// sweep cell, or the image does not fit the cell's topology.
pub fn from_snapshot(snap_path: &str, key: &str) -> Result<TraceDiff, String> {
    let image = StateImage::read_file(Path::new(snap_path))
        .map_err(|e| format!("cannot read snapshot {snap_path}: {e}"))?;
    let (strided, _) = scaling::cell_configs(key)
        .ok_or_else(|| format!("no sweep cell named {key} (expected topology/curve/policy)"))?;
    let cfg = strided.trace_events(true);
    let fork = || -> Result<(Vec<TraceEvent>, u64), String> {
        let mut sim = Simulation::from_snapshot(cfg.clone(), &image)
            .map_err(|e| format!("snapshot {snap_path} does not fit cell {key}: {e}"))?;
        sim.run_for(horizon());
        let events = sim.events().map(|e| e.to_vec()).unwrap_or_default();
        Ok((events, sim.state_hash()))
    };
    let (events_a, hash_a) = fork()?;
    let (events_b, hash_b) = fork()?;
    let summary = match first_divergence(&events_a, &events_b) {
        None if hash_a == hash_b => format!(
            "fork deterministic: event streams identical ({} events), end-state hash {hash_a:016x}",
            events_a.len()
        ),
        None => format!(
            "event streams identical ({} events) but end-state hashes differ \
             ({hash_a:016x} vs {hash_b:016x}) — divergence is outside the traced event set",
            events_a.len()
        ),
        Some(d) => format!("first divergent event — {d}"),
    };
    Ok(TraceDiff {
        key: key.to_string(),
        mode: format!("forked twice from {snap_path}"),
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_replay_of_a_smoke_cell_matches_at_cap_tick() {
        // The equivalence guarantee, observed through the event
        // streams: at cap == tick the cores emit identical traces.
        let diff = engines("dual2/burst/ea+dvfs").expect("known cell");
        assert!(
            diff.summary.contains("identical"),
            "cores diverged at cap = tick: {}",
            diff.summary
        );
        assert!(diff.to_string().contains("dual2/burst/ea+dvfs"));
    }

    #[test]
    fn seed_replay_names_the_first_divergent_event() {
        // Different seeds shift the first open arrival, so the diff
        // must localise a concrete event, not just report a mismatch.
        let diff = seeds("dual2/diurnal/stock+hlt", 77).expect("known cell");
        assert!(
            diff.summary.contains("first divergent event"),
            "seeds did not diverge: {}",
            diff.summary
        );
    }

    #[test]
    fn snapshot_replay_confirms_fork_determinism() {
        // Warm a small cell up, checkpoint it to disk, and replay the
        // file through the bisection mode: both forks must agree.
        let key = "dual2/burst/stock+hlt";
        let (strided, _) = scaling::cell_configs(key).expect("known cell");
        let mut warmup = Simulation::new(strided);
        warmup.run_for(SimDuration::from_secs(1));
        let path = std::env::temp_dir().join(format!("ebs-trace-diff-{}.snap", std::process::id()));
        warmup.snapshot().write_file(&path).expect("write snapshot");
        let diff = from_snapshot(path.to_str().expect("utf-8 path"), key).expect("replay");
        let _ = std::fs::remove_file(&path);
        assert!(
            diff.summary.contains("fork deterministic"),
            "{}",
            diff.summary
        );
    }

    #[test]
    fn snapshot_replay_rejects_missing_files_and_bad_cells() {
        assert!(from_snapshot("/nonexistent/no.snap", "dual2/burst/stock+hlt").is_err());
        let path =
            std::env::temp_dir().join(format!("ebs-trace-diff-bad-{}.snap", std::process::id()));
        let mut sim = Simulation::new(scaling::cell_configs("dual2/burst/stock+hlt").unwrap().0);
        sim.run_for(SimDuration::from_millis(100));
        sim.snapshot().write_file(&path).expect("write snapshot");
        // A 2-package image must not restore into a 16-package cell.
        let err = from_snapshot(path.to_str().unwrap(), "numa16/diurnal/stock+hlt");
        let _ = std::fs::remove_file(&path);
        assert!(err.is_err(), "shape-mismatched snapshot was accepted");
    }

    #[test]
    fn unknown_keys_are_an_error() {
        assert!(engines("nope/nope/nope").is_err());
        assert!(seeds("nope/nope/nope", 1).is_err());
    }
}
