//! Figures 6 and 7: thermal power of the eight CPUs with energy
//! balancing disabled (Fig. 6) and enabled (Fig. 7).
//!
//! Setup per Section 6.1: SMT disabled, maximum power 60 W for every
//! CPU, the mixed workload of Table 2 started three times each
//! (18 tasks), no throttling — the 50 W line is the *hypothetical*
//! limit the paper draws to show which CPUs would have to throttle.

use ebs_sim::{MaxPowerSpec, SimConfig, Simulation, ThermalTrace};
use ebs_units::{SimDuration, SimTime, Watts};
use ebs_workloads::section61_mix;

/// The hypothetical limit line of the reproduction.
///
/// The paper draws its line at 50 W; our absolute thermal-power levels
/// sit ~3 W higher because the calibrated estimator folds the
/// temperature-dependent leakage of the operating range into its
/// weights, so the analogous line — just above the balanced band,
/// below the unbalanced peaks — is 55 W.
pub const LIMIT: Watts = Watts(55.0);

/// Result of one of the two runs.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The thermal-power trace of all CPUs.
    pub trace: ThermalTrace,
    /// Steady-state band (min, max) of thermal power across CPUs.
    pub band: (Watts, Watts),
    /// Largest instantaneous spread between hottest and coolest CPU.
    pub max_spread: Watts,
    /// Fraction of steady-state samples with some CPU above 50 W.
    pub fraction_above_limit: f64,
    /// Total migrations during the run.
    pub migrations: u64,
}

/// The paired Fig. 6 / Fig. 7 result.
#[derive(Clone, Debug)]
pub struct Fig67 {
    /// Energy balancing disabled (Fig. 6).
    pub disabled: RunResult,
    /// Energy balancing enabled (Fig. 7).
    pub enabled: RunResult,
}

fn one_run(enabled: bool, duration: SimDuration, warmup: SimTime) -> RunResult {
    let cfg = SimConfig::xseries445()
        .smt(false)
        .energy_aware(enabled)
        .throttling(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(60.0)))
        .trace_thermal(SimDuration::from_secs(1))
        .seed(20060418); // EuroSys'06 started April 18, 2006.
    let mut sim = Simulation::new(cfg);
    sim.spawn_mix(&section61_mix(), 3);
    sim.run_for(duration);
    let trace = sim.thermal_trace().clone();
    let band = trace.band(warmup).unwrap_or((Watts::ZERO, Watts::ZERO));
    let max_spread = trace.max_spread(warmup).unwrap_or(Watts::ZERO);
    let fraction_above_limit = trace.fraction_any_above(LIMIT, warmup);
    RunResult {
        band,
        max_spread,
        fraction_above_limit,
        migrations: sim.report().migrations,
        trace,
    }
}

/// Runs both figures' experiments.
pub fn run(quick: bool) -> Fig67 {
    // The stronger hysteresis margins take a few minutes of simulated
    // time to converge (thermal power moves with a 15 s constant and
    // migrations happen one per balancing pass), so even the quick run
    // needs several hundred seconds.
    let duration = SimDuration::from_secs(if quick { 500 } else { 800 });
    // Skip the warm-up/convergence phase when summarising, like the
    // paper's reading of the figures' right-hand side.
    let warmup = SimTime::from_secs(300);
    Fig67 {
        disabled: one_run(false, duration, warmup),
        enabled: one_run(true, duration, warmup),
    }
}

impl core::fmt::Display for Fig67 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Figures 6/7: thermal power of the 8 CPUs, mixed workload (18 tasks)"
        )?;
        let mut t = crate::fmt::Table::new(vec![
            "energy balancing",
            "band",
            "max spread",
            "above limit",
            "migrations",
        ]);
        for (label, r) in [("disabled", &self.disabled), ("enabled", &self.enabled)] {
            t.row(vec![
                label.to_string(),
                format!(
                    "{}-{}",
                    crate::fmt::watts(r.band.0),
                    crate::fmt::watts(r.band.1)
                ),
                crate::fmt::watts(r.max_spread),
                crate::fmt::pct(r.fraction_above_limit),
                r.migrations.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "(limit line at {LIMIT}; paper draws 50 W against its lower absolute levels — \
             disabled curves diverge above the limit, enabled stays narrow and below it)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balancing_narrows_the_band_and_avoids_the_limit() {
        let fig = run(true);
        // Fig. 6: without balancing, CPUs diverge and some exceed 50 W
        // part of the time.
        assert!(
            fig.disabled.fraction_above_limit > 0.05,
            "disabled never exceeded the limit ({})",
            fig.disabled.fraction_above_limit
        );
        // Fig. 7: with balancing, the band is distinctly narrower...
        assert!(
            fig.enabled.max_spread.0 < fig.disabled.max_spread.0 * 0.8,
            "spread {}W (on) vs {}W (off)",
            fig.enabled.max_spread.0,
            fig.disabled.max_spread.0
        );
        // ...and the limit is (almost) never exceeded.
        assert!(
            fig.enabled.fraction_above_limit < fig.disabled.fraction_above_limit / 4.0,
            "above-limit fraction {} (on) vs {} (off)",
            fig.enabled.fraction_above_limit,
            fig.disabled.fraction_above_limit
        );
        // Balancing costs migrations (Section 6.1 reports ~10x).
        assert!(fig.enabled.migrations > fig.disabled.migrations);
    }
}
