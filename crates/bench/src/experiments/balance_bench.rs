//! Balancing-cost benchmark across the topology ladder.
//!
//! The question the aggregate tree answers: what does one full
//! balancing round (every CPU runs its periodic pass, all domain
//! levels due) cost as the machine grows? The pre-aggregate
//! implementation rescans every runqueue per group selection, so a
//! round is O(CPUs²) at the top domain level; the aggregate tree reads
//! per-unit running sums and memoised ratio sums, making a round
//! O(CPUs). Both modes run here, on identical scheduler states with
//! identical churn, for both balancers — and since the two paths must
//! make bitwise-identical decisions, the benchmark also cross-checks
//! migration counts between them.
//!
//! This is a pure scheduler microbenchmark (no simulation engine): it
//! measures exactly the passes the ROADMAP flagged, including the
//! numa64 rung whose 256 CPUs made scan-based balancing the bottleneck
//! of every large-machine scenario.

use crate::fmt::Table;
use ebs_core::{EnergyAwareBalancer, EnergyBalanceConfig, PowerState, PowerStateConfig};
use ebs_sched::{LoadBalancer, LoadBalancerConfig, MigrationReason, System, TaskConfig};
use ebs_topology::{CpuId, TopologyPreset};
use ebs_units::{SimDuration, SimTime, Watts};
use std::time::Instant;

/// One (topology, balancer, scenario, mode) measurement.
#[derive(Clone, Debug)]
pub struct BalanceBenchRow {
    /// Topology preset name.
    pub topology: &'static str,
    /// Logical CPUs of the shape.
    pub cpus: usize,
    /// Balancer: "stock" or "energy".
    pub balancer: &'static str,
    /// Scenario: "quiescent" (balanced machine, the recurring cost
    /// every balance interval pays even when nothing moves) or
    /// "churn" (tasks keep migrating between rounds, so passes also
    /// inspect and sometimes act on imbalances).
    pub scenario: &'static str,
    /// Group-selection mode: "scan" (pre-aggregate baseline) or
    /// "aggregate".
    pub mode: &'static str,
    /// Full balancing rounds timed.
    pub rounds: usize,
    /// Mean wall-clock per full round (every CPU, all levels due),
    /// microseconds.
    pub us_per_round: f64,
    /// Mean wall-clock per single CPU pass, nanoseconds.
    pub ns_per_pass: f64,
    /// Migrations the rounds performed (must match across modes).
    pub migrations: u64,
}

/// The benchmark result.
#[derive(Clone, Debug)]
pub struct BalanceBench {
    /// Rows in (topology, balancer, mode) order, scan before
    /// aggregate.
    pub rows: Vec<BalanceBenchRow>,
}

/// Builds the benchmark's scheduler state: two tasks per CPU with a
/// varied (but deterministic) profile spread, plus a thermal landscape
/// warm enough that the energy balancer's margin checks actually read
/// the group metrics.
fn build_state(preset: TopologyPreset) -> (System, PowerState) {
    let topo = preset.build();
    let n = topo.n_cpus();
    let mut sys = System::new(topo);
    for c in 0..n {
        for i in 0..2 {
            sys.spawn(
                TaskConfig {
                    initial_profile: Watts(25.0 + ((c * 7 + i * 13) % 30) as f64),
                    ..TaskConfig::default()
                },
                CpuId(c),
            );
        }
        sys.context_switch(CpuId(c));
    }
    let mut power = PowerState::uniform(n, Watts(60.0), PowerStateConfig::default());
    for c in 0..n {
        // A mild deterministic thermal spread, far from the margins.
        let watts = 30.0 + ((c * 11) % 8) as f64;
        for _ in 0..2_000 {
            power.observe(CpuId(c), Watts(watts), SimDuration::from_millis(100));
        }
    }
    (sys, power)
}

/// Steady-state churn between rounds: a few queued tasks ping-pong
/// between fixed CPU pairs, dirtying O(1) unit paths per round the way
/// real migrations and wakes do — without it the aggregate mode would
/// only ever serve warm caches, which overstates its win.
fn churn(sys: &mut System, round: usize) {
    let n = sys.topology().n_cpus();
    for k in 0..4usize {
        let a = CpuId((k * (n / 4)) % n);
        let b = CpuId((k * (n / 4) + n / 2) % n);
        let (from, to) = if round.is_multiple_of(2) {
            (a, b)
        } else {
            (b, a)
        };
        let candidate = sys.rq(from).iter_migration_candidates().next();
        if let Some(id) = candidate {
            let _ = sys.migrate_queued(id, to, MigrationReason::LoadBalance);
        }
    }
}

enum Bal {
    Stock(LoadBalancer),
    Energy(EnergyAwareBalancer),
}

/// Runs `rounds` timed balancing rounds and returns (mean µs/round,
/// total migrations). The first two rounds are an un-timed warmup
/// letting the balancer converge from the initial spawn pattern; in
/// the quiescent scenario the timed rounds then measure the pure
/// every-interval pass cost on a balanced machine, while the churn
/// scenario keeps migrating tasks between rounds.
fn measure(
    preset: TopologyPreset,
    energy: bool,
    use_aggregates: bool,
    with_churn: bool,
    rounds: usize,
) -> (f64, u64) {
    let (mut sys, power) = build_state(preset);
    let mut bal = if energy {
        Bal::Energy(EnergyAwareBalancer::new(
            &sys,
            EnergyBalanceConfig {
                use_aggregates: Some(use_aggregates),
                ..EnergyBalanceConfig::default()
            },
        ))
    } else {
        Bal::Stock(LoadBalancer::new(
            &sys,
            LoadBalancerConfig {
                use_aggregates: Some(use_aggregates),
                ..LoadBalancerConfig::default()
            },
        ))
    };
    let n = sys.topology().n_cpus();
    let mut elapsed = 0.0;
    let warmup = 2;
    for round in 0..rounds + warmup {
        if with_churn && round >= warmup {
            churn(&mut sys, round);
        }
        // Advance past the longest domain interval so every level of
        // every CPU is due — the worst-case round the ROADMAP flags.
        sys.set_now(SimTime::from_millis(((round + 1) * 300) as u64));
        let start = Instant::now();
        for c in 0..n {
            match &mut bal {
                Bal::Stock(lb) => {
                    lb.run(CpuId(c), &mut sys);
                }
                Bal::Energy(eb) => {
                    eb.run(CpuId(c), &mut sys, &power);
                }
            }
        }
        if round >= warmup {
            elapsed += start.elapsed().as_secs_f64();
        }
    }
    sys.validate();
    (elapsed * 1e6 / rounds as f64, sys.stats().migrations())
}

/// The benchmark ladder: the acceptance rungs numa16 → numa64 plus
/// the small shapes for context.
fn presets() -> Vec<TopologyPreset> {
    TopologyPreset::all()
}

/// Runs the benchmark. `quick` only reduces the number of timed
/// rounds; the ladder (through numa64's 256 CPUs) stays complete
/// because the O(CPUs) claim is about its top rungs.
pub fn run(quick: bool) -> BalanceBench {
    let rounds = if quick { 12 } else { 60 };
    let mut rows = Vec::new();
    for preset in presets() {
        let cpus = preset.build().n_cpus();
        for (balancer, energy) in [("stock", false), ("energy", true)] {
            for (scenario, with_churn) in [("quiescent", false), ("churn", true)] {
                let mut migrations = Vec::new();
                for (mode, use_aggregates) in [("scan", false), ("aggregate", true)] {
                    let (us_per_round, migs) =
                        measure(preset, energy, use_aggregates, with_churn, rounds);
                    migrations.push(migs);
                    rows.push(BalanceBenchRow {
                        topology: preset.name(),
                        cpus,
                        balancer,
                        scenario,
                        mode,
                        rounds,
                        us_per_round,
                        ns_per_pass: us_per_round * 1e3 / cpus as f64,
                        migrations: migs,
                    });
                }
                assert_eq!(
                    migrations[0],
                    migrations[1],
                    "{}/{balancer}/{scenario}: scan and aggregate modes diverged",
                    preset.name()
                );
            }
        }
    }
    BalanceBench { rows }
}

impl BalanceBench {
    /// The µs/round of one (topology, balancer, scenario, mode) cell.
    pub fn cell(&self, topology: &str, balancer: &str, scenario: &str, mode: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| {
                r.topology == topology
                    && r.balancer == balancer
                    && r.scenario == scenario
                    && r.mode == mode
            })
            .map(|r| r.us_per_round)
    }

    /// The growth exponent of round cost between two topology rungs:
    /// `log(t_big / t_small) / log(cpus_big / cpus_small)` — ~1 for
    /// linear scaling, ~2 for quadratic.
    pub fn growth_exponent(
        &self,
        small: &str,
        big: &str,
        balancer: &str,
        scenario: &str,
        mode: &str,
    ) -> Option<f64> {
        let find = |topo: &str| {
            self.rows.iter().find(|r| {
                r.topology == topo
                    && r.balancer == balancer
                    && r.scenario == scenario
                    && r.mode == mode
            })
        };
        let (s, b) = (find(small)?, find(big)?);
        Some((b.us_per_round / s.us_per_round).ln() / (b.cpus as f64 / s.cpus as f64).ln())
    }

    /// Renders the benchmark as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "topology,cpus,balancer,scenario,mode,rounds,us_per_round,ns_per_pass,migrations\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.2},{:.1},{}\n",
                r.topology,
                r.cpus,
                r.balancer,
                r.scenario,
                r.mode,
                r.rounds,
                r.us_per_round,
                r.ns_per_pass,
                r.migrations
            ));
        }
        out
    }
}

impl core::fmt::Display for BalanceBench {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Balancing cost per full round (every CPU, all levels due; \
             scan = pre-aggregate baseline)"
        )?;
        let mut t = Table::new(vec![
            "topology", "cpus", "balancer", "scenario", "mode", "us/round", "ns/pass", "migr",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.topology.to_string(),
                r.cpus.to_string(),
                r.balancer.to_string(),
                r.scenario.to_string(),
                r.mode.to_string(),
                format!("{:.1}", r.us_per_round),
                format!("{:.0}", r.ns_per_pass),
                r.migrations.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(f)?;
        for balancer in ["stock", "energy"] {
            for scenario in ["quiescent", "churn"] {
                for mode in ["scan", "aggregate"] {
                    if let Some(e) =
                        self.growth_exponent("numa16", "numa64", balancer, scenario, mode)
                    {
                        writeln!(
                            f,
                            "{balancer}/{scenario}/{mode}: cost ~ CPUs^{e:.2} \
                             on numa16 -> numa64"
                        )?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_aggregates_win_at_scale() {
        let bench = run(true);
        // 5 topologies × 2 balancers × 2 scenarios × 2 modes.
        assert_eq!(bench.rows.len(), 40);
        assert_eq!(bench.to_csv().lines().count(), 41);
        // Identical migration decisions per (topology, balancer,
        // scenario) cell are asserted inside `run`; spot-check the
        // rows agree too.
        for pair in bench.rows.chunks(2) {
            assert_eq!(pair[0].mode, "scan");
            assert_eq!(pair[1].mode, "aggregate");
            assert_eq!(pair[0].migrations, pair[1].migrations);
        }
        // Wall-clock assertions under `cargo test` on a single-core CI
        // container are inherently noisy (a background process can
        // stall either leg for a whole scheduling quantum), so the one
        // timing claim is made flake-proof two ways: only the widest
        // measured gap is enforced — at 256 CPUs the energy balancer's
        // quiescent aggregate rounds run ~3.6x faster than scan rounds
        // — and the pair is re-measured up to three times, so a
        // failure needs the *whole factor* erased in three independent
        // samples. The full picture (both balancers, both scenarios,
        // growth exponents) lives in the release-mode
        // `results/balance_bench.csv` artifact CI regenerates.
        let cell = |use_aggregates: bool| {
            measure(TopologyPreset::Numa64, true, use_aggregates, false, 12).0
        };
        let mut gap = (cell(false), cell(true));
        for _attempt in 0..2 {
            if gap.1 < gap.0 {
                break;
            }
            gap = (cell(false), cell(true));
        }
        let (scan, agg) = gap;
        assert!(
            agg < scan,
            "aggregate rounds ({agg:.1}us) not below scan rounds ({scan:.1}us) at 256 CPUs \
             in three attempts"
        );
    }
}
