//! Figure 3: relation between temperature, power, and thermal power.
//!
//! A synthetic power step (low, high for a while, low again) is fed to
//! the RC model (temperature) and to the thermal-power exponential
//! average. The figure's point: thermal power follows the *shape* of
//! temperature — slow exponential approach and decay — while raw power
//! switches instantly.

use ebs_thermal::{PowerAverage, RcThermalModel, ThermalNode};
use ebs_units::{Celsius, SimDuration, Watts};

/// One sample of the three curves.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Time in seconds.
    pub t: f64,
    /// The instantaneous power input.
    pub power: Watts,
    /// The RC model's temperature.
    pub temperature: Celsius,
    /// The thermal-power average.
    pub thermal_power: Watts,
}

/// The full Figure 3 result.
#[derive(Clone, Debug)]
pub struct Fig3 {
    /// Sampled curves (1 Hz).
    pub samples: Vec<Sample>,
    /// When the step up/down happens, in seconds.
    pub step_up: f64,
    /// When the power drops back, in seconds.
    pub step_down: f64,
}

/// Runs the Figure 3 synthetic experiment.
pub fn run(_quick: bool) -> Fig3 {
    let model = RcThermalModel::reference();
    let mut node = ThermalNode::new(model);
    let dt = SimDuration::from_millis(100);
    let mut thermal = PowerAverage::with_time_constant(Watts(20.0), dt, model.time_constant());
    // Pre-warm to the low level's steady state so the figure starts
    // flat like the paper's.
    for _ in 0..3_000 {
        node.step(Watts(20.0), dt);
        thermal.update(Watts(20.0), dt);
    }
    let (step_up, step_down, end) = (20.0_f64, 90.0_f64, 160.0_f64);
    let mut samples = Vec::new();
    let mut t = 0.0_f64;
    while t < end {
        let power = if (step_up..step_down).contains(&t) {
            Watts(65.0)
        } else {
            Watts(20.0)
        };
        node.step(power, dt);
        thermal.update(power, dt);
        // Sample at 1 Hz.
        if ((t * 10.0).round() as u64).is_multiple_of(10) {
            samples.push(Sample {
                t,
                power,
                temperature: node.temperature(),
                thermal_power: thermal.watts(),
            });
        }
        t += 0.1;
    }
    Fig3 {
        samples,
        step_up,
        step_down,
    }
}

impl Fig3 {
    /// Renders the three curves as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,power_w,temperature_c,thermal_power_w\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.1},{:.2},{:.3},{:.3}\n",
                s.t, s.power.0, s.temperature.0, s.thermal_power.0
            ));
        }
        out
    }

    /// The normalised temperature and thermal-power trajectories must
    /// coincide (same time constant); returns the maximum normalised
    /// deviation between them.
    pub fn tracking_error(&self) -> f64 {
        let t_lo = 22.0 + 0.34 * 20.0;
        let t_hi = 22.0 + 0.34 * 65.0;
        self.samples
            .iter()
            .map(|s| {
                let temp_norm = (s.temperature.0 - t_lo) / (t_hi - t_lo);
                let tp_norm = (s.thermal_power.0 - 20.0) / 45.0;
                (temp_norm - tp_norm).abs()
            })
            .fold(0.0, f64::max)
    }
}

impl core::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Figure 3: temperature vs power vs thermal power (step at {:.0}s, back at {:.0}s)",
            self.step_up, self.step_down
        )?;
        let peak_tp = self
            .samples
            .iter()
            .map(|s| s.thermal_power.0)
            .fold(f64::MIN, f64::max);
        let peak_t = self
            .samples
            .iter()
            .map(|s| s.temperature.0)
            .fold(f64::MIN, f64::max);
        writeln!(
            f,
            "peak temperature {peak_t:.1} degC, peak thermal power {peak_tp:.1} W, \
             normalised tracking error {:.4}",
            self.tracking_error()
        )?;
        writeln!(
            f,
            "(thermal power rises/decays exponentially with the RC time constant, \
             while power switches instantly — see results/fig3.csv)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_power_tracks_temperature_shape() {
        let fig = run(true);
        // The two normalised curves coincide: that is the calibration
        // claim of Section 4.3.
        assert!(
            fig.tracking_error() < 0.02,
            "error {}",
            fig.tracking_error()
        );
    }

    #[test]
    fn thermal_power_lags_power() {
        let fig = run(true);
        // Just after the step up, power is at the high level but
        // thermal power is still far below it.
        let s = fig
            .samples
            .iter()
            .find(|s| s.t > fig.step_up + 1.0)
            .unwrap();
        assert_eq!(s.power, Watts(65.0));
        assert!(s.thermal_power.0 < 35.0, "{:?}", s.thermal_power);
        // And it keeps rising after the step down.
        let down = fig
            .samples
            .iter()
            .find(|s| s.t > fig.step_down + 1.0)
            .unwrap();
        assert_eq!(down.power, Watts(20.0));
        assert!(down.thermal_power.0 > 40.0);
    }

    #[test]
    fn csv_well_formed() {
        let fig = run(true);
        let csv = fig.to_csv();
        assert!(csv.starts_with("time_s,power_w"));
        assert_eq!(csv.lines().count(), fig.samples.len() + 1);
    }
}
