//! Engine micro-benchmark: simulated seconds per wall second, for the
//! fixed-tick and variable-stride cores.
//!
//! The ROADMAP's scaling sweeps are wall-clock bound on the engine's
//! main loop; this benchmark quantifies exactly what the strided core
//! buys, per machine shape, on the sweep's own workload (open
//! arrivals under a diurnal curve, per-core-scaled rate). The realised
//! mean stride (`sim_time / engine_steps`) shows how far the core gets
//! from its one-tick floor on each shape.
//!
//! The DVFS cells measure the governor decision points specifically:
//! with the fixed 10 ms cadence every stride in a DVFS cell is floored
//! at the governor interval, while event-driven governors only end
//! spans when a hold band is about to be escaped — the before/after of
//! the ROADMAP's "governor interval bounds strides" item, on the same
//! thermal-aware cells the scaling sweep runs.

use crate::experiments::scaling;
use crate::fmt::Table;
use ebs_dvfs::GovernorKind;
use ebs_sim::{build_engine, MaxPowerSpec, SimConfig, Simulation};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};
use std::time::Instant;

/// One (topology, engine mode, DVFS mode) measurement.
#[derive(Clone, Debug)]
pub struct EngineBenchRow {
    /// Topology preset name.
    pub topology: &'static str,
    /// Logical CPUs of the shape.
    pub cpus: usize,
    /// Engine mode: "fixed", "strided", or "parN" (the partitioned
    /// core with N workers requested; threads engage only when the
    /// host offers parallelism).
    pub mode: &'static str,
    /// DVFS mode of the cell: "off", "cadence" (fixed 10 ms governor
    /// interval) or "event" (hold-band triggers).
    pub dvfs: &'static str,
    /// Simulated duration.
    pub sim_s: f64,
    /// Wall-clock the run took.
    pub wall_s: f64,
    /// Simulated seconds per wall second — the headline rate.
    pub sim_per_wall: f64,
    /// Engine steps taken.
    pub steps: u64,
    /// Realised mean stride in microseconds (tick = 1000).
    pub mean_stride_us: f64,
    /// Governor decisions taken (0 with DVFS off).
    pub dvfs_decisions: u64,
    /// Instructions retired (sanity: all modes must agree closely).
    pub instructions: u64,
}

/// The tracing-parity measurement: one strided event-DVFS cell run
/// bare and again with the observability stack on (event trace +
/// phase profiler). The check is counter-based by design — the two
/// reports must be bit-identical, which subsumes every counter — so
/// CI wall-clock noise cannot perturb it; the wall times are recorded
/// for the table but never asserted on.
#[derive(Clone, Debug)]
pub struct TraceParity {
    /// Topology of the parity cell.
    pub topology: &'static str,
    /// Whether the bare and instrumented reports are bit-identical.
    pub identical: bool,
    /// Engine steps of the instrumented run.
    pub steps: u64,
    /// Scheduling events the instrumented run recorded.
    pub events: usize,
    /// Events the ring dropped (0: the parity run is uncapped).
    pub dropped: u64,
    /// Rendered per-phase wall-time profile of the instrumented run.
    pub profile: String,
    /// Wall seconds of the bare run (informational).
    pub bare_wall_s: f64,
    /// Wall seconds of the instrumented run (informational).
    pub traced_wall_s: f64,
}

/// The fork-sweep amortization measurement: the scaling matrix run
/// straight (one warm-up per cell) vs forked from per-group
/// `ebs-store` checkpoints (one warm-up per topology×curve group).
/// The headline is the executed-step ratio — counter-verified warm-up
/// amortization, free of wall-clock noise — with the wall speedup
/// recorded for the table but never asserted on. `identical` holds
/// both equality oracles: CSV bytes and per-cell end-state hashes.
#[derive(Clone, Debug)]
pub struct ForkSweep {
    /// Matrix cells measured by each leg.
    pub cells: usize,
    /// Topology×curve groups (= warm-ups the forked leg runs).
    pub groups: usize,
    /// Engine steps the straight leg executed (warm-ups included).
    pub straight_steps: u64,
    /// Engine steps the forked leg executed.
    pub fork_steps: u64,
    /// straight/forked executed-step ratio.
    pub step_ratio: f64,
    /// Wall seconds of the straight leg (informational).
    pub straight_wall_s: f64,
    /// Wall seconds of the forked leg (informational).
    pub fork_wall_s: f64,
    /// Wall-clock speedup of the forked leg (informational).
    pub speedup: f64,
    /// Whether the legs are byte-identical (CSV and state hashes).
    pub identical: bool,
}

/// The benchmark result.
#[derive(Clone, Debug)]
pub struct EngineBench {
    /// Rows in (topology, mode) order, fixed before strided.
    pub rows: Vec<EngineBenchRow>,
    /// The tracing-overhead / self-profiling measurement.
    pub parity: TraceParity,
    /// The checkpoint/fork warm-up-amortization measurement.
    pub fork: ForkSweep,
}

fn cell(preset: TopologyPreset, strided: bool, dvfs: &str) -> SimConfig {
    let shape = preset.builder();
    let workload = OpenWorkload::new(
        vec![
            catalog::bitcnts(),
            catalog::memrw(),
            catalog::aluadd(),
            catalog::pushpop(),
        ],
        1.5 * shape.n_cores() as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(8),
        floor: 0.25,
    });
    let cfg = SimConfig::with_topology(shape)
        .seed(42)
        .respawn(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(40.0)))
        .open_workload(workload);
    let cfg = if strided { cfg.strided() } else { cfg };
    match dvfs {
        // The scaling sweep's DVFS cells: thermal-aware enforcement
        // instead of hlt.
        "cadence" | "event" => cfg
            .throttling(false)
            .dvfs_governor(GovernorKind::ThermalAware)
            .dvfs_event_driven(dvfs == "event"),
        _ => cfg,
    }
}

/// The (engine mode, DVFS mode, workers) matrix: the classic
/// fixed-vs-strided pair without DVFS, the strided DVFS cells where
/// the governor cadence used to floor every stride — the before
/// ("cadence") and after ("event") of the event-driven governor path —
/// and the partitioned core's worker ladder ("par1" must reproduce
/// "strided" bit-exactly; "par4" exercises per-package partitions).
/// `workers == 0` selects the sequential engine.
const MODES: [(&str, bool, &str, usize); 6] = [
    ("fixed", false, "off", 0),
    ("strided", true, "off", 0),
    ("strided", true, "cadence", 0),
    ("strided", true, "event", 0),
    ("par1", true, "off", 1),
    ("par4", true, "off", 4),
];

/// Runs the benchmark. `quick` shortens the simulated horizon and the
/// topology ladder for CI.
pub fn run(quick: bool) -> EngineBench {
    let duration = SimDuration::from_secs(if quick { 4 } else { 20 });
    let presets = if quick {
        vec![
            TopologyPreset::XSeries445 { smt: false },
            TopologyPreset::Numa16,
        ]
    } else {
        TopologyPreset::all()
    };
    let mut rows = Vec::new();
    for preset in presets {
        for (mode, strided, dvfs, workers) in MODES {
            let cfg = cell(preset, strided, dvfs);
            let cpus = cfg.n_cpus();
            // `workers == 0` leaves the config sequential;
            // `build_engine` then picks the core — no per-core dispatch
            // here anymore.
            let cfg = if workers > 0 {
                cfg.parallel(workers)
            } else {
                cfg
            };
            let start = Instant::now();
            let mut sim = build_engine(cfg);
            sim.run_for(duration);
            let (wall_s, report) = (start.elapsed().as_secs_f64().max(1e-9), sim.report());
            let sim_s = report.duration.as_secs_f64();
            rows.push(EngineBenchRow {
                topology: preset.name(),
                cpus,
                mode,
                dvfs,
                sim_s,
                wall_s,
                sim_per_wall: sim_s / wall_s,
                steps: report.engine_steps,
                mean_stride_us: sim_s * 1e6 / report.engine_steps.max(1) as f64,
                dvfs_decisions: report.dvfs_decisions,
                instructions: report.instructions_retired,
            });
        }
    }
    let parity = trace_parity(duration);
    let fork = fork_sweep(quick);
    EngineBench { rows, parity, fork }
}

/// Runs both legs of the scaling fork sweep (the smoke matrix under
/// `quick`) and distils the amortization numbers.
fn fork_sweep(quick: bool) -> ForkSweep {
    let cmp = scaling::run_fork_compare(quick);
    ForkSweep {
        cells: cmp.straight.sweep.rows.len(),
        groups: cmp.snapshots.len(),
        straight_steps: cmp.straight.executed_steps,
        fork_steps: cmp.forked.executed_steps,
        step_ratio: cmp.step_ratio(),
        straight_wall_s: cmp.straight.sweep.wall_s,
        fork_wall_s: cmp.forked.sweep.wall_s,
        speedup: cmp.speedup(),
        identical: cmp.identical(),
    }
}

/// Runs the parity cell: the strided event-DVFS xseries445 shape,
/// bare vs instrumented (event tracing + engine self-profiling).
fn trace_parity(duration: SimDuration) -> TraceParity {
    let preset = TopologyPreset::XSeries445 { smt: false };
    let cfg = cell(preset, true, "event");
    let start = Instant::now();
    let mut bare = Simulation::new(cfg.clone());
    bare.run_for(duration);
    let bare_wall_s = start.elapsed().as_secs_f64();
    let bare_report = bare.report();
    let start = Instant::now();
    let mut traced = Simulation::new(cfg.trace_events(true).profile_engine(true));
    traced.run_for(duration);
    let traced_wall_s = start.elapsed().as_secs_f64();
    let traced_report = traced.report();
    TraceParity {
        topology: preset.name(),
        identical: bare_report.bit_eq(&traced_report),
        steps: traced_report.engine_steps,
        events: traced.events().map_or(0, |t| t.len()),
        dropped: traced.events().map_or(0, |t| t.dropped()),
        profile: traced
            .engine_profile()
            .map(|p| p.to_string())
            .unwrap_or_default(),
        bare_wall_s,
        traced_wall_s,
    }
}

impl EngineBench {
    /// The row of one (topology, engine mode, DVFS mode) cell.
    pub fn cell(&self, topology: &str, mode: &str, dvfs: &str) -> Option<&EngineBenchRow> {
        self.rows
            .iter()
            .find(|r| r.topology == topology && r.mode == mode && r.dvfs == dvfs)
    }

    /// Wall-clock speedup of strided over fixed for one topology
    /// (DVFS off — the classic engine-core comparison).
    pub fn speedup(&self, topology: &str) -> Option<f64> {
        Some(
            self.cell(topology, "fixed", "off")?.wall_s
                / self.cell(topology, "strided", "off")?.wall_s,
        )
    }

    /// Simulated-seconds-per-wall-second ratio of a partitioned mode
    /// ("par1"/"par4") over single-thread strided for one topology
    /// (DVFS off) — the parallel-core speedup gate. Meaningful only
    /// when the host offers parallelism; on a single-CPU host the
    /// partitions step serially and the ratio hovers near 1.
    pub fn parallel_speedup(&self, topology: &str, mode: &str) -> Option<f64> {
        Some(
            self.cell(topology, mode, "off")?.sim_per_wall
                / self.cell(topology, "strided", "off")?.sim_per_wall,
        )
    }

    /// Stride stretch of event-driven over cadence governors in the
    /// strided DVFS cells of one topology (steps-based, so free of
    /// wall-clock noise).
    pub fn dvfs_stride_stretch(&self, topology: &str) -> Option<f64> {
        let cadence = self.cell(topology, "strided", "cadence")?;
        let event = self.cell(topology, "strided", "event")?;
        Some(cadence.steps as f64 / event.steps.max(1) as f64)
    }

    /// Renders the benchmark as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "topology,cpus,mode,dvfs,sim_s,wall_s,sim_per_wall,steps,mean_stride_us,\
             dvfs_decisions,instructions\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{:.1},{:.3},{:.1},{},{:.1},{},{}\n",
                r.topology,
                r.cpus,
                r.mode,
                r.dvfs,
                r.sim_s,
                r.wall_s,
                r.sim_per_wall,
                r.steps,
                r.mean_stride_us,
                r.dvfs_decisions,
                r.instructions
            ));
        }
        out
    }
}

impl core::fmt::Display for EngineBench {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Engine cores: simulated seconds per wall second (open diurnal workload; \
             dvfs cells run thermal-aware enforcement)"
        )?;
        let mut t = Table::new(vec![
            "topology",
            "cpus",
            "mode",
            "dvfs",
            "sim/wall",
            "steps",
            "stride",
            "decisions",
            "Ginstr",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.topology.to_string(),
                r.cpus.to_string(),
                r.mode.to_string(),
                r.dvfs.to_string(),
                format!("{:.1}", r.sim_per_wall),
                r.steps.to_string(),
                format!("{:.1}us", r.mean_stride_us),
                r.dvfs_decisions.to_string(),
                format!("{:.1}", r.instructions as f64 / 1e9),
            ]);
        }
        write!(f, "{t}")?;
        for r in &self.rows {
            if r.dvfs != "event" {
                continue;
            }
            if let Some(stretch) = self.dvfs_stride_stretch(r.topology) {
                writeln!(
                    f,
                    "{}: event-driven governors stretch DVFS-cell strides {:.1}x \
                     ({} -> {} steps)",
                    r.topology,
                    stretch,
                    self.cell(r.topology, "strided", "cadence")
                        .map_or(0, |c| c.steps),
                    r.steps,
                )?;
            }
        }
        writeln!(
            f,
            "\nEngine self-profile ({} strided event-DVFS cell, event tracing + \
             phase profiler on):",
            self.parity.topology
        )?;
        write!(f, "{}", self.parity.profile)?;
        writeln!(
            f,
            "trace parity: reports {} with tracing on; {} events recorded \
             ({} dropped), {} engine steps; wall {:.3}s bare vs {:.3}s traced \
             (informational)",
            if self.parity.identical {
                "bit-identical"
            } else {
                "DIVERGED"
            },
            self.parity.events,
            self.parity.dropped,
            self.parity.steps,
            self.parity.bare_wall_s,
            self.parity.traced_wall_s,
        )?;
        writeln!(
            f,
            "
Fork sweep ({} cells, {} warm-up groups): {:.2}x fewer engine steps \
             with shared warm-ups ({} -> {}), {:.2}x wall speedup \
             ({:.1}s -> {:.1}s, informational); legs {}",
            self.fork.cells,
            self.fork.groups,
            self.fork.step_ratio,
            self.fork.straight_steps,
            self.fork.fork_steps,
            self.fork.speedup,
            self.fork.straight_wall_s,
            self.fork.fork_wall_s,
            if self.fork.identical {
                "byte-identical"
            } else {
                "DIVERGED"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_modes_agree_on_work() {
        let bench = run(true);
        // 2 presets × (fixed/off, strided/off, strided/cadence,
        // strided/event, par1/off, par4/off).
        assert_eq!(bench.rows.len(), 12);
        for topo in ["xseries445", "numa16"] {
            // Every comparison below is counter-based (steps retired,
            // instructions, decisions): single-core CI containers make
            // wall-clock ratios inherently flaky, so the timing columns
            // are recorded in the CSV but never asserted on.
            let fixed = bench.cell(topo, "fixed", "off").unwrap();
            let strided = bench.cell(topo, "strided", "off").unwrap();
            assert!(
                strided.steps * 2 < fixed.steps,
                "{topo}: {} vs {} steps",
                strided.steps,
                fixed.steps
            );
            let rel = (fixed.instructions as f64 - strided.instructions as f64).abs()
                / fixed.instructions as f64;
            assert!(rel < 0.03, "{topo}: work drifted {rel}");
            // The DVFS cells: the cadence floors strides at the 10 ms
            // governor interval, the event-driven path lifts it.
            let cadence = bench.cell(topo, "strided", "cadence").unwrap();
            let event = bench.cell(topo, "strided", "event").unwrap();
            assert!(
                cadence.mean_stride_us < 11_000.0,
                "{topo}: cadence strides not floored by the interval: {}",
                cadence.mean_stride_us
            );
            assert!(
                event.steps < cadence.steps,
                "{topo}: event-driven strides did not stretch: {} vs {} steps",
                event.steps,
                cadence.steps
            );
            assert!(
                event.dvfs_decisions < cadence.dvfs_decisions,
                "{topo}: no governor wake-up savings: {} vs {}",
                event.dvfs_decisions,
                cadence.dvfs_decisions
            );
            let rel = (cadence.instructions as f64 - event.instructions as f64).abs()
                / cadence.instructions as f64;
            assert!(rel < 0.03, "{topo}: dvfs work drifted {rel}");
            // The partitioned core with one worker is the strided core
            // verbatim: counters match exactly, not just closely.
            let par1 = bench.cell(topo, "par1", "off").unwrap();
            assert_eq!(par1.steps, strided.steps, "{topo}: par1 steps diverged");
            assert_eq!(
                par1.instructions, strided.instructions,
                "{topo}: par1 work diverged"
            );
            // Per-package partitions discretise cross-package policy at
            // horizon boundaries; the retired work must still agree.
            let par4 = bench.cell(topo, "par4", "off").unwrap();
            assert!(par4.steps > 0);
            let rel = (strided.instructions as f64 - par4.instructions as f64).abs()
                / strided.instructions as f64;
            assert!(rel < 0.03, "{topo}: par4 work drifted {rel}");
        }
        let csv = bench.to_csv();
        assert_eq!(csv.lines().count(), 13);
        // The observability stack must not perturb the simulation:
        // bit-identical reports subsume every counter comparison, and
        // the phase profile covers the whole loop. All counter-based —
        // no wall-clock assertions.
        let parity = &bench.parity;
        assert!(parity.identical, "tracing perturbed the report");
        assert!(parity.events > 0, "no events recorded");
        assert_eq!(parity.dropped, 0, "uncapped ring dropped events");
        for phase in [
            "stride",
            "arrivals",
            "physics",
            "throttle",
            "dvfs",
            "scheduler",
            "sampling",
        ] {
            assert!(
                parity.profile.contains(phase),
                "phase {phase} missing from profile:\n{}",
                parity.profile
            );
        }
        // The fork sweep: warm-up amortization must be counter-real
        // (theoretical shared-warm-up ceiling on a 4-policy matrix with
        // W = M is 8/5 = 1.6x; the realised step ratio sits near 1.5x
        // because warm-up and measurement spans retire slightly
        // different step counts) and the legs must be byte-identical.
        // Wall columns are informational only — never asserted.
        let fork = &bench.fork;
        assert!(fork.identical, "fork-sweep legs diverged");
        assert_eq!(fork.cells, 24);
        assert_eq!(fork.groups, 6);
        assert!(
            fork.step_ratio >= 1.4,
            "warm-up amortization collapsed: {:.2}x ({} -> {} steps)",
            fork.step_ratio,
            fork.straight_steps,
            fork.fork_steps
        );
        assert!(bench.to_string().contains("bit-identical"));
    }
}
