//! Engine micro-benchmark: simulated seconds per wall second, for the
//! fixed-tick and variable-stride cores.
//!
//! The ROADMAP's scaling sweeps are wall-clock bound on the engine's
//! main loop; this benchmark quantifies exactly what the strided core
//! buys, per machine shape, on the sweep's own workload (open
//! arrivals under a diurnal curve, per-core-scaled rate). The realised
//! mean stride (`sim_time / engine_steps`) shows how far the core gets
//! from its one-tick floor on each shape.

use crate::fmt::Table;
use ebs_sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};
use std::time::Instant;

/// One (topology, engine mode) measurement.
#[derive(Clone, Debug)]
pub struct EngineBenchRow {
    /// Topology preset name.
    pub topology: &'static str,
    /// Logical CPUs of the shape.
    pub cpus: usize,
    /// Engine mode: "fixed" or "strided".
    pub mode: &'static str,
    /// Simulated duration.
    pub sim_s: f64,
    /// Wall-clock the run took.
    pub wall_s: f64,
    /// Simulated seconds per wall second — the headline rate.
    pub sim_per_wall: f64,
    /// Engine steps taken.
    pub steps: u64,
    /// Realised mean stride in microseconds (tick = 1000).
    pub mean_stride_us: f64,
    /// Instructions retired (sanity: both modes must agree closely).
    pub instructions: u64,
}

/// The benchmark result.
#[derive(Clone, Debug)]
pub struct EngineBench {
    /// Rows in (topology, mode) order, fixed before strided.
    pub rows: Vec<EngineBenchRow>,
}

fn cell(preset: TopologyPreset, strided: bool) -> SimConfig {
    let shape = preset.builder();
    let workload = OpenWorkload::new(
        vec![
            catalog::bitcnts(),
            catalog::memrw(),
            catalog::aluadd(),
            catalog::pushpop(),
        ],
        1.5 * shape.n_cores() as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(8),
        floor: 0.25,
    });
    let cfg = SimConfig::with_topology(shape)
        .seed(42)
        .respawn(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(40.0)))
        .open_workload(workload);
    if strided {
        cfg.strided()
    } else {
        cfg
    }
}

/// Runs the benchmark. `quick` shortens the simulated horizon and the
/// topology ladder for CI.
pub fn run(quick: bool) -> EngineBench {
    let duration = SimDuration::from_secs(if quick { 4 } else { 20 });
    let presets = if quick {
        vec![
            TopologyPreset::XSeries445 { smt: false },
            TopologyPreset::Numa16,
        ]
    } else {
        TopologyPreset::all()
    };
    let mut rows = Vec::new();
    for preset in presets {
        for (mode, strided) in [("fixed", false), ("strided", true)] {
            let cfg = cell(preset, strided);
            let cpus = cfg.n_cpus();
            let start = Instant::now();
            let mut sim = Simulation::new(cfg);
            sim.run_for(duration);
            let wall_s = start.elapsed().as_secs_f64().max(1e-9);
            let report = sim.report();
            let sim_s = report.duration.as_secs_f64();
            rows.push(EngineBenchRow {
                topology: preset.name(),
                cpus,
                mode,
                sim_s,
                wall_s,
                sim_per_wall: sim_s / wall_s,
                steps: report.engine_steps,
                mean_stride_us: sim_s * 1e6 / report.engine_steps.max(1) as f64,
                instructions: report.instructions_retired,
            });
        }
    }
    EngineBench { rows }
}

impl EngineBench {
    /// Wall-clock speedup of strided over fixed for one topology.
    pub fn speedup(&self, topology: &str) -> Option<f64> {
        let find = |mode: &str| {
            self.rows
                .iter()
                .find(|r| r.topology == topology && r.mode == mode)
        };
        Some(find("fixed")?.wall_s / find("strided")?.wall_s)
    }

    /// Renders the benchmark as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "topology,cpus,mode,sim_s,wall_s,sim_per_wall,steps,mean_stride_us,instructions\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{:.1},{:.3},{:.1},{},{:.1},{}\n",
                r.topology,
                r.cpus,
                r.mode,
                r.sim_s,
                r.wall_s,
                r.sim_per_wall,
                r.steps,
                r.mean_stride_us,
                r.instructions
            ));
        }
        out
    }
}

impl core::fmt::Display for EngineBench {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Engine cores: simulated seconds per wall second (open diurnal workload)"
        )?;
        let mut t = Table::new(vec![
            "topology", "cpus", "mode", "sim/wall", "steps", "stride", "Ginstr",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.topology.to_string(),
                r.cpus.to_string(),
                r.mode.to_string(),
                format!("{:.1}", r.sim_per_wall),
                r.steps.to_string(),
                format!("{:.1}us", r.mean_stride_us),
                format!("{:.1}", r.instructions as f64 / 1e9),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_modes_agree_on_work() {
        let bench = run(true);
        assert_eq!(bench.rows.len(), 4);
        for pair in bench.rows.chunks(2) {
            let (fixed, strided) = (&pair[0], &pair[1]);
            assert_eq!(fixed.mode, "fixed");
            assert_eq!(strided.mode, "strided");
            assert_eq!(fixed.topology, strided.topology);
            // The strided core takes meaningfully fewer steps...
            assert!(
                strided.steps * 2 < fixed.steps,
                "{}: {} vs {} steps",
                fixed.topology,
                strided.steps,
                fixed.steps
            );
            // ...and retires the same work within tolerance.
            let rel = (fixed.instructions as f64 - strided.instructions as f64).abs()
                / fixed.instructions as f64;
            assert!(rel < 0.03, "{}: work drifted {rel}", fixed.topology);
        }
        let csv = bench.to_csv();
        assert_eq!(csv.lines().count(), 5);
    }
}
