//! Table 3: CPU throttling percentages under temperature control
//! (Section 6.2) and the resulting throughput gain.
//!
//! Setup: SMT on (36 tasks), per-CPU thermal calibration with
//! heterogeneous cooling, an artificial 38 degC limit to force
//! throttling, and `hlt` enforcement. The paper reports per-logical
//! throttle percentages dropping on every affected CPU when energy
//! balancing is on (average 15.2 % -> 10.2 %) and a 4.7 % throughput
//! increase (4.9 % with short tasks, where initial placement matters
//! most).

use crate::experiments::short_task;
use crate::fmt::{pct, Table};
use crate::testbed_cooling_factors;
use ebs_sim::{run_seeds, MaxPowerSpec, SimConfig, SimReport};
use ebs_units::{Celsius, SimDuration};
use ebs_workloads::section61_mix;

/// The Table 3 result.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// Per-logical-CPU throttle fraction, energy balancing disabled.
    pub throttled_disabled: Vec<f64>,
    /// Per-logical-CPU throttle fraction, energy balancing enabled.
    pub throttled_enabled: Vec<f64>,
    /// Averages over all CPUs (disabled, enabled).
    pub avg: (f64, f64),
    /// Throughput gain of enabled over disabled (long-running tasks).
    pub throughput_gain: f64,
    /// Throughput gain with the short-task workload (completions).
    pub short_task_gain: f64,
}

fn base_config() -> SimConfig {
    SimConfig::xseries445()
        .smt(true)
        .throttling(true)
        .cooling_factors(testbed_cooling_factors())
        .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)))
}

fn averaged(reports: &[SimReport]) -> (Vec<f64>, f64, f64) {
    let n_cpus = reports[0].throttled_fraction.len();
    let per_cpu: Vec<f64> = (0..n_cpus)
        .map(|c| {
            reports.iter().map(|r| r.throttled_fraction[c]).sum::<f64>() / reports.len() as f64
        })
        .collect();
    let avg = per_cpu.iter().sum::<f64>() / n_cpus as f64;
    let ips = reports.iter().map(|r| r.throughput_ips).sum::<f64>() / reports.len() as f64;
    (per_cpu, avg, ips)
}

/// Runs the Table 3 experiment.
pub fn run(quick: bool) -> Table3 {
    let duration = SimDuration::from_secs(if quick { 300 } else { 900 });
    let seeds: &[u64] = if quick {
        &crate::SEEDS[..2]
    } else {
        &crate::SEEDS[..3]
    };
    let mix = section61_mix();

    let runs = |on: bool| {
        run_seeds(&base_config().energy_aware(on), seeds, duration, |sim| {
            sim.spawn_mix(&mix, 6)
        })
    };
    let off = runs(false);
    let on = runs(true);
    let (throttled_disabled, avg_off, ips_off) = averaged(&off);
    let (throttled_enabled, avg_on, ips_on) = averaged(&on);

    // Short-task variant: completions per second is the throughput.
    let short_mix: Vec<_> = section61_mix().iter().map(short_task).collect();
    let short_duration = SimDuration::from_secs(if quick { 200 } else { 600 });
    let short_runs = |on: bool| {
        run_seeds(
            &base_config().energy_aware(on),
            seeds,
            short_duration,
            |sim| sim.spawn_mix(&short_mix, 6),
        )
    };
    let s_off = short_runs(false);
    let s_on = short_runs(true);
    let completions =
        |rs: &[SimReport]| rs.iter().map(|r| r.completions as f64).sum::<f64>() / rs.len() as f64;
    let short_task_gain = completions(&s_on) / completions(&s_off) - 1.0;

    Table3 {
        throttled_disabled,
        throttled_enabled,
        avg: (avg_off, avg_on),
        throughput_gain: ips_on / ips_off - 1.0,
        short_task_gain,
    }
}

impl Table3 {
    /// Indices of CPUs that throttled in either run (the rows the
    /// paper prints; the others "had to be throttled in neither run").
    pub fn interesting_cpus(&self) -> Vec<usize> {
        (0..self.throttled_disabled.len())
            .filter(|&c| self.throttled_disabled[c] > 0.005 || self.throttled_enabled[c] > 0.005)
            .collect()
    }
}

impl core::fmt::Display for Table3 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Table 3: CPU throttling percentage (38 degC limit, SMT on)"
        )?;
        let mut t = Table::new(vec!["logical CPU", "EB disabled", "EB enabled"]);
        for c in self.interesting_cpus() {
            t.row(vec![
                c.to_string(),
                pct(self.throttled_disabled[c]),
                pct(self.throttled_enabled[c]),
            ]);
        }
        t.row(vec![
            "average".to_string(),
            pct(self.avg.0),
            pct(self.avg.1),
        ]);
        write!(f, "{t}")?;
        writeln!(
            f,
            "throughput gain: {} (paper: 4.7%); short tasks: {} (paper: 4.9%)",
            pct(self.throughput_gain),
            pct(self.short_task_gain)
        )?;
        writeln!(f, "(paper average: 15.2% disabled, 10.2% enabled)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_balancing_reduces_throttling_and_raises_throughput() {
        let t = run(true);
        // Some CPUs throttle, some never do (heterogeneous cooling).
        assert!(!t.interesting_cpus().is_empty(), "nothing throttled");
        assert!(
            t.interesting_cpus().len() < t.throttled_disabled.len(),
            "every CPU throttled — cooling heterogeneity missing"
        );
        // The average throttle percentage drops with balancing.
        assert!(
            t.avg.1 < t.avg.0,
            "throttling did not drop: {} -> {}",
            t.avg.0,
            t.avg.1
        );
        // And throughput improves by low single-digit percent.
        assert!(
            t.throughput_gain > 0.005,
            "throughput gain {}",
            t.throughput_gain
        );
        assert!(
            t.short_task_gain > 0.0,
            "short-task gain {}",
            t.short_task_gain
        );
    }

    #[test]
    fn sibling_pairs_throttle_together() {
        // Throttling is a package-level decision: hardware threads c
        // and c+8 report identical fractions.
        let t = run(true);
        for c in 0..8 {
            assert!(
                (t.throttled_disabled[c] - t.throttled_disabled[c + 8]).abs() < 1e-9,
                "cpu{c} vs cpu{}",
                c + 8
            );
        }
    }
}
