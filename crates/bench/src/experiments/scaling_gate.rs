//! The fixed-vs-strided scaling-sweep regression gate.
//!
//! The equivalence suite bounds strided-vs-fixed drift per metric on
//! synthetic shapes; this gate applies the same tolerances at the
//! *experiment* level: CI runs `exp_scaling --smoke` under both engine
//! cores and the comparator asserts that every cell's headline metrics
//! — arrivals (exact), throughput, energy per instruction, and the
//! p50/p95 sojourn percentiles — agree, failing the build on drift.
//! Anything that changes what either engine core computes now breaks
//! CI at the sweep level, not just in unit-sized scenarios.

use std::fmt;

/// Tolerances mirroring the equivalence suite
/// (`crates/sim/tests/equivalence.rs`): instructions and energy drift
/// under 3 % each there, so their ratio (nJ/instruction) gets the sum
/// of the two; percentiles get the suite's 15 %/25 %.
pub const GIPS_TOL: f64 = 0.03;
pub const NJ_TOL: f64 = 0.06;
pub const P50_TOL: f64 = 0.15;
pub const P95_TOL: f64 = 0.25;
/// Percentile checks need enough completed arrivals to be stable (the
/// equivalence suite gates on sample count the same way).
pub const MIN_COMPLETIONS: u64 = 20;

/// One parsed `scaling.csv` row (the metrics the gate compares).
#[derive(Clone, Debug, PartialEq)]
pub struct GateRow {
    /// Cell key: `topology/curve/policy`.
    pub key: String,
    /// Tasks that arrived (must match exactly across engine cores).
    pub arrivals: u64,
    /// Tasks that completed.
    pub completions: u64,
    /// Instructions per second, in billions.
    pub gips: f64,
    /// True energy per instruction, nanojoules.
    pub nj_per_instruction: f64,
    /// Median sojourn time, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile sojourn time, milliseconds.
    pub p95_ms: f64,
}

/// One tolerance violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Cell key.
    pub key: String,
    /// Metric name.
    pub metric: &'static str,
    /// Strided value.
    pub strided: f64,
    /// Fixed-tick value.
    pub fixed: f64,
    /// Observed relative deviation.
    pub deviation: f64,
    /// Allowed relative deviation.
    pub allowed: f64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} drifted {:.1}% (allowed {:.1}%): strided {} vs fixed {}",
            self.key,
            self.metric,
            self.deviation * 100.0,
            self.allowed * 100.0,
            self.strided,
            self.fixed
        )
    }
}

/// The gate's outcome: per-cell comparisons plus any violations.
#[derive(Clone, Debug)]
pub struct GateResult {
    /// Cells compared.
    pub cells: usize,
    /// Largest relative deviation seen per metric (for the CI log).
    pub max_deviation: Vec<(&'static str, f64)>,
    /// Tolerance violations (empty = gate passes).
    pub violations: Vec<Violation>,
}

impl GateResult {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for GateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fixed-vs-strided scaling gate: {} cells compared",
            self.cells
        )?;
        for (metric, dev) in &self.max_deviation {
            writeln!(f, "  max |drift| {metric}: {:.2}%", dev * 100.0)?;
        }
        if self.passed() {
            writeln!(f, "  PASS: every metric within the equivalence tolerances")?;
        } else {
            for v in &self.violations {
                writeln!(f, "  FAIL: {v}")?;
            }
        }
        Ok(())
    }
}

/// Parses a `scaling.csv` artifact into gate rows.
///
/// # Errors
///
/// Returns a message naming the offending line for any malformed row.
pub fn parse_csv(csv: &str) -> Result<Vec<GateRow>, String> {
    let mut rows = Vec::new();
    for (i, line) in csv.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 12 {
            return Err(format!(
                "line {}: expected 12 fields, got {}",
                i + 1,
                fields.len()
            ));
        }
        let num = |idx: usize| -> Result<f64, String> {
            fields[idx]
                .trim()
                .parse::<f64>()
                .map_err(|e| format!("line {}: field {}: {e}", i + 1, idx + 1))
        };
        rows.push(GateRow {
            key: format!("{}/{}/{}", fields[0], fields[3], fields[4]),
            arrivals: num(5)? as u64,
            completions: num(6)? as u64,
            gips: num(7)?,
            nj_per_instruction: num(8)?,
            p50_ms: num(10)?,
            p95_ms: num(11)?,
        });
    }
    Ok(rows)
}

/// Relative deviation. A non-finite input (a NaN/inf metric is itself
/// the class of regression the gate exists to catch) yields infinity,
/// so it always violates every tolerance instead of slipping through a
/// `NaN > tol` comparison as a pass.
fn rel(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() {
        return f64::INFINITY;
    }
    if a == 0.0 && b == 0.0 {
        0.0
    } else {
        (a - b).abs() / a.abs().max(b.abs())
    }
}

/// Compares the strided sweep against the fixed-tick sweep.
///
/// # Errors
///
/// Returns a message when the two artifacts do not cover the same
/// cells (a sweep-matrix mismatch is itself a regression).
pub fn compare(strided: &[GateRow], fixed: &[GateRow]) -> Result<GateResult, String> {
    if strided.len() != fixed.len() {
        return Err(format!(
            "cell count mismatch: strided {} vs fixed {}",
            strided.len(),
            fixed.len()
        ));
    }
    let mut violations = Vec::new();
    let mut max_dev = [
        ("arrivals", 0.0f64),
        ("gips", 0.0),
        ("nj_per_instr", 0.0),
        ("p50_ms", 0.0),
        ("p95_ms", 0.0),
    ];
    for s in strided {
        let f = fixed
            .iter()
            .find(|f| f.key == s.key)
            .ok_or_else(|| format!("cell {} missing from the fixed-tick sweep", s.key))?;
        // The thinned arrival stream is a pure function of seed and
        // clock: any difference at all is a regression.
        if s.arrivals != f.arrivals {
            violations.push(Violation {
                key: s.key.clone(),
                metric: "arrivals",
                strided: s.arrivals as f64,
                fixed: f.arrivals as f64,
                deviation: rel(s.arrivals as f64, f.arrivals as f64),
                allowed: 0.0,
            });
        }
        max_dev[0].1 = max_dev[0].1.max(rel(s.arrivals as f64, f.arrivals as f64));
        let mut check = |metric: &'static str, sv: f64, fv: f64, tol: f64, slot: usize| {
            let dev = rel(sv, fv);
            if let Some(m) = max_dev.get_mut(slot) {
                m.1 = m.1.max(dev);
            }
            if dev > tol {
                violations.push(Violation {
                    key: s.key.clone(),
                    metric,
                    strided: sv,
                    fixed: fv,
                    deviation: dev,
                    allowed: tol,
                });
            }
        };
        check("gips", s.gips, f.gips, GIPS_TOL, 1);
        check(
            "nj_per_instr",
            s.nj_per_instruction,
            f.nj_per_instruction,
            NJ_TOL,
            2,
        );
        // Percentiles over thin samples are noisy in both engines; the
        // equivalence suite gates them on sample count the same way.
        if s.completions >= MIN_COMPLETIONS && f.completions >= MIN_COMPLETIONS {
            check("p50_ms", s.p50_ms, f.p50_ms, P50_TOL, 3);
            check("p95_ms", s.p95_ms, f.p95_ms, P95_TOL, 4);
        }
    }
    Ok(GateResult {
        cells: strided.len(),
        max_deviation: max_dev.to_vec(),
        violations,
    })
}

/// The state-hash gate over a `scaling_fork_hashes.csv` artifact
/// (`cell,straight_hash,fork_hash` rows from `exp_scaling --fork`):
/// every cell's end-of-measurement state hash must match between the
/// per-cell-warm-up leg and the forked leg **exactly**. The hash
/// covers every serialized engine field, so this catches drift the
/// CSV tolerances — and the ≥20-completion percentile gating — miss;
/// a zero-completion cell has a state hash like any other.
///
/// Returns `(cells checked, mismatched cell keys)`.
///
/// # Errors
///
/// Returns a message when the artifact is unreadable or malformed.
pub fn hash_gate(path: &str) -> Result<(usize, Vec<String>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut cells = 0;
    let mut mismatched = Vec::new();
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(format!(
                "line {}: expected 3 fields, got {}",
                i + 1,
                fields.len()
            ));
        }
        let hash = |idx: usize| -> Result<u64, String> {
            u64::from_str_radix(fields[idx].trim(), 16)
                .map_err(|e| format!("line {}: field {}: {e}", i + 1, idx + 1))
        };
        cells += 1;
        if hash(1)? != hash(2)? {
            mismatched.push(fields[0].to_string());
        }
    }
    if cells == 0 {
        return Err(format!("{path} holds no hash rows"));
    }
    Ok((cells, mismatched))
}

/// The gate's failure-path diagnostic: replays `key` through the
/// trace-diff experiment (fixed-tick vs strided at a one-tick stride
/// cap, event tracing on) and renders the first divergent event.
/// Never errors — an unresolvable key becomes a message, because this
/// runs while the gate is already failing and must not mask the
/// violation report.
pub fn trace_diff_summary(key: &str) -> String {
    match crate::experiments::trace_diff::engines(key) {
        Ok(diff) => diff.to_string(),
        Err(message) => format!("trace-diff unavailable for {key}: {message}\n"),
    }
}

/// Runs the gate over two artifact files.
///
/// # Errors
///
/// Returns a message when an artifact is unreadable, malformed, or
/// covers different cells.
pub fn run(strided_path: &str, fixed_path: &str) -> Result<GateResult, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let strided = parse_csv(&read(strided_path)?)?;
    let fixed = parse_csv(&read(fixed_path)?)?;
    if strided.is_empty() {
        return Err(format!("{strided_path} holds no sweep rows"));
    }
    compare(&strided, &fixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = "topology,packages,cpus,curve,policy,arrivals,completions,gips,\
                          nj_per_instr,migrations,p50_ms,p95_ms\n";

    fn row(
        key: (&str, &str, &str),
        arrivals: u64,
        gips: f64,
        nj: f64,
        p50: f64,
        p95: f64,
    ) -> String {
        format!(
            "{},2,8,{},{},{arrivals},{},{gips:.3},{nj:.3},5,{p50:.1},{p95:.1}\n",
            key.0,
            key.1,
            key.2,
            arrivals.saturating_sub(2),
        )
    }

    fn csv(rows: &[String]) -> String {
        let mut out = String::from(HEADER);
        for r in rows {
            out.push_str(r);
        }
        out
    }

    #[test]
    fn identical_sweeps_pass() {
        let a = csv(&[
            row(
                ("dual2", "diurnal", "stock+hlt"),
                40,
                10.0,
                5.0,
                300.0,
                900.0,
            ),
            row(("dual2", "burst", "ea+dvfs"), 44, 11.0, 4.5, 280.0, 950.0),
        ]);
        let rows = parse_csv(&a).unwrap();
        let result = compare(&rows, &rows).unwrap();
        assert!(result.passed(), "{result}");
        assert_eq!(result.cells, 2);
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let strided = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            40,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let fixed = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            40,
            10.2,
            5.1,
            320.0,
            1000.0,
        )]))
        .unwrap();
        let result = compare(&strided, &fixed).unwrap();
        assert!(result.passed(), "{result}");
    }

    #[test]
    fn arrival_mismatch_fails_exactly() {
        let strided = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            40,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let fixed = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            41,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let result = compare(&strided, &fixed).unwrap();
        assert!(!result.passed());
        assert_eq!(result.violations[0].metric, "arrivals");
    }

    #[test]
    fn throughput_drift_beyond_tolerance_fails() {
        let strided = parse_csv(&csv(&[row(
            ("numa16", "burst", "ea+hlt"),
            80,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let fixed = parse_csv(&csv(&[row(
            ("numa16", "burst", "ea+hlt"),
            80,
            11.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let result = compare(&strided, &fixed).unwrap();
        assert!(!result.passed());
        assert!(result.violations.iter().any(|v| v.metric == "gips"));
        assert!(result.to_string().contains("FAIL"));
    }

    #[test]
    fn thin_samples_skip_percentile_checks() {
        // 10 completions: p50/p95 noise must not fail the gate.
        let strided = parse_csv(&csv(&[row(
            ("dual2", "burst", "stock+dvfs"),
            12,
            10.0,
            5.0,
            100.0,
            200.0,
        )]))
        .unwrap();
        let fixed = parse_csv(&csv(&[row(
            ("dual2", "burst", "stock+dvfs"),
            12,
            10.0,
            5.0,
            400.0,
            900.0,
        )]))
        .unwrap();
        assert!(compare(&strided, &fixed).unwrap().passed());
    }

    #[test]
    fn non_finite_metrics_fail_the_gate() {
        // A NaN metric is itself the regression class the gate exists
        // for; it must never slide through a `NaN > tol` comparison.
        let strided = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            40,
            f64::NAN,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let fixed = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            40,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let result = compare(&strided, &fixed).unwrap();
        assert!(!result.passed());
        assert!(result.violations.iter().any(|v| v.metric == "gips"));
    }

    #[test]
    fn mismatched_matrices_are_an_error() {
        let a = parse_csv(&csv(&[row(
            ("dual2", "diurnal", "stock+hlt"),
            40,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        let b = parse_csv(&csv(&[row(
            ("numa16", "diurnal", "stock+hlt"),
            40,
            10.0,
            5.0,
            300.0,
            900.0,
        )]))
        .unwrap();
        assert!(compare(&a, &b).is_err());
        assert!(compare(&a, &[]).is_err());
    }

    #[test]
    fn malformed_csv_is_an_error() {
        assert!(parse_csv("topology,short\nonly,two\n").is_err());
        let bad = format!("{HEADER}dual2,2,8,diurnal,stock+hlt,x,1,1,1,1,1,1\n");
        assert!(parse_csv(&bad).is_err());
        assert_eq!(parse_csv(HEADER).unwrap().len(), 0);
    }

    #[test]
    fn trace_diff_summary_survives_unknown_cells() {
        let msg = trace_diff_summary("not/a/cell");
        assert!(msg.contains("unavailable"), "{msg}");
    }

    #[test]
    fn real_sweep_csv_round_trips() {
        // The gate must accept exactly what `ScalingSweep::to_csv`
        // emits.
        let sweep = crate::experiments::scaling::ScalingSweep {
            rows: vec![crate::experiments::scaling::ScalingRow {
                topology: "dual2",
                packages: 2,
                cpus: 8,
                curve: "diurnal",
                policy: "stock+hlt",
                arrivals: 40,
                completions: 38,
                gips: 9.876,
                nj_per_instruction: 5.432,
                migrations: 7,
                p50_ms: 123.4,
                p95_ms: 567.8,
            }],
            duration: ebs_units::SimDuration::from_secs(6),
            wall_s: 1.0,
        };
        let rows = parse_csv(&sweep.to_csv()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, "dual2/diurnal/stock+hlt");
        assert_eq!(rows[0].arrivals, 40);
        assert!((rows[0].gips - 9.876).abs() < 1e-9);
        assert!((rows[0].p95_ms - 567.8).abs() < 0.05);
    }
}
