//! The DVFS-vs-hlt thermal enforcement study.
//!
//! The paper's evaluation enforces power budgets by executing `hlt`
//! and treats the throttled time as the penalty energy-aware
//! scheduling exists to avoid; voltage/frequency scaling is named as
//! the alternative actuator it does not model. This experiment runs
//! the Section 6.1 mix (18 tasks, SMT off) under a 40 W package budget
//! with every enforcement mechanism the simulator now has:
//!
//! - no enforcement (the loss reference),
//! - `hlt` throttling alone and with energy-aware balancing,
//! - `ThermalAware` DVFS alone and with energy-aware balancing,
//! - DVFS with the `hlt` controller armed as a backstop.
//!
//! The interesting shape: at the same budget, DVFS loses *less
//! throughput* than `hlt` (work continues at a reduced clock instead
//! of stopping) and spends *less energy per instruction* (dynamic
//! energy drops with V² where `hlt`'s does not), while the backstop
//! row shows the governor engaging early enough that the throttle
//! never fires.

use crate::fmt::{pct, Table};
use ebs_dvfs::GovernorKind;
use ebs_sim::{run_seeds, DvfsSpec, MaxPowerSpec, SimConfig, SimReport, Simulation};
use ebs_units::{SimDuration, Watts};
use ebs_workloads::section61_mix;
use std::time::Instant;

/// One enforcement variant's averaged outcome.
#[derive(Clone, Debug)]
pub struct DvfsRow {
    /// Variant name.
    pub name: &'static str,
    /// Mean instructions per second.
    pub throughput_ips: f64,
    /// Throughput loss versus the unconstrained reference.
    pub loss: f64,
    /// Mean true energy over the run.
    pub energy_kj: f64,
    /// Mean true energy per instruction in nanojoules.
    pub nj_per_instruction: f64,
    /// Mean fraction of time spent hlt-throttled.
    pub throttled: f64,
    /// Mean number of hlt engagements summed over packages (from the
    /// per-package [`ebs_thermal::ThrottleStats`] in the report).
    pub hlt_engagements: f64,
    /// Mean fraction of time spent below the nominal clock.
    pub scaled: f64,
    /// Mean effective core clock in gigahertz.
    pub mean_ghz: f64,
    /// Mean governor decisions per run (0 without DVFS) — what the
    /// event-driven trigger path exists to shrink.
    pub dvfs_decisions: f64,
    /// Simulated seconds per wall second over the variant's runs.
    pub sim_per_wall: f64,
}

/// The study result.
#[derive(Clone, Debug)]
pub struct DvfsStudy {
    /// One row per enforcement variant, reference first.
    pub rows: Vec<DvfsRow>,
}

/// The package power budget of the study.
pub const BUDGET: Watts = Watts(40.0);

fn base_config() -> SimConfig {
    SimConfig::xseries445()
        .smt(false)
        .energy_aware(false)
        .throttling(false)
        .max_power(MaxPowerSpec::PerPackage(BUDGET))
}

fn variants() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("no enforcement", base_config()),
        ("hlt", base_config().throttling(true)),
        (
            "hlt + energy-aware",
            base_config().throttling(true).energy_aware(true),
        ),
        (
            "dvfs (thermal-aware)",
            base_config().dvfs_governor(GovernorKind::ThermalAware),
        ),
        (
            // The 10 ms-cadence baseline of the event-driven governor
            // path: same policy, decision points on the fixed timer.
            "dvfs (cadence)",
            base_config().dvfs(DvfsSpec {
                governor: GovernorKind::ThermalAware,
                event_driven: false,
                ..DvfsSpec::default()
            }),
        ),
        (
            "dvfs + energy-aware",
            base_config()
                .dvfs_governor(GovernorKind::ThermalAware)
                .energy_aware(true),
        ),
        (
            "dvfs + hlt backstop",
            base_config()
                .dvfs_governor(GovernorKind::ThermalAware)
                .throttling(true),
        ),
    ]
}

fn averaged(
    name: &'static str,
    reports: &[SimReport],
    reference_ips: f64,
    sim_per_wall: f64,
) -> DvfsRow {
    let n = reports.len() as f64;
    let mean = |f: &dyn Fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    let ips = mean(&|r| r.throughput_ips);
    DvfsRow {
        name,
        throughput_ips: ips,
        loss: if reference_ips == 0.0 {
            0.0
        } else {
            (1.0 - ips / reference_ips).max(0.0)
        },
        energy_kj: mean(&|r| r.true_energy.0) / 1e3,
        nj_per_instruction: mean(&|r| r.nj_per_instruction()),
        throttled: mean(&|r| r.avg_throttled_fraction),
        hlt_engagements: mean(&|r| {
            r.throttle_stats.iter().map(|s| s.engagements).sum::<u64>() as f64
        }),
        scaled: mean(&|r| r.avg_scaled_fraction),
        mean_ghz: mean(&|r| r.mean_frequency.as_ghz()),
        dvfs_decisions: mean(&|r| r.dvfs_decisions as f64),
        sim_per_wall,
    }
}

/// Runs the study.
pub fn run(quick: bool) -> DvfsStudy {
    let duration = SimDuration::from_secs(if quick { 120 } else { 300 });
    let seeds: &[u64] = if quick {
        &crate::SEEDS[..2]
    } else {
        &crate::SEEDS[..3]
    };
    let mix = section61_mix();
    let mut rows = Vec::new();
    let mut reference_ips = 0.0;
    for (name, cfg) in variants() {
        let start = Instant::now();
        let reports = run_seeds(&cfg, seeds, duration, |sim| sim.spawn_mix(&mix, 3));
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        let sim_per_wall = duration.as_secs_f64() * seeds.len() as f64 / wall;
        let row = averaged(name, &reports, reference_ips, sim_per_wall);
        if rows.is_empty() {
            reference_ips = row.throughput_ips;
        }
        rows.push(row);
    }
    DvfsStudy { rows }
}

/// One traced run's artefacts (the `--trace` mode of `exp_dvfs`).
#[derive(Clone, Debug)]
pub struct TracedDvfs {
    /// Simulated horizon of the run.
    pub duration: SimDuration,
    /// Scheduling events recorded.
    pub events: usize,
    /// Metrics snapshots taken (100 ms cadence).
    pub snapshots: usize,
    /// The Perfetto/Chrome trace-event document (`trace_dvfs.json`).
    pub perfetto_json: String,
    /// The metrics-registry snapshot table (`metrics_dvfs.csv`).
    pub metrics_csv: String,
}

impl core::fmt::Display for TracedDvfs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "traced DVFS run (dvfs + hlt backstop, seed {}, {:.0} s): \
             {} scheduling events, {} metrics snapshots",
            crate::SEEDS[0],
            self.duration.as_secs_f64(),
            self.events,
            self.snapshots
        )?;
        writeln!(
            f,
            "open results/trace_dvfs.json in Perfetto (ui.perfetto.dev) or \
             chrome://tracing; results/metrics_dvfs.csv holds the counter table"
        )
    }
}

/// Runs the backstop variant once with the full observability stack
/// on — event tracing, 100 ms metrics snapshots, the 100 ms thermal
/// trace — and exports the Perfetto document plus the metrics CSV.
/// One seed, shorter horizon than the study: the artefact is for
/// humans scrubbing a timeline, not for averaged numbers.
pub fn traced_run(quick: bool) -> TracedDvfs {
    let duration = SimDuration::from_secs(if quick { 20 } else { 60 });
    let cfg = base_config()
        .dvfs_governor(GovernorKind::ThermalAware)
        .throttling(true)
        .seed(crate::SEEDS[0])
        .trace_events(true)
        .metrics_every(SimDuration::from_millis(100))
        .trace_thermal(SimDuration::from_millis(100));
    let mut sim = Simulation::new(cfg);
    sim.spawn_mix(&section61_mix(), 3);
    sim.run_for(duration);
    TracedDvfs {
        duration,
        events: sim.events().map_or(0, |t| t.len()),
        snapshots: sim.metrics().map_or(0, |m| m.snapshots().len()),
        perfetto_json: sim.perfetto_json().expect("event tracing is on"),
        metrics_csv: sim.metrics().expect("metrics are on").to_csv(),
    }
}

impl DvfsStudy {
    /// The row for a variant.
    pub fn row(&self, name: &str) -> &DvfsRow {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("no variant named {name}"))
    }

    /// Renders the study as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "variant,gips,loss,energy_kj,nj_per_instr,throttled,hlt_engagements,scaled,\
             mean_ghz,dvfs_decisions,sim_per_wall\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.2},{:.3},{:.4},{:.1},{:.4},{:.3},{:.1},{:.1}\n",
                r.name,
                r.throughput_ips / 1e9,
                r.loss,
                r.energy_kj,
                r.nj_per_instruction,
                r.throttled,
                r.hlt_engagements,
                r.scaled,
                r.mean_ghz,
                r.dvfs_decisions,
                r.sim_per_wall
            ));
        }
        out
    }
}

impl core::fmt::Display for DvfsStudy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "DVFS vs hlt: Section 6.1 mix under a {BUDGET} package budget (SMT off)"
        )?;
        let mut t = Table::new(vec![
            "enforcement",
            "Ginstr/s",
            "loss",
            "energy",
            "nJ/instr",
            "throttled",
            "hlt engages",
            "scaled",
            "mean clock",
            "decisions",
            "sim/wall",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.name.to_string(),
                format!("{:.2}", r.throughput_ips / 1e9),
                pct(r.loss),
                format!("{:.1}kJ", r.energy_kj),
                format!("{:.2}", r.nj_per_instruction),
                pct(r.throttled),
                format!("{:.0}", r.hlt_engagements),
                pct(r.scaled),
                format!("{:.2}GHz", r.mean_ghz),
                format!("{:.0}", r.dvfs_decisions),
                format!("{:.0}", r.sim_per_wall),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "(scaling trades clock for continuity: same budget, less lost throughput, \
             fewer joules per instruction)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_loses_less_than_hlt_at_the_same_budget() {
        let study = run(true);
        assert_eq!(study.rows.len(), 7);
        let hlt = study.row("hlt");
        let dvfs = study.row("dvfs (thermal-aware)");
        // Both mechanisms actually engaged.
        assert!(hlt.throttled > 0.05, "hlt never bit: {}", hlt.throttled);
        assert!(dvfs.scaled > 0.05, "DVFS never engaged: {}", dvfs.scaled);
        assert!(dvfs.mean_ghz < 2.2);
        // The acceptance shape: lower throughput loss and better
        // energy per instruction under DVFS.
        assert!(
            dvfs.loss < hlt.loss,
            "DVFS lost more than hlt: {} vs {}",
            dvfs.loss,
            hlt.loss
        );
        assert!(dvfs.nj_per_instruction < hlt.nj_per_instruction);
        // The backstop row: the governor engages before the throttle,
        // which therefore (almost) never fires.
        let backstop = study.row("dvfs + hlt backstop");
        assert!(
            backstop.throttled < 0.01,
            "hlt fired despite the governor: {}",
            backstop.throttled
        );
        assert!(
            backstop.hlt_engagements < hlt.hlt_engagements,
            "backstop engaged as often as bare hlt: {} vs {}",
            backstop.hlt_engagements,
            hlt.hlt_engagements
        );
        assert!(hlt.hlt_engagements >= 1.0, "hlt rows must engage");
        // Energy-aware balancing cannot conjure headroom when every
        // package is over budget, but it must not hurt either.
        let ea = study.row("hlt + energy-aware");
        assert!(ea.loss < hlt.loss + 0.02);
        // The cadence baseline enforces the same policy with the same
        // headline outcome (the event-driven path is an optimisation,
        // not a policy change) at far more governor wake-ups.
        let cadence = study.row("dvfs (cadence)");
        assert!(cadence.scaled > 0.05);
        assert!(
            (cadence.loss - dvfs.loss).abs() < 0.05,
            "cadence and event-driven losses diverged: {} vs {}",
            cadence.loss,
            dvfs.loss
        );
        assert!(
            (cadence.mean_ghz - dvfs.mean_ghz).abs() < 0.15,
            "mean clocks diverged: {} vs {}",
            cadence.mean_ghz,
            dvfs.mean_ghz
        );
        assert!(
            dvfs.dvfs_decisions * 2.0 < cadence.dvfs_decisions,
            "event-driven path saved no wake-ups: {} vs {}",
            dvfs.dvfs_decisions,
            cadence.dvfs_decisions
        );
    }

    #[test]
    fn traced_run_exports_valid_perfetto_and_metrics() {
        use ebs_trace::{parse_json, Json};
        let traced = traced_run(true);
        assert!(traced.events > 0, "no events recorded");
        // 20 s at a 100 ms cadence: one snapshot per interval.
        assert!(
            traced.snapshots >= 190,
            "only {} snapshots",
            traced.snapshots
        );
        // The Perfetto document parses and carries the acceptance
        // tracks: task slices, thermal power, and frequency counters.
        let parsed = parse_json(&traced.perfetto_json).expect("valid JSON");
        let list = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        let slices = list
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        assert!(slices > 10, "expected task slices, saw {slices}");
        let counter_has = |prefix: &str| {
            list.iter().any(|e| {
                e.get("ph").and_then(Json::as_str) == Some("C")
                    && e.get("name")
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.starts_with(prefix))
            })
        };
        assert!(counter_has("thermal.power_w."), "no thermal power track");
        assert!(counter_has("dvfs.freq_ghz."), "no frequency track");
        // Slice labels carry catalog program names.
        assert!(traced.perfetto_json.contains("bitcnts"));
        // The metrics CSV has the registry header plus one line per
        // snapshot.
        let header = traced.metrics_csv.lines().next().expect("header");
        assert!(header.starts_with("time_s,"));
        assert!(header.contains("dvfs.decisions"));
        assert!(header.contains("sched.context_switches"));
        assert_eq!(
            traced.metrics_csv.lines().count(),
            traced.snapshots + 1,
            "one CSV line per snapshot"
        );
    }

    #[test]
    fn csv_has_one_line_per_variant() {
        let study = DvfsStudy {
            rows: vec![DvfsRow {
                name: "x",
                throughput_ips: 1e9,
                loss: 0.1,
                energy_kj: 2.0,
                nj_per_instruction: 3.0,
                throttled: 0.0,
                hlt_engagements: 0.0,
                scaled: 0.5,
                mean_ghz: 1.8,
                dvfs_decisions: 12.0,
                sim_per_wall: 250.0,
            }],
        };
        let csv = study.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().next().unwrap().contains("hlt_engagements"));
        assert!(csv.lines().next().unwrap().contains("dvfs_decisions"));
        assert_eq!(
            csv.lines().nth(1).unwrap(),
            "x,1.0000,0.1000,2.00,3.000,0.0000,0.0,0.5000,1.800,12.0,250.0"
        );
    }
}
