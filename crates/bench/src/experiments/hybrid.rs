//! The heterogeneous-hardware study: class-aware vs class-blind
//! energy balancing on hybrid machines.
//!
//! Section 7 of the paper claims the scheme extends to CMPs "by adding
//! an additional layer to the domain hierarchy"; the open question is
//! whether counter-based energy balancing still pays off when cores
//! differ in *class* — when a migration changes the IPC, the P-state
//! ladder, and the counter-rate truth under a task. This sweep answers
//! it head-on: a two-package machine at three P/E splits serves the
//! open-workload curves twice — once with the class-aware policies
//! (capacity-normalized load, class-aware placement, cross-class
//! estimator refit) and once `class_blind` (every policy pretends the
//! cores are identical, the pre-refactor behaviour) — and the cells
//! compare gips/joule. Each cell averages the seeds in
//! [`crate::SEEDS`]; `results/hybrid.csv` gets one row per cell.

use crate::fmt::{pct, Table};
use ebs_dvfs::GovernorKind;
use ebs_sim::{run_seeds, ClassCatalog, MaxPowerSpec, SimConfig, SimReport};
use ebs_topology::{ClassId, TopologyBuilder};
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload, Program};

/// Cores per package of the study machine (two packages, SMT off).
const CORES_PER_PACKAGE: usize = 8;

/// Service-demand bounds of arriving tasks, in instructions. Tasks are
/// *long* — tens of seconds solo — so each one outlives the thermal
/// time constant, heats its package into the hot-task trigger, and has
/// to wander (the Figure 9 regime, many tasks at once). Long tasks are
/// also what makes the cells discriminating: most of the offered work
/// is still in flight at the horizon, so throughput is set by where
/// the wanderers *sit*, not by work conservation.
const MIN_WORK: u64 = 20_000_000_000;
const MAX_WORK: u64 = 50_000_000_000;

/// Target utilization at the curve's peak rate factor, as a fraction
/// of the machine's aggregate instruction capacity. Deliberately below
/// saturation: hot-task migration only fires for CPUs running exactly
/// one task, and the idle cores are what the class-aware and
/// class-blind destination searches disagree about.
const PEAK_UTIL: f64 = 0.4;

/// The P/E splits under study: performance cores per 8-core package.
pub fn perf_splits() -> Vec<usize> {
    vec![2, 4, 6]
}

/// The arrival curves under study.
pub fn curves() -> Vec<LoadCurve> {
    vec![
        LoadCurve::Diurnal {
            period: SimDuration::from_secs(3),
            floor: 0.3,
        },
        LoadCurve::Burst {
            period: SimDuration::from_secs(2),
            duty: 0.25,
            high: 2.0,
        },
    ]
}

/// The task palette: the compute-bound catalog programs. All three
/// run hot enough to reach the package trigger, and their IPCs (2.0,
/// 1.5, 1.8) are exactly what an efficiency core cannot sustain —
/// parking one there costs ~45% of its throughput.
fn palette() -> Vec<Program> {
    vec![catalog::aluadd(), catalog::pushpop(), catalog::bitcnts()]
}

/// Peak arrival rate (tasks/s) that offers [`PEAK_UTIL`] of the
/// machine's aggregate capacity. Capacity is counted in class-0 CPU
/// equivalents from the [`ClassCatalog`] (an E core contributes its
/// real fraction of a P core), and service time uses the palette's
/// mean inverse IPC — so the offered load lands in the same queueing
/// regime at every P/E split.
fn peak_rate(cfg: &SimConfig, perf: usize) -> f64 {
    let cat = ClassCatalog::for_config(cfg);
    let eff_cap = cat.capacity(ClassId(1));
    let p_equiv = 2.0 * (perf as f64 + (CORES_PER_PACKAGE - perf) as f64 * eff_cap);
    let programs = palette();
    let mean_inv_ipc = programs
        .iter()
        .map(|p| 1.0 / p.main_phase().ipc)
        .sum::<f64>()
        / programs.len() as f64;
    let mean_work = 0.5 * (MIN_WORK + MAX_WORK) as f64;
    let mean_service_s = mean_work * mean_inv_ipc / cfg.freq_hz;
    PEAK_UTIL * p_equiv / mean_service_s
}

/// Builds one variant's config: a `2 × (perf P + (8-perf) E)` machine
/// under the given curve, class-aware or class-blind. The seed is set
/// by the runner ([`run_seeds`] stamps one per run).
pub fn cell_config(perf: usize, curve: LoadCurve, blind: bool) -> SimConfig {
    let shape = TopologyBuilder::new()
        .nodes(1)
        .packages_per_node(2)
        .cores_per_package(CORES_PER_PACKAGE)
        .threads_per_core(1)
        .perf_cores_per_package(perf);
    // Package 0 cools poorly, package 1 well (the paper's testbed had
    // the same spread), and the package budget is tight relative to
    // two resident compute tasks — so long-running tasks repeatedly
    // hit the hot-task trigger and must wander. The destination search
    // is where class-aware and class-blind genuinely disagree: blind
    // picks the coolest CPU (an idle efficiency core, because they
    // idle coldest), aware the highest-capacity CPU among those that
    // satisfy the coolness gap. The on-demand governor lets whichever
    // cores each policy leaves idle clock down.
    let cfg = SimConfig::with_topology(shape)
        .respawn(false)
        .energy_aware(true)
        .class_blind(blind)
        .max_power(MaxPowerSpec::PerPackage(Watts(140.0)))
        .cooling_factors(vec![1.25, 0.65])
        .dvfs_governor(GovernorKind::OnDemand)
        .strided();
    let workload = OpenWorkload::new(palette(), peak_rate(&cfg, perf))
        .curve(curve)
        .service_work(MIN_WORK, MAX_WORK);
    cfg.open_workload(workload)
}

/// One variant's averaged outcome within a cell.
#[derive(Clone, Copy, Debug)]
pub struct VariantOutcome {
    /// Mean throughput in giga-instructions per second.
    pub gips: f64,
    /// Mean efficiency in giga-instructions per joule.
    pub gips_per_joule: f64,
    /// Mean completed tasks per run.
    pub completions: f64,
    /// Mean hot-task migrations per run (idle moves + exchanges) —
    /// the mechanism under study; zero would mean the regime never
    /// exercised the class-aware destination search.
    pub hot_migrations: f64,
    /// Mean fraction of CPU time spent throttled.
    pub throttled: f64,
}

fn averaged(reports: &[SimReport]) -> VariantOutcome {
    let n = reports.len() as f64;
    let mean = |f: &dyn Fn(&SimReport) -> f64| reports.iter().map(f).sum::<f64>() / n;
    VariantOutcome {
        gips: mean(&|r| r.instructions_retired as f64 / 1e9 / r.duration.as_secs_f64()),
        gips_per_joule: mean(&|r| {
            if r.true_energy.0 > 0.0 {
                r.instructions_retired as f64 / 1e9 / r.true_energy.0
            } else {
                0.0
            }
        }),
        completions: mean(&|r| r.completions as f64),
        hot_migrations: mean(&|r| (r.migrations_by_reason[2] + r.migrations_by_reason[3]) as f64),
        throttled: mean(&|r| r.avg_throttled_fraction),
    }
}

/// One P/E-split × curve cell: both variants plus the headline delta.
#[derive(Clone, Debug)]
pub struct HybridCell {
    /// Performance cores per package (of [`CORES_PER_PACKAGE`]).
    pub perf: usize,
    /// Curve name (`diurnal` / `burst`).
    pub curve: &'static str,
    /// The class-aware variant.
    pub aware: VariantOutcome,
    /// The class-blind baseline.
    pub blind: VariantOutcome,
}

impl HybridCell {
    /// `aP+bE` label of the split.
    pub fn ratio(&self) -> String {
        format!("{}P+{}E", self.perf, CORES_PER_PACKAGE - self.perf)
    }

    /// Relative gips/joule gain of class-aware over class-blind.
    pub fn efficiency_gain(&self) -> f64 {
        if self.blind.gips_per_joule > 0.0 {
            self.aware.gips_per_joule / self.blind.gips_per_joule - 1.0
        } else {
            0.0
        }
    }
}

/// The study result: the full P/E × curve grid.
#[derive(Clone, Debug)]
pub struct HybridStudy {
    /// Cells, splits-major, curves in [`curves`] order.
    pub cells: Vec<HybridCell>,
}

impl HybridStudy {
    /// Whether class-aware balancing beats class-blind in gips/joule
    /// on at least one cell — the study's acceptance gate.
    pub fn any_aware_win(&self) -> bool {
        self.cells.iter().any(|c| c.efficiency_gain() > 0.0)
    }

    /// Renders the grid as CSV, one row per cell.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "ratio,curve,aware_gips,blind_gips,aware_gips_per_j,blind_gips_per_j,\
             efficiency_gain,aware_hot_migrations,blind_hot_migrations,\
             aware_throttled,blind_throttled,aware_completions,blind_completions\n",
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.5},{:.5},{:.4},{:.1},{:.1},{:.4},{:.4},{:.1},{:.1}\n",
                c.ratio(),
                c.curve,
                c.aware.gips,
                c.blind.gips,
                c.aware.gips_per_joule,
                c.blind.gips_per_joule,
                c.efficiency_gain(),
                c.aware.hot_migrations,
                c.blind.hot_migrations,
                c.aware.throttled,
                c.blind.throttled,
                c.aware.completions,
                c.blind.completions,
            ));
        }
        out
    }
}

impl core::fmt::Display for HybridStudy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Hybrid study: class-aware vs class-blind energy balancing, \
             2 packages x {CORES_PER_PACKAGE} cores"
        )?;
        let mut t = Table::new(vec![
            "split",
            "curve",
            "aware G/J",
            "blind G/J",
            "gain",
            "aware gips",
            "blind gips",
            "aware hot-migr",
            "blind hot-migr",
        ]);
        for c in &self.cells {
            t.row(vec![
                c.ratio(),
                c.curve.to_string(),
                format!("{:.4}", c.aware.gips_per_joule),
                format!("{:.4}", c.blind.gips_per_joule),
                pct(c.efficiency_gain()),
                format!("{:.2}", c.aware.gips),
                format!("{:.2}", c.blind.gips),
                format!("{:.1}", c.aware.hot_migrations),
                format!("{:.1}", c.blind.hot_migrations),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "(gain = class-aware gips/joule over class-blind; positive means \
             knowing the core classes paid for itself)"
        )
    }
}

/// Runs the study. `smoke` shrinks the horizon and seed set to the CI
/// size; the grid itself (3 splits x 2 curves) stays complete.
pub fn run(smoke: bool) -> HybridStudy {
    let duration = SimDuration::from_secs(if smoke { 24 } else { 60 });
    let seeds: &[u64] = if smoke {
        &crate::SEEDS[..3]
    } else {
        &crate::SEEDS
    };
    let mut cells = Vec::new();
    for perf in perf_splits() {
        for curve in curves() {
            let run_variant = |blind: bool| {
                let cfg = cell_config(perf, curve, blind);
                run_seeds(&cfg, seeds, duration, |_| {})
            };
            cells.push(HybridCell {
                perf,
                curve: curve.name(),
                aware: averaged(&run_variant(false)),
                blind: averaged(&run_variant(true)),
            });
        }
    }
    HybridStudy { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_aware_beats_class_blind_somewhere() {
        let study = run(true);
        assert_eq!(study.cells.len(), 6);
        for c in &study.cells {
            assert!(
                c.aware.gips > 0.0,
                "{} {} retired nothing",
                c.ratio(),
                c.curve
            );
            assert!(c.blind.gips_per_joule > 0.0);
        }
        // The regime must actually exercise the mechanism under study:
        // hot-task migrations fire in both variants.
        assert!(
            study.cells.iter().any(|c| c.aware.hot_migrations > 0.0)
                && study.cells.iter().any(|c| c.blind.hot_migrations > 0.0),
            "hot-task migration never fired:\n{study}"
        );
        // The acceptance shape: knowing the classes wins gips/joule on
        // at least one split x curve cell.
        assert!(
            study.any_aware_win(),
            "class-aware never beat class-blind:\n{study}"
        );
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let study = HybridStudy {
            cells: vec![HybridCell {
                perf: 2,
                curve: "diurnal",
                aware: VariantOutcome {
                    gips: 10.0,
                    gips_per_joule: 0.05,
                    completions: 100.0,
                    hot_migrations: 12.0,
                    throttled: 0.01,
                },
                blind: VariantOutcome {
                    gips: 9.0,
                    gips_per_joule: 0.04,
                    completions: 90.0,
                    hot_migrations: 12.0,
                    throttled: 0.02,
                },
            }],
        };
        let csv = study.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().next().unwrap().contains("efficiency_gain"));
        assert!(csv.contains("2P+6E,diurnal,"));
        let cell = &study.cells[0];
        assert!((cell.efficiency_gain() - 0.25).abs() < 1e-9);
        assert!(study.any_aware_win());
    }
}
