//! Table 2: the power levels of the test programs.
//!
//! Each program runs solo; the row compares the *estimated* energy
//! profile the scheduler converges to (the quantity the policies act
//! on) against the paper's multimeter numbers.

use crate::fmt::Table;
use ebs_sim::{SimConfig, Simulation};
use ebs_units::{SimDuration, Watts};
use ebs_workloads::section61_mix;

/// One program's row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Program name.
    pub program: &'static str,
    /// Paper's measured power (midpoint for openssl's range).
    pub paper: Watts,
    /// The converged estimated energy profile.
    pub profile: Watts,
    /// Observed per-slice power range over the run.
    pub range: (Watts, Watts),
}

/// The full Table 2 result.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// One row per program.
    pub rows: Vec<Row>,
}

const PAPER: [(&str, f64); 6] = [
    ("bitcnts", 61.0),
    ("memrw", 38.0),
    ("aluadd", 50.0),
    ("pushpop", 47.0),
    ("openssl", 49.5), // Paper reports the 42 W - 57 W range.
    ("bzip2", 48.0),
];

/// Runs the Table 2 experiment.
pub fn run(quick: bool) -> Table2 {
    let duration = SimDuration::from_secs(if quick { 30 } else { 90 });
    let mut rows = Vec::new();
    for program in section61_mix() {
        let cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .respawn(false)
            .seed(7);
        let mut sim = Simulation::new(cfg);
        sim.record_slice_powers();
        let id = sim.spawn_program(&program);
        sim.run_for(duration);
        let profile = sim.system().task(id).profile();
        let powers = sim
            .slice_powers()
            .and_then(|log| log.get(&id).cloned())
            .unwrap_or_default();
        let lo = powers
            .iter()
            .cloned()
            .fold(Watts(f64::INFINITY), Watts::min);
        let hi = powers
            .iter()
            .cloned()
            .fold(Watts(f64::NEG_INFINITY), Watts::max);
        let paper = PAPER
            .iter()
            .find(|(name, _)| *name == program.name)
            .map(|&(_, w)| Watts(w))
            .unwrap_or(Watts::ZERO);
        rows.push(Row {
            program: program.name,
            paper,
            profile,
            range: (lo, hi),
        });
    }
    Table2 { rows }
}

impl core::fmt::Display for Table2 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "Table 2: program power levels (estimated profiles)")?;
        let mut t = Table::new(vec!["program", "profile", "slice range", "paper"]);
        for r in &self.rows {
            let paper = if r.program == "openssl" {
                "42W-57W".to_string()
            } else {
                crate::fmt::watts(r.paper)
            };
            t.row(vec![
                r.program.to_string(),
                crate::fmt::watts(r.profile),
                format!(
                    "{}-{}",
                    crate::fmt::watts(r.range.0),
                    crate::fmt::watts(r.range.1)
                ),
                paper,
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_land_near_paper_within_estimation_error() {
        let result = run(true);
        assert_eq!(result.rows.len(), 6);
        for row in &result.rows {
            let err = (row.profile.0 - row.paper.0).abs() / row.paper.0;
            assert!(
                err < 0.10,
                "{}: profile {:?} vs paper {:?} ({:.1}% off)",
                row.program,
                row.profile,
                row.paper,
                err * 100.0
            );
        }
        // The ordering of programs by power matches the paper.
        let profile_of = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.program == name)
                .unwrap()
                .profile
        };
        assert!(profile_of("bitcnts") > profile_of("aluadd"));
        assert!(profile_of("aluadd") > profile_of("pushpop"));
        assert!(profile_of("pushpop") > profile_of("memrw"));
    }

    #[test]
    fn openssl_range_is_wide() {
        let result = run(true);
        let openssl = result.rows.iter().find(|r| r.program == "openssl").unwrap();
        let spread = openssl.range.1 - openssl.range.0;
        assert!(
            spread.0 > 10.0,
            "openssl slice powers should span the 42-57 W range, spread {spread:?}"
        );
    }
}
