//! Figure 10: hot task migration with multiple tasks, plus the
//! Section 6.4 single-task numbers.
//!
//! With `n` bitcnts instances under a 40 W package budget, energy-aware
//! scheduling gains the most when idle processors exist for the hot
//! tasks to escape to (paper: +76 % for one or two tasks). The gain
//! shrinks as the machine fills (vacated processors do not cool down
//! fast enough) and vanishes at eight tasks, when every physical
//! processor is hot. At a 50 W budget the single-task gain drops to
//! ~27 %.

use crate::fmt::{pct, Table};
use ebs_sim::{mean, run_seeds, MaxPowerSpec, SimConfig};
use ebs_units::{SimDuration, Watts};
use ebs_workloads::catalog;

/// One task-count's result.
#[derive(Clone, Debug)]
pub struct Row {
    /// Number of bitcnts tasks.
    pub tasks: usize,
    /// Throughput gain of energy-aware over baseline.
    pub gain: f64,
}

/// The Figure 10 result.
#[derive(Clone, Debug)]
pub struct Fig10 {
    /// Gains for 1..=8 tasks at the 40 W package budget.
    pub rows: Vec<Row>,
    /// The single-task gain at the 50 W package budget (Section 6.4:
    /// ~27 %).
    pub gain_50w_single: f64,
}

fn gain_for(tasks: usize, budget: Watts, duration: SimDuration, seeds: &[u64]) -> f64 {
    let base = SimConfig::xseries445()
        .smt(true)
        .throttling(true)
        .max_power(MaxPowerSpec::PerPackage(budget));
    let bitcnts = catalog::bitcnts();
    let ips = |on: bool| {
        let reports = run_seeds(&base.clone().energy_aware(on), seeds, duration, |sim| {
            for _ in 0..tasks {
                sim.spawn_program(&bitcnts);
            }
        });
        mean(&reports, |r| r.throughput_ips)
    };
    ips(true) / ips(false) - 1.0
}

/// Runs the Figure 10 sweep.
pub fn run(quick: bool) -> Fig10 {
    let duration = SimDuration::from_secs(if quick { 240 } else { 600 });
    let seeds: &[u64] = if quick {
        &crate::SEEDS[..2]
    } else {
        &crate::SEEDS[..3]
    };
    let rows = (1..=8)
        .map(|tasks| Row {
            tasks,
            gain: gain_for(tasks, Watts(40.0), duration, seeds),
        })
        .collect();
    Fig10 {
        rows,
        gain_50w_single: gain_for(1, Watts(50.0), duration, seeds),
    }
}

impl core::fmt::Display for Fig10 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Figure 10: hot task migration — throughput gain vs number of bitcnts tasks \
             (40 W package limit)"
        )?;
        let mut t = Table::new(vec!["tasks", "gain"]);
        for r in &self.rows {
            t.row(vec![r.tasks.to_string(), pct(r.gain)]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "50 W limit, 1 task: {} (paper: ~27%; 40 W paper: ~76% at 1-2 tasks, ~0% at 8)",
            pct(self.gain_50w_single)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_decays_with_occupancy() {
        let fig = run(true);
        let gain_at = |n: usize| fig.rows[n - 1].gain;
        // Large gain with idle CPUs available.
        assert!(gain_at(1) > 0.30, "1 task: {}", gain_at(1));
        assert!(gain_at(2) > 0.25, "2 tasks: {}", gain_at(2));
        // Monotone-ish decay towards full occupancy.
        assert!(
            gain_at(6) < gain_at(1),
            "no decay: {} vs {}",
            gain_at(6),
            gain_at(1)
        );
        // All packages hot: no headroom left.
        assert!(gain_at(8) < 0.10, "8 tasks: {}", gain_at(8));
        // A looser limit shrinks the single-task gain.
        assert!(
            fig.gain_50w_single < gain_at(1),
            "50W gain {} vs 40W gain {}",
            fig.gain_50w_single,
            gain_at(1)
        );
        assert!(fig.gain_50w_single > 0.02);
    }
}
