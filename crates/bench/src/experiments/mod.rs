//! One module per reproduced table or figure.

pub mod ablation;
pub mod balance_bench;
pub mod dvfs;
pub mod engine_bench;
pub mod fig10;
pub mod fig3;
pub mod fig67;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod hybrid;
pub mod migrations;
pub mod scaling;
pub mod scaling_gate;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod trace_diff;

use ebs_units::Watts;
use ebs_workloads::Program;

/// A variant of `program` sized so one task finishes in roughly half a
/// second of solo execution — the paper's "workload of short running
/// tasks with execution times of less than a second" (Section 6.2).
pub fn short_task(program: &Program) -> Program {
    let work = (0.5 * program.main_phase().ipc * 2.2e9) as u64;
    program.clone().with_total_work(work)
}

/// Mean of a slice of floats (0 for empty).
pub fn mean_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Successive-change statistics over a power series: the maximum and
/// average of `|p[i+1] - p[i]| / p[i]` (Table 1's metric).
pub fn successive_change_stats(powers: &[Watts]) -> (f64, f64) {
    if powers.len() < 2 {
        return (0.0, 0.0);
    }
    let mut max = 0.0_f64;
    let mut sum = 0.0;
    let mut n = 0usize;
    for w in powers.windows(2) {
        if w[0].0 <= 0.0 {
            continue;
        }
        let change = (w[1].0 - w[0].0).abs() / w[0].0;
        max = max.max(change);
        sum += change;
        n += 1;
    }
    (max, if n == 0 { 0.0 } else { sum / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workloads::catalog;

    #[test]
    fn change_stats() {
        let series = vec![Watts(50.0), Watts(55.0), Watts(55.0), Watts(44.0)];
        let (max, avg) = successive_change_stats(&series);
        assert!((max - 0.2).abs() < 1e-12);
        assert!((avg - (0.1 + 0.0 + 0.2) / 3.0).abs() < 1e-12);
        assert_eq!(successive_change_stats(&[]), (0.0, 0.0));
        assert_eq!(successive_change_stats(&[Watts(1.0)]), (0.0, 0.0));
    }

    #[test]
    fn short_task_is_sub_second() {
        let p = short_task(&catalog::bitcnts());
        let work = p.total_work.unwrap();
        let solo_seconds = work as f64 / (p.main_phase().ipc * 2.2e9);
        assert!(solo_seconds < 1.0);
        assert!(solo_seconds > 0.2);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean_f64(&[]), 0.0);
        assert_eq!(mean_f64(&[2.0, 4.0]), 3.0);
    }
}
