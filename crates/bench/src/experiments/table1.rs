//! Table 1: change in power consumption during successive timeslices.
//!
//! Each program runs solo on the simulated machine for several hundred
//! timeslices; the per-slice power samples come from the same
//! estimator path the kernel uses, and the row reports the maximum and
//! average relative change between successive slices.

use crate::experiments::successive_change_stats;
use crate::fmt::{pct, Table};
use ebs_sim::{SimConfig, Simulation};
use ebs_units::SimDuration;
use ebs_workloads::table1_programs;

/// One program's row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Program name.
    pub program: &'static str,
    /// Paper's maximum change.
    pub paper_max: f64,
    /// Paper's average change.
    pub paper_avg: f64,
    /// Measured maximum change.
    pub max: f64,
    /// Measured average change.
    pub avg: f64,
    /// Number of timeslices observed.
    pub slices: usize,
}

/// The full Table 1 result.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// One row per program.
    pub rows: Vec<Row>,
}

/// Paper values: (program, max, avg).
const PAPER: [(&str, f64, f64); 5] = [
    ("bash", 0.190, 0.0205),
    ("bzip2", 0.888, 0.0545),
    ("grep", 0.843, 0.0106),
    ("sshd", 0.183, 0.0138),
    ("openssl", 0.632, 0.0248),
];

/// Runs the Table 1 experiment.
pub fn run(quick: bool) -> Table1 {
    let duration = SimDuration::from_secs(if quick { 80 } else { 600 });
    let mut rows = Vec::new();
    for program in table1_programs() {
        let cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .respawn(false)
            .seed(42);
        let mut sim = Simulation::new(cfg);
        sim.record_slice_powers();
        let id = sim.spawn_program(&program);
        sim.run_for(duration);
        let powers = sim
            .slice_powers()
            .and_then(|log| log.get(&id).cloned())
            .unwrap_or_default();
        let (max, avg) = successive_change_stats(&powers);
        let (_, paper_max, paper_avg) = PAPER
            .iter()
            .find(|(name, _, _)| *name == program.name)
            .copied()
            .unwrap_or((program.name, 0.0, 0.0));
        rows.push(Row {
            program: program.name,
            paper_max,
            paper_avg,
            max,
            avg,
            slices: powers.len(),
        });
    }
    Table1 { rows }
}

impl core::fmt::Display for Table1 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Table 1: change in power consumption during successive timeslices"
        )?;
        let mut t = Table::new(vec![
            "program",
            "slices",
            "max",
            "max(paper)",
            "avg",
            "avg(paper)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.program.to_string(),
                r.slices.to_string(),
                pct(r.max),
                pct(r.paper_max),
                pct(r.avg),
                pct(r.paper_avg),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold() {
        let result = run(true);
        assert_eq!(result.rows.len(), 5);
        for row in &result.rows {
            assert!(
                row.slices > 100,
                "{}: only {} slices",
                row.program,
                row.slices
            );
            // Significant changes are rare: the average is far below
            // the maximum for every program (the paper's point).
            assert!(
                row.avg < row.max / 3.0,
                "{}: avg {} vs max {}",
                row.program,
                row.avg,
                row.max
            );
            // Average change stays single-digit percent.
            assert!(row.avg < 0.10, "{}: avg {}", row.program, row.avg);
        }
        // The two phase-heavy programs show the biggest worst case.
        let max_of = |name: &str| {
            result
                .rows
                .iter()
                .find(|r| r.program == name)
                .map(|r| r.max)
                .unwrap()
        };
        assert!(max_of("bzip2") > max_of("bash"));
        assert!(max_of("grep") > max_of("sshd"));
    }
}
