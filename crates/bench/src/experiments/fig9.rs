//! Figure 9: hot task migration of a single task.
//!
//! One bitcnts (~61 W) on the SMT machine with a 40 W package budget:
//! every ~10 s the package's thermal-power sum approaches its limit
//! and the task hops to the coolest processor. The paper highlights
//! two properties: the task is *never* migrated to a sibling (that
//! would not cool the package) and *never* across the node boundary
//! (a same-node CPU has always cooled down enough by the time a full
//! round-robin turn completes).

use ebs_sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs_topology::{CpuId, Topology};
use ebs_units::{SimDuration, SimTime, Watts};
use ebs_workloads::catalog;

/// The Figure 9 result.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// (time, cpu) placements of the single bitcnts task, in order.
    pub visits: Vec<(SimTime, CpuId)>,
    /// Number of migrations that targeted the sibling of the current
    /// CPU (must be zero).
    pub sibling_moves: usize,
    /// Number of migrations that crossed the node boundary (must be
    /// zero).
    pub cross_node_moves: usize,
    /// Distinct packages visited.
    pub packages_visited: usize,
    /// Mean time between migrations.
    pub mean_hop_secs: f64,
    /// Fraction of time throttled (should be zero — migration beats
    /// throttling here).
    pub throttled: f64,
}

/// Runs the Figure 9 experiment.
pub fn run(quick: bool) -> Fig9 {
    let duration = SimDuration::from_secs(if quick { 120 } else { 220 });
    let cfg = SimConfig::xseries445()
        .smt(true)
        .energy_aware(true)
        .throttling(true)
        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
        .trace_task_cpu(true)
        .seed(3);
    let mut sim = Simulation::new(cfg);
    let id = sim.spawn_program(&catalog::bitcnts());
    sim.run_for(duration);

    let visits = sim.task_trace().visits(id);
    let topo = Topology::xseries445(true);
    let mut sibling_moves = 0;
    let mut cross_node_moves = 0;
    for pair in visits.windows(2) {
        let (from, to) = (pair[0].1, pair[1].1);
        if topo.same_package(from, to) {
            sibling_moves += 1;
        }
        if !topo.same_node(from, to) {
            cross_node_moves += 1;
        }
    }
    let mut packages: Vec<usize> = visits.iter().map(|&(_, c)| topo.package_of(c).0).collect();
    packages.sort_unstable();
    packages.dedup();
    let mean_hop_secs = if visits.len() > 1 {
        (visits.last().unwrap().0 - visits[0].0).as_secs_f64() / (visits.len() - 1) as f64
    } else {
        f64::INFINITY
    };
    Fig9 {
        sibling_moves,
        cross_node_moves,
        packages_visited: packages.len(),
        mean_hop_secs,
        throttled: sim.report().avg_throttled_fraction,
        visits,
    }
}

impl Fig9 {
    /// CSV of the visit sequence (Figure 9's data).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,cpu\n");
        for (t, c) in &self.visits {
            out.push_str(&format!("{:.3},{}\n", t.as_secs_f64(), c.0));
        }
        out
    }
}

impl core::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Figure 9: hot task migration of a single bitcnts (40 W package limit)"
        )?;
        write!(f, "visits:")?;
        for (t, c) in self.visits.iter().take(24) {
            write!(f, " {:.0}s->cpu{}", t.as_secs_f64(), c.0)?;
        }
        if self.visits.len() > 24 {
            write!(f, " ... ({} total)", self.visits.len())?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "hops: {} (mean {:.1}s apart, paper ~10s); sibling moves: {}; \
             cross-node moves: {}; packages visited: {}; throttled: {}",
            self.visits.len().saturating_sub(1),
            self.mean_hop_secs,
            self.sibling_moves,
            self.cross_node_moves,
            self.packages_visited,
            crate::fmt::pct(self.throttled)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_wanders_within_one_node_and_never_to_siblings() {
        let fig = run(true);
        assert!(
            fig.visits.len() >= 6,
            "too few migrations: {:?}",
            fig.visits
        );
        assert_eq!(fig.sibling_moves, 0, "moved to a sibling");
        assert_eq!(fig.cross_node_moves, 0, "crossed the node boundary");
        // Round-robin over the four packages of one node.
        assert_eq!(fig.packages_visited, 4);
        // Roughly the paper's ten-second cadence.
        assert!(
            fig.mean_hop_secs > 4.0 && fig.mean_hop_secs < 25.0,
            "hop cadence {}s",
            fig.mean_hop_secs
        );
        // Migration avoids throttling entirely.
        assert!(fig.throttled < 0.01, "throttled {}", fig.throttled);
    }
}
