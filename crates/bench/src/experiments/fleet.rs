//! The fleet headline: a diurnal open workload over a 64-host mixed
//! rack, stock (least-loaded) vs power-aware dispatch, crossed with
//! the two per-host enforcement mechanisms the paper studies (`hlt`
//! throttling vs thermal-aware DVFS). Writes per-epoch fleet metrics
//! for every cell to `results/fleet.csv`.
//!
//! `--smoke` shrinks the rack to 8 hosts and the horizon to 4 s — the
//! CI variant — and the sweep always ends with a worker-invariance
//! check: one cell re-run at 1 vs 2 workers must produce bit-equal
//! per-host reports, with any mismatch named down to the first
//! divergent host and event via [`worker_divergence`] (the same
//! verdict wording the sim-level trace-diff gates use).

use ebs_dvfs::GovernorKind;
use ebs_fleet::{
    worker_divergence, DispatchPolicy, EpochMetrics, Fleet, FleetConfig, FleetReport, PowerBudget,
    CSV_HEADER,
};
use ebs_sim::{default_workers, SimConfig};
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};
use std::fmt;

/// Rack provisioning per logical CPU — tight enough that the budget
/// actually binds under the diurnal peak (a busy logical CPU draws
/// well above this), so `hlt` vs DVFS enforcement differentiates.
const RACK_W_PER_CPU: f64 = 18.0;

/// The sweep seed (fixed: the headline must be byte-reproducible).
const SEED: u64 = 42;

/// The mixed rack: hosts cycle through five shapes, 8..=32 CPUs each,
/// including one hybrid (4P+4E) shape so the sweep and its invariance
/// gate cover class-heterogeneous hosts.
pub fn host_shapes(smoke: bool) -> Vec<TopologyPreset> {
    let cycle = [
        TopologyPreset::Dual,
        TopologyPreset::XSeries445 { smt: false },
        TopologyPreset::XSeries445 { smt: true },
        TopologyPreset::Numa16,
        TopologyPreset::Hybrid8,
    ];
    let n = if smoke { 8 } else { 64 };
    (0..n).map(|i| cycle[i % cycle.len()]).collect()
}

/// Builds one cell's fleet config.
///
/// # Panics
///
/// Panics if `mechanism` is not `"hlt"` or `"dvfs"`.
pub fn cell_config(smoke: bool, dispatch: DispatchPolicy, mechanism: &'static str) -> FleetConfig {
    let hosts = host_shapes(smoke);
    let total_cpus: usize = hosts.iter().map(|p| p.builder().n_cpus()).sum();
    let base = SimConfig::xseries445()
        .energy_aware(true)
        .respawn(false)
        .strided();
    let base = match mechanism {
        "hlt" => base.throttling(true),
        "dvfs" => base
            .throttling(false)
            .dvfs_governor(GovernorKind::ThermalAware),
        other => panic!("unknown enforcement mechanism {other}"),
    };
    let workload = OpenWorkload::new(
        vec![
            catalog::bitcnts(),
            catalog::memrw(),
            catalog::aluadd(),
            catalog::pushpop(),
        ],
        0.8 * total_cpus as f64,
    )
    .curve(LoadCurve::Diurnal {
        period: SimDuration::from_secs(4),
        floor: 0.3,
    })
    .service_work(600_000_000, 1_800_000_000);
    FleetConfig::new(base, hosts, workload)
        .seed(SEED)
        .epoch(SimDuration::from_millis(250))
        .dispatch(dispatch)
        .budget(PowerBudget::rack(Watts(RACK_W_PER_CPU * total_cpus as f64)))
        .workers(default_workers())
}

/// Dispatcher epochs per cell: 4 s smoke, 12 s full.
fn epochs(smoke: bool) -> usize {
    if smoke {
        16
    } else {
        48
    }
}

/// One sweep cell: a dispatch policy crossed with an enforcement
/// mechanism.
pub struct FleetCell {
    /// Placement policy.
    pub dispatch: DispatchPolicy,
    /// Per-host budget enforcement: `"hlt"` or `"dvfs"`.
    pub mechanism: &'static str,
    /// Whole-run roll-up.
    pub report: FleetReport,
    /// Per-epoch fleet metrics.
    pub epochs: Vec<EpochMetrics>,
}

/// The full sweep plus the worker-invariance verdict.
pub struct FleetSweep {
    /// Host count per cell.
    pub hosts: usize,
    /// The four cells, dispatch-major.
    pub cells: Vec<FleetCell>,
    /// The [`worker_divergence`] verdict for the invariance check.
    pub invariance: String,
}

impl FleetSweep {
    /// Whether the worker-invariance check passed.
    pub fn invariance_ok(&self) -> bool {
        self.invariance.contains("identical")
    }

    /// Every cell's per-epoch rows as one CSV document.
    pub fn to_csv(&self) -> String {
        let mut out = format!("dispatch,mechanism,{CSV_HEADER}\n");
        for cell in &self.cells {
            for e in &cell.epochs {
                out.push_str(&format!(
                    "{},{},{}\n",
                    cell.dispatch.name(),
                    cell.mechanism,
                    e.csv_row()
                ));
            }
        }
        out
    }
}

impl fmt::Display for FleetSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet sweep: {} hosts, diurnal open workload, seed {SEED}",
            self.hosts
        )?;
        writeln!(
            f,
            "{:<14} {:<5} {:>8} {:>9} {:>9} {:>8} {:>8} {:>10}",
            "dispatch", "mech", "gips", "gips/J", "p95 s", "compl", "arriv", "stranded W"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<14} {:<5} {:>8.2} {:>9.4} {:>9.3} {:>8} {:>8} {:>10.1}",
                c.dispatch.name(),
                c.mechanism,
                c.report.gips,
                c.report.gips_per_joule,
                c.report.latency.p95_s,
                c.report.completions,
                c.report.arrivals,
                c.report.stranded_w_mean,
            )?;
        }
        writeln!(f, "worker invariance: {}", self.invariance)
    }
}

/// Runs the sweep. `smoke` selects the reduced CI matrix.
pub fn run(smoke: bool) -> FleetSweep {
    let mut cells = Vec::new();
    for dispatch in [DispatchPolicy::LeastLoaded, DispatchPolicy::PowerAware] {
        for mechanism in ["hlt", "dvfs"] {
            let mut fleet = Fleet::new(cell_config(smoke, dispatch, mechanism));
            fleet.run(epochs(smoke));
            cells.push(FleetCell {
                dispatch,
                mechanism,
                report: fleet.report(),
                epochs: fleet.epochs().to_vec(),
            });
        }
    }
    // The invariance gate always runs on the smoke-sized rack (the
    // property under test is the fleet machinery, not the rack size;
    // the determinism suite additionally covers it property-wise).
    let invariance = worker_divergence(
        &cell_config(true, DispatchPolicy::PowerAware, "hlt"),
        8,
        1,
        2,
    );
    FleetSweep {
        hosts: host_shapes(smoke).len(),
        cells,
        invariance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_smoke_cell_produces_work_and_rows() {
        let mut fleet = Fleet::new(cell_config(true, DispatchPolicy::PowerAware, "dvfs"));
        fleet.run(4);
        let report = fleet.report();
        assert_eq!(report.hosts, 8);
        assert!(report.instructions_retired > 0);
        assert!(report.arrivals > 0);
        assert_eq!(fleet.epochs().len(), 4);
    }

    #[test]
    fn smoke_invariance_gate_passes() {
        let verdict = worker_divergence(
            &cell_config(true, DispatchPolicy::LeastLoaded, "hlt"),
            4,
            1,
            2,
        );
        assert!(verdict.contains("identical"), "{verdict}");
    }
}
