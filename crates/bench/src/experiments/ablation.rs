//! Ablation of Section 4.3's design argument: why the balancer needs
//! *both* the runqueue power ratio and the thermal power ratio.
//!
//! "Algorithms based on the processors' power consumptions, since
//! power consumption changes quickly, easily lead to ping-pong
//! effects. Scheduling algorithms only based on temperature, on the
//! other hand, tend to over-balance." The ablation disables one guard
//! at a time (by making its margin vacuous) on the Section 6.1
//! workload and measures migration counts and the resulting thermal
//! band.

use crate::fmt::{watts, Table};
use ebs_core::EnergyBalanceConfig;
use ebs_sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs_units::{SimDuration, SimTime, Watts};
use ebs_workloads::section61_mix;

/// One variant's result.
#[derive(Clone, Debug)]
pub struct Row {
    /// Variant name.
    pub label: &'static str,
    /// Migrations over the run.
    pub migrations: u64,
    /// Steady-state max spread between hottest and coolest CPU.
    pub spread: Watts,
}

/// The ablation result.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Paper variant, power-only, thermal-only, and no balancing.
    pub rows: Vec<Row>,
    /// Run length.
    pub duration: SimDuration,
}

fn variant(
    label: &'static str,
    cfg_balance: Option<EnergyBalanceConfig>,
    duration: SimDuration,
) -> Row {
    let mut cfg = SimConfig::xseries445()
        .smt(false)
        .throttling(false)
        .max_power(MaxPowerSpec::PerLogical(Watts(60.0)))
        .trace_thermal(SimDuration::from_secs(1))
        .seed(20060418);
    cfg = match cfg_balance {
        Some(balance) => cfg.energy_aware(true).balance_config(balance),
        None => cfg.energy_aware(false),
    };
    let mut sim = Simulation::new(cfg);
    sim.spawn_mix(&section61_mix(), 3);
    sim.run_for(duration);
    let warm = SimTime::from_secs(200);
    Row {
        label,
        migrations: sim.report().migrations,
        spread: sim.thermal_trace().max_spread(warm).unwrap_or(Watts::ZERO),
    }
}

/// Runs the ablation.
pub fn run(quick: bool) -> Ablation {
    let duration = SimDuration::from_secs(if quick { 400 } else { 900 });
    // A vacuous margin makes the corresponding guard always pass.
    const VACUOUS: f64 = -1e9;
    let both = EnergyBalanceConfig::default();
    let power_only = EnergyBalanceConfig {
        thermal_ratio_margin: VACUOUS,
        runqueue_ratio_margin: 0.0,
        ..both
    };
    let thermal_only = EnergyBalanceConfig {
        runqueue_ratio_margin: VACUOUS,
        thermal_ratio_margin: 0.0,
        ..both
    };
    let rows = vec![
        variant("both metrics (paper)", Some(both), duration),
        variant("power only", Some(power_only), duration),
        variant("thermal only", Some(thermal_only), duration),
        variant("no energy balancing", None, duration),
    ];
    Ablation { rows, duration }
}

impl core::fmt::Display for Ablation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Ablation (Section 4.3): balancer guards, 18-task workload, {}",
            self.duration
        )?;
        let mut t = Table::new(vec!["variant", "migrations", "max spread"]);
        for r in &self.rows {
            t.row(vec![
                r.label.to_string(),
                r.migrations.to_string(),
                watts(r.spread),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "(single-metric variants churn tasks for a band no better than the paper's \
             two-metric hysteresis)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_metric_variants_migrate_far_more() {
        let a = run(true);
        let get = |label: &str| a.rows.iter().find(|r| r.label.contains(label)).unwrap();
        let both = get("both");
        let power = get("power only");
        let thermal = get("thermal only");
        let none = get("no energy");
        // The paper variant is dramatically calmer than either
        // single-metric variant...
        assert!(
            power.migrations > both.migrations * 3,
            "power-only {} vs both {}",
            power.migrations,
            both.migrations
        );
        assert!(
            thermal.migrations > both.migrations * 3,
            "thermal-only {} vs both {}",
            thermal.migrations,
            both.migrations
        );
        // ...while balancing at least as well as doing nothing.
        assert!(both.spread < none.spread);
    }
}
