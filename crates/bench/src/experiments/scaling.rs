//! The scenario-engine scaling sweep.
//!
//! The paper evaluates on one machine shape under one closed task mix.
//! This sweep runs the full policy matrix — stock vs energy-aware
//! scheduling × `hlt` vs DVFS enforcement — across a ladder of
//! generated topologies (2 to 64 packages) and open-workload load
//! curves (diurnal sine, step, bursts), all sharded through the capped
//! parallel runner. Per cell it reports throughput, energy per
//! instruction, migrations, and tail latency, so the scaling questions
//! ("does energy-aware scheduling still pay at 32 packages?", "how do
//! tails behave under bursts?") become one table.
//!
//! Arrival rates scale with the machine's *core* count, so every
//! topology sees a comparable offered load per unit of compute (~0.45
//! task-seconds per core second at the base rate) and the rows compare
//! machine *shapes*, not different saturation levels.

use crate::fmt::Table;
use ebs_dvfs::GovernorKind;
use ebs_sim::{
    default_workers, map_parallel, run_configs, MaxPowerSpec, SimConfig, SimEngine, SimReport,
    Simulation,
};
use ebs_store::StateImage;
use ebs_topology::TopologyPreset;
use ebs_units::{SimDuration, Watts};
use ebs_workloads::{catalog, LoadCurve, OpenWorkload};

/// The policy matrix: scheduling × thermal enforcement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Stock load balancing, `hlt` throttling.
    StockHlt,
    /// Energy-aware scheduling, `hlt` throttling.
    EnergyAwareHlt,
    /// Stock load balancing, thermal-aware DVFS.
    StockDvfs,
    /// Energy-aware scheduling, thermal-aware DVFS.
    EnergyAwareDvfs,
}

impl Policy {
    /// All four policy-matrix cells.
    pub const ALL: [Policy; 4] = [
        Policy::StockHlt,
        Policy::EnergyAwareHlt,
        Policy::StockDvfs,
        Policy::EnergyAwareDvfs,
    ];

    /// Short name for tables and CSV.
    pub const fn name(self) -> &'static str {
        match self {
            Policy::StockHlt => "stock+hlt",
            Policy::EnergyAwareHlt => "ea+hlt",
            Policy::StockDvfs => "stock+dvfs",
            Policy::EnergyAwareDvfs => "ea+dvfs",
        }
    }

    /// Applies the cell to a config.
    pub fn apply(self, cfg: SimConfig) -> SimConfig {
        let (energy_aware, dvfs) = match self {
            Policy::StockHlt => (false, false),
            Policy::EnergyAwareHlt => (true, false),
            Policy::StockDvfs => (false, true),
            Policy::EnergyAwareDvfs => (true, true),
        };
        let cfg = cfg.energy_aware(energy_aware);
        if dvfs {
            cfg.throttling(false)
                .dvfs_governor(GovernorKind::ThermalAware)
        } else {
            // Clear any governor a reused base config carries — an
            // "hlt" cell must never run both actuators.
            cfg.throttling(true).dvfs_off()
        }
    }
}

/// One sweep cell's outcome.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Topology preset name.
    pub topology: &'static str,
    /// Physical packages of the shape.
    pub packages: usize,
    /// Logical CPUs of the shape.
    pub cpus: usize,
    /// Load-curve name.
    pub curve: &'static str,
    /// Policy-matrix cell name.
    pub policy: &'static str,
    /// Tasks that arrived.
    pub arrivals: u64,
    /// Tasks that completed.
    pub completions: u64,
    /// Instructions per second, in billions.
    pub gips: f64,
    /// True energy per instruction, nanojoules.
    pub nj_per_instruction: f64,
    /// Total migrations.
    pub migrations: u64,
    /// Median sojourn time, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile sojourn time, milliseconds.
    pub p95_ms: f64,
}

/// The sweep result.
#[derive(Clone, Debug)]
pub struct ScalingSweep {
    /// One row per (topology, curve, policy) cell, in sweep order.
    pub rows: Vec<ScalingRow>,
    /// Simulated duration of each cell.
    pub duration: SimDuration,
    /// Wall-clock the whole sweep took (all cells through the runner).
    pub wall_s: f64,
}

/// The power budget of the sweep, per *logical CPU* so enforcement
/// pressure is comparable across shapes whose packages hold 1 to 4
/// hardware threads (on the paper's single-threaded packages this is
/// exactly the Table 3 "40 W per processor" setup).
pub const BUDGET: Watts = Watts(40.0);

/// The load curves of the sweep, smoke subset first.
fn curves(smoke: bool) -> Vec<LoadCurve> {
    let mut out = vec![
        LoadCurve::Diurnal {
            period: SimDuration::from_secs(8),
            floor: 0.25,
        },
        LoadCurve::Burst {
            period: SimDuration::from_secs(4),
            duty: 0.25,
            high: 2.5,
        },
    ];
    if !smoke {
        out.push(LoadCurve::Step {
            at: SimDuration::from_secs(20),
            before: 0.35,
            after: 1.0,
        });
    }
    out
}

/// The topology ladder of the sweep.
fn topologies(smoke: bool) -> Vec<TopologyPreset> {
    if smoke {
        vec![
            TopologyPreset::Dual,
            TopologyPreset::XSeries445 { smt: false },
            TopologyPreset::Numa16,
        ]
    } else {
        TopologyPreset::all()
    }
}

/// The open workload of one cell: a palette of the four steady
/// Table 2 programs, short bounded service demands, and an arrival
/// rate proportional to the machine's *core* count — SMT siblings add
/// only ~25 % throughput, so scaling by logical CPUs would overload
/// every SMT shape and diverge.
fn workload(n_cores: usize, curve: LoadCurve) -> OpenWorkload {
    let palette = vec![
        catalog::bitcnts(),
        catalog::memrw(),
        catalog::aluadd(),
        catalog::pushpop(),
    ];
    // Mean service demand ~1.2e9 instructions (~0.3 s solo at IPC
    // ~1.7): 1.5 arrivals/s/core offers ~0.45 utilisation at factor
    // 1, so the machine saturates only at burst peaks (the
    // tail-latency stress) instead of accumulating an unbounded
    // backlog.
    OpenWorkload::new(palette, 1.5 * n_cores as f64)
        .curve(curve)
        .service_work(600_000_000, 1_800_000_000)
}

/// Builds the full config list of the sweep (public so tests can
/// check the matrix without running it). By default the sweep runs on
/// the variable-stride engine core: headline metrics match fixed-tick
/// within tolerance (see the sim crate's equivalence suite) at a
/// fraction of the wall-clock. `sweep_configs_with_engine` builds the
/// fixed-tick variant the CI regression gate compares against.
pub fn sweep_configs(smoke: bool) -> Vec<(ScalingRow, SimConfig)> {
    sweep_configs_with_engine(smoke, true)
}

/// The sweep's config list on an explicit engine core.
pub fn sweep_configs_with_engine(smoke: bool, strided: bool) -> Vec<(ScalingRow, SimConfig)> {
    let mut out = Vec::new();
    for preset in topologies(smoke) {
        let shape = preset.builder();
        for curve in curves(smoke) {
            for policy in Policy::ALL {
                let cfg = SimConfig::with_topology(shape)
                    .seed(42)
                    .respawn(false)
                    .max_power(MaxPowerSpec::PerLogical(BUDGET))
                    .open_workload(workload(shape.n_cores(), curve));
                let cfg = if strided { cfg.strided() } else { cfg };
                let cfg = policy.apply(cfg);
                let row = ScalingRow {
                    topology: preset.name(),
                    packages: shape.n_packages(),
                    cpus: shape.n_cpus(),
                    curve: curve.name(),
                    policy: policy.name(),
                    arrivals: 0,
                    completions: 0,
                    gips: 0.0,
                    nj_per_instruction: 0.0,
                    migrations: 0,
                    p50_ms: 0.0,
                    p95_ms: 0.0,
                };
                out.push((row, cfg));
            }
        }
    }
    out
}

/// Looks up one sweep cell by its `topology/curve/policy` key (the
/// key format of `scaling.csv` and the gate's violation reports),
/// returning its (strided, fixed-tick) config pair. Both the smoke
/// and the full matrix are searched, so any key a sweep artifact can
/// contain resolves; the trace-diff tooling replays these pairs.
pub fn cell_configs(key: &str) -> Option<(SimConfig, SimConfig)> {
    for smoke in [true, false] {
        let fixed = sweep_configs_with_engine(smoke, false);
        for ((row, scfg), (_, fcfg)) in sweep_configs_with_engine(smoke, true)
            .into_iter()
            .zip(fixed)
        {
            if format!("{}/{}/{}", row.topology, row.curve, row.policy) == key {
                return Some((scfg, fcfg));
            }
        }
    }
    None
}

fn fill(row: &mut ScalingRow, report: &SimReport) {
    row.arrivals = report.arrivals;
    row.completions = report.completions;
    row.gips = report.throughput_ips / 1e9;
    row.nj_per_instruction = report.nj_per_instruction();
    row.migrations = report.migrations;
    row.p50_ms = report.latency.p50_s * 1e3;
    row.p95_ms = report.latency.p95_s * 1e3;
}

/// Runs the sweep: every cell through the capped parallel runner, in
/// one sharded batch.
pub fn run(smoke: bool) -> ScalingSweep {
    run_with_engine(smoke, true)
}

/// Runs the sweep on an explicit engine core (`strided == false` is
/// the fixed-tick leg of the CI fixed-vs-strided regression gate).
pub fn run_with_engine(smoke: bool, strided: bool) -> ScalingSweep {
    let duration = SimDuration::from_secs(if smoke { 6 } else { 45 });
    let (mut rows, configs): (Vec<ScalingRow>, Vec<SimConfig>) =
        sweep_configs_with_engine(smoke, strided)
            .into_iter()
            .unzip();
    let start = std::time::Instant::now();
    let reports = run_configs(configs, duration, |_| {});
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    for (row, report) in rows.iter_mut().zip(&reports) {
        fill(row, report);
    }
    ScalingSweep {
        rows,
        duration,
        wall_s,
    }
}

impl ScalingSweep {
    /// The rows of one topology preset.
    pub fn rows_for(&self, topology: &str) -> Vec<&ScalingRow> {
        self.rows
            .iter()
            .filter(|r| r.topology == topology)
            .collect()
    }

    /// Renders the sweep as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "topology,packages,cpus,curve,policy,arrivals,completions,gips,\
             nj_per_instr,migrations,p50_ms,p95_ms\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.3},{:.3},{},{:.1},{:.1}\n",
                r.topology,
                r.packages,
                r.cpus,
                r.curve,
                r.policy,
                r.arrivals,
                r.completions,
                r.gips,
                r.nj_per_instruction,
                r.migrations,
                r.p50_ms,
                r.p95_ms
            ));
        }
        out
    }
}

impl core::fmt::Display for ScalingSweep {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Scaling sweep: open workloads across the topology ladder \
             ({} s per cell, {BUDGET} per-CPU budget)",
            self.duration.as_secs_f64()
        )?;
        let mut t = Table::new(vec![
            "topology", "pkgs", "cpus", "curve", "policy", "arrived", "done", "Ginstr/s",
            "nJ/instr", "migr", "p50", "p95",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.topology.to_string(),
                r.packages.to_string(),
                r.cpus.to_string(),
                r.curve.to_string(),
                r.policy.to_string(),
                r.arrivals.to_string(),
                r.completions.to_string(),
                format!("{:.2}", r.gips),
                format!("{:.2}", r.nj_per_instruction),
                r.migrations.to_string(),
                format!("{:.0}ms", r.p50_ms),
                format!("{:.0}ms", r.p95_ms),
            ]);
        }
        write!(f, "{t}")?;
        // The DVFS cells are where event-driven governors move the
        // sweep's wall-clock (cadence decisions floored every stride
        // there); the sweep-level rate makes regressions visible in
        // the CI log without adding columns the gate would trip over.
        writeln!(
            f,
            "sweep wall-clock: {:.1}s ({:.0} simulated seconds per wall second over {} cells)",
            self.wall_s,
            self.duration.as_secs_f64() * self.rows.len() as f64 / self.wall_s,
            self.rows.len()
        )
    }
}

// ---------------------------------------------------------------------
// The fork sweep: checkpoint each topology×curve warm-up once, fork
// the policy matrix from the snapshot.
// ---------------------------------------------------------------------

/// One topology×curve group of the fork sweep: a shared warm-up
/// configuration (the [`Policy::StockHlt`] baseline) and the four
/// policy cells forked from its measurement-boundary checkpoint.
#[derive(Clone, Debug)]
pub struct ForkGroup {
    /// Group key: `topology/curve`.
    pub key: String,
    /// The warm-up cell: the stock baseline of the group.
    pub warmup: SimConfig,
    /// The policy cells forked from the warm-up checkpoint.
    pub cells: Vec<(ScalingRow, SimConfig)>,
}

/// One leg of the fork sweep (straight or forked).
#[derive(Clone, Debug)]
pub struct ForkLeg {
    /// The filled sweep rows (CSV-identical across legs by the
    /// determinism contract).
    pub sweep: ScalingSweep,
    /// Per-cell end-of-measurement state hash, keyed
    /// `topology/curve/policy` — the equality oracle sharper than any
    /// CSV tolerance.
    pub hashes: Vec<(String, u64)>,
    /// Engine steps actually executed by this leg (warm-ups included
    /// once per execution, so the straight/fork ratio *is* the
    /// warm-up amortization, counter-verified).
    pub executed_steps: u64,
}

/// The outcome of running both legs and comparing them.
#[derive(Clone, Debug)]
pub struct ForkCompare {
    /// The per-cell-warm-up leg.
    pub straight: ForkLeg,
    /// The shared-warm-up leg.
    pub forked: ForkLeg,
    /// The warm-up checkpoint of every group, keyed `topology/curve`
    /// (persisted as `results/*.snap` by `exp_scaling --fork`).
    pub snapshots: Vec<(String, StateImage)>,
    /// Whether the two legs' CSVs are byte-identical.
    pub csv_identical: bool,
    /// Whether every cell's end-state hash matches across legs.
    pub hashes_identical: bool,
    /// Warm-up span both legs ran before each measurement.
    pub warmup: SimDuration,
}

/// Warm-up span of one fork-sweep cell. Smoke keeps it equal to the
/// measurement span (theoretical shared-warm-up amortization of a
/// 4-policy matrix: 8/5 = 1.6× in engine steps); the full matrix uses
/// the sweep's original 45 s cell span — a long shared prefix is
/// exactly what forking amortizes best (steps ceiling
/// (4W+4M)/(W+4M) ≈ 2×), and warm-up steps under the stock baseline
/// are cheaper per simulated second than measurement steps, so the
/// wall-clock speedup needs the longer prefix to clear 1.5×.
pub fn fork_warmup(smoke: bool) -> SimDuration {
    SimDuration::from_secs(if smoke { 3 } else { 45 })
}

/// Measurement span of one fork-sweep cell.
pub fn fork_measure(smoke: bool) -> SimDuration {
    SimDuration::from_secs(if smoke { 3 } else { 22 })
}

/// The fork-sweep groups: one per topology×curve, cells in policy
/// order. The warm-up runs the stock baseline; the cells fork from
/// its checkpoint, so a cell's measurement covers `[W, W+M]` under
/// its own policy after a shared prefix.
pub fn fork_groups(smoke: bool) -> Vec<ForkGroup> {
    let mut groups: Vec<ForkGroup> = Vec::new();
    for (row, cfg) in sweep_configs(smoke) {
        let key = format!("{}/{}", row.topology, row.curve);
        if groups.last().map(|g| g.key.as_str()) != Some(key.as_str()) {
            groups.push(ForkGroup {
                key,
                warmup: Policy::StockHlt.apply(cfg.clone()),
                cells: Vec::new(),
            });
        }
        groups
            .last_mut()
            .expect("group just pushed")
            .cells
            .push((row, cfg));
    }
    groups
}

/// Runs one group's warm-up to the measurement boundary and returns
/// the checkpoint plus the steps it took.
fn warm_up(group: &ForkGroup, warmup: SimDuration) -> (StateImage, u64) {
    let mut sim = Simulation::new(group.warmup.clone());
    sim.run_for(warmup);
    (sim.snapshot(), sim.report().engine_steps)
}

/// Forks one cell from a warm-up checkpoint and measures it.
fn measure_cell(cfg: &SimConfig, image: &StateImage, measure: SimDuration) -> (SimReport, u64) {
    let mut sim = Simulation::from_snapshot(cfg.clone(), image)
        .expect("warm-up checkpoint restores into its own group's cells");
    sim.run_for(measure);
    (sim.report(), sim.state_hash())
}

/// Runs the fork sweep. `fork == false` is the straight leg: every
/// cell runs its own warm-up before forking — the same code path, so
/// the two legs are byte-identical cell for cell and the only
/// difference is how often the warm-up executes. Both legs shard over
/// the work-stealing runner.
pub fn run_forked(smoke: bool, fork: bool) -> (ForkLeg, Vec<(String, StateImage)>) {
    let (warmup, measure) = (fork_warmup(smoke), fork_measure(smoke));
    let groups = fork_groups(smoke);
    let start = std::time::Instant::now();
    let mut rows = Vec::new();
    let mut hashes = Vec::new();
    let mut executed_steps = 0u64;
    let mut snapshots = Vec::new();
    if fork {
        // One warm-up per group, then the policy matrix forks from
        // the checkpoint.
        let results = map_parallel(&groups, default_workers(), |group| {
            let (image, warm_steps) = warm_up(group, warmup);
            let cells: Vec<(ScalingRow, SimReport, u64)> = group
                .cells
                .iter()
                .map(|(row, cfg)| {
                    let (report, hash) = measure_cell(cfg, &image, measure);
                    (row.clone(), report, hash)
                })
                .collect();
            (group.key.clone(), image, warm_steps, cells)
        });
        for (key, image, warm_steps, cells) in results {
            executed_steps += warm_steps;
            for (mut row, report, hash) in cells {
                executed_steps += report.engine_steps - warm_steps;
                fill(&mut row, &report);
                hashes.push((
                    format!("{}/{}/{}", row.topology, row.curve, row.policy),
                    hash,
                ));
                rows.push(row);
            }
            snapshots.push((key, image));
        }
    } else {
        // Per-cell warm-ups: flatten the groups into (warmup, cell)
        // pairs so the runner load-balances across all cells.
        let flat: Vec<(SimConfig, ScalingRow, SimConfig)> = groups
            .iter()
            .flat_map(|g| {
                g.cells
                    .iter()
                    .map(|(row, cfg)| (g.warmup.clone(), row.clone(), cfg.clone()))
            })
            .collect();
        let results = map_parallel(&flat, default_workers(), |(warmup_cfg, row, cfg)| {
            let mut sim = Simulation::new(warmup_cfg.clone());
            sim.run_for(warmup);
            let image = sim.snapshot();
            let (report, hash) = measure_cell(cfg, &image, measure);
            (row.clone(), report, hash)
        });
        for (mut row, report, hash) in results {
            // The cell's end-step count covers its warm-up prefix too
            // (the `steps` counter travels with the snapshot).
            executed_steps += report.engine_steps;
            fill(&mut row, &report);
            hashes.push((
                format!("{}/{}/{}", row.topology, row.curve, row.policy),
                hash,
            ));
            rows.push(row);
        }
    }
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let leg = ForkLeg {
        sweep: ScalingSweep {
            rows,
            duration: measure,
            wall_s,
        },
        hashes,
        executed_steps,
    };
    (leg, snapshots)
}

impl ForkCompare {
    /// Wall-clock speedup of the forked leg over the straight leg.
    pub fn speedup(&self) -> f64 {
        self.straight.sweep.wall_s / self.forked.sweep.wall_s.max(1e-9)
    }

    /// Executed-step ratio straight/forked — the counter-verified
    /// warm-up amortization, free of wall-clock noise.
    pub fn step_ratio(&self) -> f64 {
        self.straight.executed_steps as f64 / self.forked.executed_steps.max(1) as f64
    }

    /// Whether both equality oracles (CSV bytes, state hashes) agree.
    pub fn identical(&self) -> bool {
        self.csv_identical && self.hashes_identical
    }

    /// Renders the per-cell hash table as CSV (`key,straight,fork`).
    pub fn hashes_csv(&self) -> String {
        let mut out = String::from("cell,straight_hash,fork_hash\n");
        for ((key, s), (_, f)) in self.straight.hashes.iter().zip(&self.forked.hashes) {
            out.push_str(&format!("{key},{s:016x},{f:016x}\n"));
        }
        out
    }
}

/// Runs both legs of the fork sweep and compares them cell by cell.
pub fn run_fork_compare(smoke: bool) -> ForkCompare {
    let (straight, _) = run_forked(smoke, false);
    let (forked, snapshots) = run_forked(smoke, true);
    let csv_identical = straight.sweep.to_csv() == forked.sweep.to_csv();
    let hashes_identical = straight.hashes == forked.hashes;
    ForkCompare {
        straight,
        forked,
        snapshots,
        csv_identical,
        hashes_identical,
        warmup: fork_warmup(smoke),
    }
}

impl core::fmt::Display for ForkCompare {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Fork sweep: {} cells in {} topology-curve groups \
             ({:.0} s warm-up, {:.0} s measurement)",
            self.forked.sweep.rows.len(),
            self.snapshots.len(),
            self.warmup.as_secs_f64(),
            self.forked.sweep.duration.as_secs_f64()
        )?;
        writeln!(
            f,
            "  straight leg: {} engine steps, {:.1}s wall ({} warm-ups)",
            self.straight.executed_steps,
            self.straight.sweep.wall_s,
            self.straight.sweep.rows.len()
        )?;
        writeln!(
            f,
            "  forked leg:   {} engine steps, {:.1}s wall ({} warm-ups)",
            self.forked.executed_steps,
            self.forked.sweep.wall_s,
            self.snapshots.len()
        )?;
        writeln!(
            f,
            "  amortization: {:.2}x fewer engine steps, {:.2}x wall-clock speedup",
            self.step_ratio(),
            self.speedup()
        )?;
        writeln!(
            f,
            "  equality: CSV {}, state hashes {}",
            if self.csv_identical {
                "byte-identical"
            } else {
                "DIVERGED"
            },
            if self.hashes_identical {
                "identical"
            } else {
                "DIVERGED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_at_least_24_cells() {
        let cells = sweep_configs(true);
        assert!(cells.len() >= 24, "only {} cells", cells.len());
        // 3 topologies × 2 curves × 4 policies.
        assert_eq!(cells.len(), 24);
        // Full sweep: 5 topologies × 3 curves × 4 policies.
        assert_eq!(sweep_configs(false).len(), 60);
        // Every cell is an open workload with a core-scaled rate.
        for (row, cfg) in &cells {
            let w = cfg.open_workload.as_ref().expect("open workload");
            let n_cores = cfg.n_packages() * cfg.cores_per_package;
            assert_eq!(w.base_rate_hz, 1.5 * n_cores as f64);
            assert!(!cfg.respawn);
            assert_eq!(cfg.n_packages(), row.packages);
        }
    }

    #[test]
    fn fixed_engine_leg_differs_only_in_stride() {
        let strided = sweep_configs(true);
        let fixed = sweep_configs_with_engine(true, false);
        assert_eq!(strided.len(), fixed.len());
        for ((srow, scfg), (frow, fcfg)) in strided.iter().zip(&fixed) {
            assert_eq!(srow.topology, frow.topology);
            assert_eq!(srow.policy, frow.policy);
            assert!(scfg.strided_enabled());
            assert!(!fcfg.strided_enabled());
            assert_eq!(scfg.seed, fcfg.seed);
            let rate = |cfg: &SimConfig| cfg.open_workload.as_ref().map(|w| w.base_rate_hz);
            assert_eq!(rate(scfg), rate(fcfg));
        }
    }

    #[test]
    fn cell_configs_resolves_gate_keys() {
        let (s, f) = cell_configs("dual2/burst/ea+dvfs").expect("smoke cell");
        assert!(s.strided_enabled() && !f.strided_enabled());
        assert_eq!(s.seed, f.seed);
        // Keys only the full matrix holds (the step curve) resolve too.
        assert!(cell_configs("numa64/step/stock+hlt").is_some());
        assert!(cell_configs("numa16/step/nope").is_none());
        assert!(cell_configs("garbage").is_none());
    }

    #[test]
    fn policy_matrix_distinct_and_complete() {
        let base = SimConfig::xseries445();
        let hlt = Policy::StockHlt.apply(base.clone());
        assert!(hlt.throttling && !hlt.energy_balancing && hlt.dvfs.is_none());
        let ea = Policy::EnergyAwareHlt.apply(base.clone());
        assert!(ea.energy_balancing && ea.hot_task_migration);
        let dvfs = Policy::StockDvfs.apply(base.clone());
        assert!(!dvfs.throttling && dvfs.dvfs.is_some());
        let both = Policy::EnergyAwareDvfs.apply(base);
        assert!(both.energy_balancing && both.dvfs.is_some() && !both.throttling);
        let names: Vec<_> = Policy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
        // An hlt cell built from a DVFS-configured base must not keep
        // the governor.
        let reused = Policy::StockHlt
            .apply(SimConfig::xseries445().dvfs_governor(GovernorKind::ThermalAware));
        assert!(reused.dvfs.is_none() && reused.throttling);
    }

    #[test]
    fn fork_groups_partition_the_matrix() {
        // Smoke: 3 topologies × 2 curves, 4 policy cells each; full:
        // 5 × 3. Every group's warm-up is the stock baseline of its
        // own topology, and the cells cover the whole sweep in order.
        let groups = fork_groups(true);
        assert_eq!(groups.len(), 6);
        assert_eq!(fork_groups(false).len(), 15);
        let sweep = sweep_configs(true);
        let mut flattened = 0;
        for g in &groups {
            assert_eq!(g.cells.len(), Policy::ALL.len());
            assert!(g.warmup.throttling, "warm-up is not the hlt baseline");
            assert!(g.warmup.dvfs.is_none());
            for (row, cfg) in &g.cells {
                assert_eq!(format!("{}/{}", row.topology, row.curve), g.key);
                assert_eq!(cfg.n_packages(), g.warmup.n_packages());
                assert_eq!(cfg.seed, g.warmup.seed);
                flattened += 1;
            }
        }
        assert_eq!(flattened, sweep.len());
    }

    #[test]
    fn smoke_sweep_produces_sane_rows() {
        let sweep = run(true);
        assert_eq!(sweep.rows.len(), 24);
        for r in &sweep.rows {
            assert!(
                r.arrivals > 0,
                "{}/{}/{}: no arrivals",
                r.topology,
                r.curve,
                r.policy
            );
            assert!(
                r.completions > 0,
                "{}/{}/{}: nothing completed",
                r.topology,
                r.curve,
                r.policy
            );
            assert!(r.completions <= r.arrivals);
            assert!(r.gips > 0.0);
            assert!(r.nj_per_instruction > 0.0);
            assert!(r.p95_ms >= r.p50_ms);
        }
        // Offered load scales with CPU count, so bigger machines
        // retire more instructions under the same curve and policy.
        for curve in ["diurnal", "burst"] {
            for policy in ["stock+hlt", "ea+hlt", "stock+dvfs", "ea+dvfs"] {
                let gips = |topo: &str| {
                    sweep
                        .rows
                        .iter()
                        .find(|r| r.topology == topo && r.curve == curve && r.policy == policy)
                        .expect("cell present")
                        .gips
                };
                assert!(
                    gips("numa16") > gips("dual2"),
                    "{curve}/{policy}: 16 packages no faster than 2"
                );
            }
        }
        // The CSV has one line per row plus the header.
        assert_eq!(sweep.to_csv().lines().count(), 25);
        assert_eq!(sweep.rows_for("numa16").len(), 8);
    }
}
