//! Figure 8: dependence of the throughput gain on workload
//! homogeneity.
//!
//! Ten scenarios from 9/0/9 (nine memrw, zero pushpop, nine bitcnts —
//! maximally heterogeneous) to 0/18/0 (homogeneous), SMT off, under
//! the 38 degC throttling regime with heterogeneous cooling. The paper
//! measures the largest gain (12.3 %) at 8/2/8 — a few medium tasks
//! help occupy the medium-cooling CPUs — and no gain for the
//! homogeneous workload.

use crate::fmt::{pct, Table};
use crate::testbed_cooling_factors;
use ebs_sim::{mean, run_seeds, MaxPowerSpec, SimConfig};
use ebs_units::{Celsius, SimDuration};
use ebs_workloads::fig8_scenarios;

/// One scenario's result.
#[derive(Clone, Debug)]
pub struct Row {
    /// The paper's label, e.g. "8/2/8".
    pub label: String,
    /// Measured throughput gain of energy-aware over baseline.
    pub gain: f64,
}

/// The Figure 8 result.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// One row per scenario, heterogeneous to homogeneous.
    pub rows: Vec<Row>,
}

/// Runs the Figure 8 sweep.
pub fn run(quick: bool) -> Fig8 {
    let duration = SimDuration::from_secs(if quick { 240 } else { 600 });
    let seeds: &[u64] = if quick {
        &crate::SEEDS[..2]
    } else {
        &crate::SEEDS[..3]
    };
    let base = SimConfig::xseries445()
        .smt(false)
        .throttling(true)
        .cooling_factors(testbed_cooling_factors())
        .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)));
    let mut rows = Vec::new();
    for (label, mix) in fig8_scenarios() {
        let ips = |on: bool| {
            let reports = run_seeds(&base.clone().energy_aware(on), seeds, duration, |sim| {
                sim.spawn_mix_entries(&mix)
            });
            mean(&reports, |r| r.throughput_ips)
        };
        let gain = ips(true) / ips(false) - 1.0;
        rows.push(Row { label, gain });
    }
    Fig8 { rows }
}

impl Fig8 {
    /// The scenario with the largest gain.
    pub fn best(&self) -> &Row {
        self.rows
            .iter()
            .max_by(|a, b| a.gain.partial_cmp(&b.gain).expect("finite gains"))
            .expect("ten scenarios")
    }
}

impl core::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Figure 8: throughput gain vs workload homogeneity (#memrw/#pushpop/#bitcnts)"
        )?;
        let mut t = Table::new(vec!["scenario", "gain"]);
        for r in &self.rows {
            t.row(vec![r.label.clone(), pct(r.gain)]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "best: {} at {} (paper: 12.3% at 8/2/8, ~0% at 0/18/0)",
            pct(self.best().gain),
            self.best().label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_decreases_towards_homogeneous_workloads() {
        let fig = run(true);
        assert_eq!(fig.rows.len(), 10);
        // Heterogeneous end gains clearly; homogeneous end does not.
        let hetero_avg = fig.rows[..3].iter().map(|r| r.gain).sum::<f64>() / 3.0;
        let homo = fig.rows.last().unwrap().gain;
        assert!(
            hetero_avg > 0.02,
            "heterogeneous workloads should gain, got {hetero_avg}"
        );
        assert!(
            homo < hetero_avg / 2.0,
            "homogeneous gain {homo} not clearly below heterogeneous {hetero_avg}"
        );
        assert!(
            homo.abs() < 0.04,
            "homogeneous gain should be near zero: {homo}"
        );
        // The peak lives on the heterogeneous half of the sweep.
        let best_idx = fig
            .rows
            .iter()
            .position(|r| r.label == fig.best().label)
            .unwrap();
        assert!(best_idx <= 4, "peak at {} ({})", best_idx, fig.best().label);
    }
}
