//! Section 6.1's migration counts: task migrations in 15 minutes with
//! energy balancing disabled vs enabled, without SMT (18 tasks) and
//! with SMT (36 tasks), averaged over several runs.
//!
//! Paper: 3.3 vs 32 (SMT off) and 9.8 vs 87 (SMT on) — roughly a
//! ten-fold increase that is still negligible (each task moves less
//! than twice in 15 minutes).

use crate::fmt::Table;
use crate::SEEDS;
use ebs_sim::{mean, run_seeds, MaxPowerSpec, SimConfig};
use ebs_units::{SimDuration, Watts};
use ebs_workloads::section61_mix;

/// One configuration's averaged counts.
#[derive(Clone, Debug)]
pub struct Row {
    /// "SMT off" / "SMT on".
    pub label: &'static str,
    /// Number of tasks in the workload.
    pub tasks: usize,
    /// Average migrations with energy balancing disabled.
    pub disabled: f64,
    /// Average migrations with energy balancing enabled.
    pub enabled: f64,
    /// Paper's numbers (disabled, enabled).
    pub paper: (f64, f64),
}

/// The migration-count result.
#[derive(Clone, Debug)]
pub struct Migrations {
    /// SMT off and SMT on rows.
    pub rows: Vec<Row>,
    /// Run length.
    pub duration: SimDuration,
}

/// Runs the migration-count experiment.
pub fn run(quick: bool) -> Migrations {
    let duration = SimDuration::from_secs(if quick { 300 } else { 900 });
    let seeds: &[u64] = if quick { &SEEDS[..2] } else { &SEEDS };
    let mut rows = Vec::new();
    for (label, smt, copies, paper) in [
        ("SMT off", false, 3, (3.3, 32.0)),
        ("SMT on", true, 6, (9.8, 87.0)),
    ] {
        // "We set the maximum power of all CPUs to 60 W"; with SMT the
        // package budget is divided between the logical CPUs (Sec. 4.7).
        let base = SimConfig::xseries445()
            .smt(smt)
            .throttling(false)
            .max_power(MaxPowerSpec::PerPackage(Watts(60.0)));
        let mix = section61_mix();
        let counts = |on: bool| {
            let reports = run_seeds(&base.clone().energy_aware(on), seeds, duration, |sim| {
                sim.spawn_mix(&mix, copies)
            });
            mean(&reports, |r| r.migrations as f64)
        };
        rows.push(Row {
            label,
            tasks: 6 * copies,
            disabled: counts(false),
            enabled: counts(true),
            paper,
        });
    }
    Migrations { rows, duration }
}

impl core::fmt::Display for Migrations {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "Section 6.1: task migrations in {} (averaged)",
            self.duration
        )?;
        let mut t = Table::new(vec![
            "config",
            "tasks",
            "EB off",
            "EB on",
            "paper off",
            "paper on",
            "per task",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.to_string(),
                r.tasks.to_string(),
                format!("{:.1}", r.disabled),
                format!("{:.1}", r.enabled),
                format!("{:.1}", r.paper.0),
                format!("{:.1}", r.paper.1),
                format!("{:.2}", r.enabled / r.tasks as f64),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "(paper: ~10x more migrations with balancing, still <2 per task per run)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balancing_multiplies_migrations_but_stays_cheap() {
        let m = run(true);
        for row in &m.rows {
            assert!(
                row.enabled > row.disabled + 3.0,
                "{}: enabled {} vs disabled {}",
                row.label,
                row.enabled,
                row.disabled
            );
            // Migration overhead stays negligible. The paper's bound
            // is "less than twice per task" over 15 minutes; the quick
            // run is dominated by the initial convergence phase, so
            // allow a little headroom.
            assert!(
                row.enabled / row.tasks as f64 <= 3.0,
                "{}: {} migrations for {} tasks",
                row.label,
                row.enabled,
                row.tasks
            );
        }
        // Without energy balancing the stock balancer is essentially
        // silent in both configurations (paper: 3.3 and 9.8).
        for row in &m.rows {
            assert!(
                row.disabled < 15.0,
                "{}: disabled {}",
                row.label,
                row.disabled
            );
        }
    }
}
