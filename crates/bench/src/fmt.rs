//! Minimal text-table formatting for experiment reports.
//!
//! Plain text keeps the harness free of serialisation dependencies;
//! the rows are aligned so they read like the paper's tables.

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for i in 0..n {
                widths[i] = widths[i].max(row[i].len());
            }
        }
        let write_row = |f: &mut core::fmt::Formatter<'_>, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>w$}", cell, w = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats watts with one decimal.
pub fn watts(w: ebs_units::Watts) -> String {
    format!("{:.1}W", w.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output() {
        let mut t = Table::new(vec!["program", "power"]);
        t.row(vec!["bitcnts", "61W"]);
        t.row(vec!["memrw", "38W"]);
        let s = t.to_string();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("program"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned columns line up.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(watts(ebs_units::Watts(60.04)), "60.0W");
    }
}
