//! Microbenchmarks of the scheduler substrate: the per-tick costs the
//! paper's Section 5 modifications add to Linux must stay negligible.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebs_core::{
    place_new_task, EnergyAwareBalancer, EnergyBalanceConfig, PowerState, PowerStateConfig,
};
use ebs_sched::{LoadBalancer, LoadBalancerConfig, System, TaskConfig};
use ebs_topology::{CpuId, Topology};
use ebs_units::{SimDuration, Watts};

fn loaded_system() -> System {
    let mut sys = System::new(Topology::xseries445(false));
    for c in 0..8 {
        for i in 0..3 {
            sys.spawn(
                TaskConfig {
                    initial_profile: Watts(35.0 + (c * 3 + i) as f64),
                    ..TaskConfig::default()
                },
                CpuId(c),
            );
        }
        sys.context_switch(CpuId(c));
    }
    sys
}

fn bench_context_switch(c: &mut Criterion) {
    let mut sys = loaded_system();
    c.bench_function("sched/context_switch", |b| {
        b.iter(|| {
            for cpu in 0..8 {
                black_box(sys.context_switch(CpuId(cpu)));
            }
        })
    });
}

fn bench_tick(c: &mut Criterion) {
    let mut sys = loaded_system();
    let dt = SimDuration::from_millis(1);
    c.bench_function("sched/tick_8cpus", |b| {
        b.iter(|| {
            for cpu in 0..8 {
                black_box(sys.tick(CpuId(cpu), dt));
            }
            // Refill timeslices occasionally via context switches.
            if sys
                .current(CpuId(0))
                .map(|t| sys.task(t).timeslice().is_zero())
                .unwrap_or(false)
            {
                for cpu in 0..8 {
                    sys.context_switch(CpuId(cpu));
                }
            }
        })
    });
}

fn bench_load_balance_pass(c: &mut Criterion) {
    let mut sys = loaded_system();
    let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
    c.bench_function("sched/load_balance_pass", |b| {
        b.iter(|| {
            for cpu in 0..8 {
                black_box(lb.run(CpuId(cpu), &mut sys));
            }
        })
    });
}

fn bench_energy_balance_pass(c: &mut Criterion) {
    let mut sys = loaded_system();
    let power = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
    let mut eb = EnergyAwareBalancer::new(&sys, EnergyBalanceConfig::default());
    c.bench_function("core/energy_balance_pass", |b| {
        b.iter(|| {
            for cpu in 0..8 {
                black_box(eb.run(CpuId(cpu), &mut sys, &power));
            }
        })
    });
}

fn bench_placement(c: &mut Criterion) {
    let sys = loaded_system();
    let power = PowerState::uniform(8, Watts(60.0), PowerStateConfig::default());
    c.bench_function("core/place_new_task", |b| {
        b.iter(|| black_box(place_new_task(&sys, &power, Watts(52.0))))
    });
}

criterion_group!(
    benches,
    bench_context_switch,
    bench_tick,
    bench_load_balance_pass,
    bench_energy_balance_pass,
    bench_placement
);
criterion_main!(benches);
