//! Microbenchmarks of the thermal substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebs_thermal::{calibrate, PowerAverage, RcThermalModel, ThermalNode, ThrottleController};
use ebs_units::{SimDuration, Watts};

fn bench_rc_step(c: &mut Criterion) {
    let mut node = ThermalNode::new(RcThermalModel::reference());
    let dt = SimDuration::from_millis(1);
    c.bench_function("thermal/rc_step", |b| {
        b.iter(|| black_box(node.step(black_box(Watts(55.0)), dt)))
    });
}

fn bench_expavg_update(c: &mut Criterion) {
    let mut avg = PowerAverage::with_time_constant(
        Watts(13.6),
        SimDuration::from_millis(100),
        SimDuration::from_secs(15),
    );
    let dt = SimDuration::from_millis(1);
    c.bench_function("thermal/expavg_update", |b| {
        b.iter(|| black_box(avg.update(black_box(Watts(61.0)), dt)))
    });
}

fn bench_throttle_observe(c: &mut Criterion) {
    let mut ctl = ThrottleController::new(Watts(47.0));
    let dt = SimDuration::from_millis(1);
    c.bench_function("thermal/throttle_observe", |b| {
        b.iter(|| black_box(ctl.observe(black_box(Watts(46.0)), dt)))
    });
}

fn bench_curve_fit(c: &mut Criterion) {
    let model = RcThermalModel::reference();
    let trace =
        calibrate::record_trace(&model, Watts(68.0), SimDuration::from_millis(500), 120, &[]);
    c.bench_function("thermal/fit_heating_curve", |b| {
        b.iter(|| black_box(calibrate::fit_heating_curve(black_box(&trace)).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_rc_step,
    bench_expavg_update,
    bench_throttle_observe,
    bench_curve_fit
);
criterion_main!(benches);
