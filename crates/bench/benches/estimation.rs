//! Microbenchmarks of the counter/estimation path: the paper's
//! estimator runs on *every* task switch, so Eq. 1 evaluation and the
//! counter reads must be cheap.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebs_core::EnergyEstimator;
use ebs_counters::{calibration, CounterBank, EnergyModel, EventRates, GroundTruth};
use ebs_topology::CpuId;
use ebs_units::{SimDuration, Watts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rates() -> EventRates {
    EventRates::builder()
        .uops_retired(2.0)
        .mem_loads(0.3)
        .mem_stores(0.1)
        .l2_references(0.01)
        .build()
}

fn bench_counts_for_cycles(c: &mut Criterion) {
    let r = rates();
    c.bench_function("counters/counts_for_cycles", |b| {
        b.iter(|| black_box(r.counts_for_cycles(black_box(2_200_000))))
    });
}

fn bench_estimate(c: &mut Criterion) {
    let model = EnergyModel::ground_truth_weights();
    let counts = rates().counts_for_cycles(2_200_000);
    c.bench_function("counters/eq1_estimate", |b| {
        b.iter(|| black_box(model.estimate(black_box(&counts))))
    });
}

fn bench_account(c: &mut Criterion) {
    let mut est = EnergyEstimator::new(EnergyModel::ground_truth_weights(), 1, Watts(6.8));
    let mut bank = CounterBank::new();
    let counts = rates().counts_for_cycles(2_200_000);
    let dt = SimDuration::from_millis(1);
    c.bench_function("core/estimator_account", |b| {
        b.iter(|| {
            bank.record(&counts);
            black_box(est.account(CpuId(0), &mut bank, dt, SimDuration::ZERO))
        })
    });
}

fn bench_calibration(c: &mut Criterion) {
    let truth = GroundTruth::p4_xeon_2200();
    c.bench_function("counters/standard_calibration", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(calibration::standard_calibration(&truth, &mut rng))
        })
    });
}

criterion_group!(
    benches,
    bench_counts_for_cycles,
    bench_estimate,
    bench_account,
    bench_calibration
);
criterion_main!(benches);
