//! End-to-end benches: one per reproduced table/figure, at reduced
//! scale so `cargo bench` exercises every experiment's full code path.
//! The `exp_*` binaries run the paper-scale versions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ebs_sim::{MaxPowerSpec, SimConfig, Simulation};
use ebs_units::{Celsius, SimDuration, Watts};
use ebs_workloads::{catalog, fig8_scenario, section61_mix};

/// One simulated second of the Section 6.1 mixed workload.
fn bench_sim_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("sim_second_18tasks", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(
                    SimConfig::xseries445()
                        .smt(false)
                        .energy_aware(true)
                        .seed(1),
                );
                sim.spawn_mix(&section61_mix(), 3);
                sim
            },
            |mut sim| sim.run_for(SimDuration::from_secs(1)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Scaled-down table/figure regenerations: each runs the experiment's
/// exact configuration for a short simulated window.
fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("table1_slice_sampling", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(
                    SimConfig::xseries445()
                        .smt(false)
                        .energy_aware(false)
                        .throttling(false)
                        .seed(42),
                );
                sim.record_slice_powers();
                sim.spawn_program(&catalog::openssl());
                sim
            },
            |mut sim| sim.run_for(SimDuration::from_secs(5)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fig67_balanced_window", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(
                    SimConfig::xseries445()
                        .smt(false)
                        .energy_aware(true)
                        .throttling(false)
                        .max_power(MaxPowerSpec::PerLogical(Watts(60.0)))
                        .trace_thermal(SimDuration::from_secs(1))
                        .seed(1),
                );
                sim.spawn_mix(&section61_mix(), 3);
                sim
            },
            |mut sim| sim.run_for(SimDuration::from_secs(5)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("table3_throttling_window", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(
                    SimConfig::xseries445()
                        .smt(true)
                        .energy_aware(true)
                        .throttling(true)
                        .cooling_factors(vec![1.25, 0.62, 0.65, 1.28, 0.85, 0.60, 0.63, 0.66])
                        .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)))
                        .seed(1),
                );
                sim.spawn_mix(&section61_mix(), 6);
                sim
            },
            |mut sim| sim.run_for(SimDuration::from_secs(5)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fig8_scenario_window", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(
                    SimConfig::xseries445()
                        .smt(false)
                        .energy_aware(true)
                        .throttling(true)
                        .cooling_factors(vec![1.25, 0.62, 0.65, 1.28, 0.85, 0.60, 0.63, 0.66])
                        .max_power(MaxPowerSpec::FromThermalLimit(Celsius(38.0)))
                        .seed(1),
                );
                sim.spawn_mix_entries(&fig8_scenario(8, 2, 8));
                sim
            },
            |mut sim| sim.run_for(SimDuration::from_secs(5)),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("fig9_hot_task_window", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new(
                    SimConfig::xseries445()
                        .smt(true)
                        .energy_aware(true)
                        .throttling(true)
                        .max_power(MaxPowerSpec::PerPackage(Watts(40.0)))
                        .trace_task_cpu(true)
                        .seed(3),
                );
                sim.spawn_program(&catalog::bitcnts());
                sim
            },
            |mut sim| sim.run_for(SimDuration::from_secs(5)),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_sim_second, bench_figures);
criterion_main!(benches);
