//! Decision-identity suite for aggregate-tree balancing.
//!
//! The aggregate tree must not change *any* balancing decision: group
//! loads are exact integer sums, and the memoised ratio sums are
//! rebuilt by the same member-order scans as the code they replace. So
//! a whole simulation run — scheduler, physics, energy accounting —
//! must produce byte-for-byte the same report with `scan_balancing`
//! forced on as with the aggregate paths (the default), on the
//! experiment shapes the acceptance criteria name: the exp_table2
//! solo-program runs and the exp_scaling smoke matrix.

use ebs_bench::experiments::scaling;
use ebs_sim::{SimConfig, SimReport, Simulation};
use ebs_units::SimDuration;
use ebs_workloads::section61_mix;

/// Byte-level fingerprint of a report (float Debug is the shortest
/// round-trip representation, so string equality is bit equality).
fn fingerprint(r: &SimReport) -> String {
    format!("{r:?}")
}

fn run(cfg: SimConfig, mix: usize, duration: SimDuration) -> String {
    let mut sim = Simulation::new(cfg);
    if mix > 0 {
        sim.spawn_mix(&section61_mix(), mix);
    }
    sim.run_for(duration);
    sim.system().validate();
    fingerprint(&sim.report())
}

#[test]
fn table2_shape_identical_across_balancing_modes() {
    // The exp_table2 setup: each program solo, stock balancing.
    for program in section61_mix() {
        let cfg = SimConfig::xseries445()
            .smt(false)
            .energy_aware(false)
            .throttling(false)
            .respawn(false)
            .seed(7);
        let duration = SimDuration::from_secs(5);
        let run_mode = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            sim.spawn_program(&program);
            sim.run_for(duration);
            fingerprint(&sim.report())
        };
        assert_eq!(
            run_mode(cfg.clone()),
            run_mode(cfg.scan_balancing(true)),
            "{}: balancing modes diverged",
            program.name
        );
    }
}

#[test]
fn loaded_energy_aware_runs_identical_across_balancing_modes() {
    // Three copies of the section 6.1 mix keep both balancer steps and
    // hot migration busy — real migration traffic, not a quiet run.
    let cfg = SimConfig::xseries445().smt(false).seed(11);
    let duration = SimDuration::from_secs(8);
    let a = run(cfg.clone(), 3, duration);
    let b = run(cfg.scan_balancing(true), 3, duration);
    assert_eq!(a, b, "energy-aware run diverged between balancing modes");
    // The run actually migrated (otherwise this test proves nothing).
    assert!(
        a.contains("migrations_by_reason"),
        "report shape changed under test"
    );
}

#[test]
fn scaling_smoke_cells_identical_across_balancing_modes() {
    // Every cell of the exp_scaling smoke matrix (3 topologies ×
    // 2 curves × 4 policies), shortened: identical migration decisions
    // means identical reports, open arrivals and all.
    let duration = SimDuration::from_secs(3);
    for (row, cfg) in scaling::sweep_configs(true) {
        let agg = run(cfg.clone(), 0, duration);
        let scan = run(cfg.scan_balancing(true), 0, duration);
        assert_eq!(
            agg, scan,
            "{}/{}/{}: balancing modes diverged",
            row.topology, row.curve, row.policy
        );
    }
}
