//! The `any::<T>()` entry point for canonical strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, ...).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy generating both booleans.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = ::core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);
