//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Option`s around an inner strategy; see [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        // Match real proptest's default: Some three times out of four.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

/// A strategy producing `None` sometimes and `Some(inner)` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
