//! Value-generation strategies.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy mapped through a function; see [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Object-safe strategy used behind [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Chooses uniformly among several boxed strategies.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 strategy range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
