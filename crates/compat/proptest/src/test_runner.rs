//! Test configuration, RNG, and failure type.

use core::fmt;

/// Configuration of a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim halves it since it
        // does no shrinking and the workspace's cases are sim-heavy.
        Config { cases: 128 }
    }
}

/// A failed test case (carries the formatted assertion message).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test's name, so every test gets its
    /// own reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
