//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the slice of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, `Just`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, the `proptest!` macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one important way: failing
//! cases are **not shrunk** — the harness reports the first failing
//! input as-is. Generation is deterministic per test (the RNG is
//! seeded from the test name), so failures reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    // Real proptest exposes `ProptestConfig` via `prelude::prop` re-exports
    // as well; tests name it unqualified, so re-export it here too.
    pub use crate::test_runner::Config as ProptestConfig;

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`, ...).
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Chooses uniformly between several strategies with the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current test case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{} (no shrinking): {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_within_bounds(x in 3.0f64..9.0, n in 1u64..100) {
            prop_assert!((3.0..9.0).contains(&x));
            prop_assert!((1..100).contains(&n));
        }

        #[test]
        fn vec_respects_size_and_element_bounds(
            xs in prop::collection::vec(0usize..5, 2..10),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }

        #[test]
        fn map_and_oneof_compose(
            v in prop_oneof![
                (0usize..4).prop_map(|x| x * 2),
                Just(99usize),
            ],
        ) {
            prop_assert!(v == 99 || v % 2 == 0);
            prop_assert_ne!(v, 1);
        }

        #[test]
        fn tuples_and_options(
            (a, b) in (0u32..10, 10u32..20),
            opt in prop::option::of(5i64..6),
        ) {
            prop_assert!(a < 10 && (10..20).contains(&b));
            prop_assert_eq!(opt.unwrap_or(5), 5);
        }

        #[test]
        fn any_bool_is_sampled(flag in any::<bool>()) {
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn failing_case_panics_with_context() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] meta here: the generated fn is invoked by
            // hand to observe its panic.
            proptest! {
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 200, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("x was"), "{msg}");
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        let s = 0.0f64..1.0;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
