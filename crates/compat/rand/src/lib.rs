//! In-tree stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small slice of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is a
//! SplitMix64 — statistically fine for simulation jitter and fully
//! deterministic per seed, which is all the simulator requires. It is
//! **not** the same stream as the real `StdRng` (ChaCha12), so seeds
//! produce different (but still reproducible) runs.

use core::ops::{Range, RangeInclusive};

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniformly samplable output types for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` built from the high 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * rng.next_f64()
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Name kept for source compatibility with `rand::rngs::StdRng`;
    /// the stream differs from the real crate's ChaCha12.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl StdRng {
        /// The raw generator state, for checkpointing. Restoring it
        /// via [`StdRng::from_state`] resumes the stream exactly
        /// where it left off.
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator from a raw [`StdRng::state`] word.
        /// Unlike [`SeedableRng::seed_from_u64`] no warm-up step
        /// runs: the next draw is the one the saved generator would
        /// have produced.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // One warm-up step decorrelates small adjacent seeds.
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            let _ = rng.gen::<u64>();
        }
        let mut resumed = StdRng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let f = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let g = rng.gen_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&g));
            let u = rng.gen_range(1usize..5);
            assert!((1..5).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn uniform_f64_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage [{lo}, {hi}]");
    }
}
