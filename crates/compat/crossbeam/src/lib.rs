//! In-tree stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` for structured
//! fork/join parallelism, which the standard library has provided since
//! Rust 1.63. This shim keeps the crossbeam call-site shape (a scope
//! closure receiving a spawner whose spawned closures in turn receive
//! the scope) while delegating to [`std::thread::scope`].

pub mod thread {
    //! Scoped threads with the crossbeam calling convention.

    /// A handle for spawning threads inside a scope.
    ///
    /// `Copy` so it can be handed to every spawned closure, mirroring
    /// crossbeam's nested-spawn capability.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the
        /// scope again, so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Runs `f` with a scope handle; all threads spawned in the scope
    /// are joined before this returns.
    ///
    /// Always returns `Ok`: unjoined-thread panics propagate as panics,
    /// exactly like [`std::thread::scope`]. The `Result` return keeps
    /// crossbeam's signature so call sites can `.expect(..)` it.
    #[allow(clippy::unnecessary_wraps)]
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_all_threads() {
        let mut results = vec![0u64; 4];
        crate::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..4u64 {
                handles.push((i as usize, scope.spawn(move |_| i * i)));
            }
            for (i, h) in handles {
                results[i] = h.join().expect("thread ok");
            }
        })
        .expect("scope ok");
        assert_eq!(results, vec![0, 1, 4, 9]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let n = crate::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().expect("inner") * 2)
                .join()
                .expect("outer")
        })
        .expect("scope ok");
        assert_eq!(n, 42);
    }
}
