//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate
//! implements the subset of the criterion API the workspace's benches
//! use — `Criterion`, benchmark groups, `Bencher::iter` /
//! `iter_batched`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a deliberately simple wall-clock
//! measurement loop. It reports a mean time per iteration; it does not
//! do criterion's statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup; all variants behave identically
/// in this shim (one setup per timed routine call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
    }
}

fn run_benchmark(label: &str, iterations: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations,
        total: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.total.as_nanos() as f64 / b.iterations.max(1) as f64;
    println!(
        "bench {label:<40} {per_iter:>14.1} ns/iter ({} iters)",
        b.iterations
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the iteration count used for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size as u64, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the iteration count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(
            &format!("{}/{name}", self.name),
            self.sample_size as u64,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default();
        c.sample_size(5)
            .bench_function("counts", |b| b.iter(|| calls += 1));
        // 5 timed + 1 warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut setups = 0u64;
        let mut routines = 0u64;
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| {
                    routines += 1;
                    black_box(x)
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(setups, 5);
        assert_eq!(routines, 5);
    }
}
