//! Property-based tests for program behaviour models.

use ebs_counters::EnergyModel;
use ebs_units::SimDuration;
use ebs_workloads::{catalog, ProgramState};
use proptest::prelude::*;

fn all_programs() -> Vec<ebs_workloads::Program> {
    vec![
        catalog::bitcnts(),
        catalog::memrw(),
        catalog::aluadd(),
        catalog::pushpop(),
        catalog::openssl(),
        catalog::bzip2(),
        catalog::bash(),
        catalog::grep(),
        catalog::sshd(),
    ]
}

proptest! {
    /// Any program, any seed: per-slice power stays within the convex
    /// hull of its phases' powers (expanded by the jitter), and IPC
    /// stays positive.
    #[test]
    fn slice_behaviour_stays_in_phase_hull(
        program_idx in 0usize..9,
        seed in 0u64..10_000,
        slices in 1usize..100,
    ) {
        let program = all_programs()[program_idx].clone();
        let model = EnergyModel::ground_truth_weights();
        let jitter = program.jitter;
        let phase_powers: Vec<f64> = program
            .phases
            .iter()
            .map(|ph| model.power_for_rates(&ph.rates, 2.2e9).0)
            .collect();
        let static_w = 13.2;
        let lo = phase_powers.iter().cloned().fold(f64::MAX, f64::min);
        let hi = phase_powers.iter().cloned().fold(f64::MIN, f64::max);
        // Jitter scales only the dynamic part.
        let lo_bound = static_w + (lo - static_w) * (1.0 - jitter) - 1e-9;
        let hi_bound = static_w + (hi - static_w) * (1.0 + jitter) + 1e-9;
        let mut state = ProgramState::new(program, seed);
        for _ in 0..slices {
            state.begin_slice();
            let p = model.power_for_rates(&state.current_rates(), 2.2e9).0;
            prop_assert!(p >= lo_bound && p <= hi_bound, "{p} outside [{lo_bound}, {hi_bound}]");
            prop_assert!(state.ipc() > 0.0);
            state.advance_time(SimDuration::from_millis(100));
            let _ = state.end_slice();
        }
    }

    /// Work accounting is monotone and completion is permanent.
    #[test]
    fn work_is_monotone(
        chunks in prop::collection::vec(1u64..1_000_000_000, 1..30),
        total in 1u64..10_000_000_000,
    ) {
        let program = catalog::aluadd().with_total_work(total);
        let mut state = ProgramState::new(program, 1);
        let mut done = false;
        let mut last = 0;
        for c in chunks {
            let complete = state.add_work(c);
            prop_assert!(state.work_done() >= last);
            last = state.work_done();
            if done {
                prop_assert!(complete, "completion went backwards");
            }
            done = complete;
            prop_assert_eq!(complete, state.work_done() >= total);
        }
    }

    /// Identical seeds replay identical behaviour; the stream of
    /// phases, rates, and blocking decisions is a pure function of
    /// (program, seed).
    #[test]
    fn behaviour_is_deterministic(program_idx in 0usize..9, seed in 0u64..10_000) {
        let run = || {
            let mut s = ProgramState::new(all_programs()[program_idx].clone(), seed);
            let mut trace = Vec::new();
            for _ in 0..40 {
                s.begin_slice();
                trace.push((s.phase_index(), s.ipc().to_bits(), s.end_slice()));
                s.advance_time(SimDuration::from_millis(100));
            }
            trace
        };
        prop_assert_eq!(run(), run());
    }
}
