//! Programs and their per-task runtime state.

use crate::phase::{Behavior, BlockProfile, Phase};
use ebs_counters::EventRates;
use ebs_units::{Instructions, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A workload program: phases plus the behaviour moving between them.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name as reported in tables ("bitcnts", ...).
    pub name: &'static str,
    /// The binary identity, keying the initial-placement table. One
    /// id per program, shared by all its instances — like the inode of
    /// `/usr/bin/bzip2`.
    pub binary: u64,
    /// The phases; phase 0 is the initial/dominant one.
    pub phases: Vec<Phase>,
    /// Phase-transition behaviour.
    pub behavior: Behavior,
    /// Per-timeslice multiplicative activity jitter (relative, e.g.
    /// 0.02 = ±2 %): input-data dependence within a phase.
    pub jitter: f64,
    /// Blocking behaviour, for interactive programs.
    pub blocking: Option<BlockProfile>,
    /// Instructions until the task finishes; `None` runs forever.
    pub total_work: Option<Instructions>,
}

impl Program {
    /// Creates a program.
    ///
    /// # Panics
    ///
    /// Panics if there are no phases or the jitter is negative.
    pub fn new(
        name: &'static str,
        binary: u64,
        phases: Vec<Phase>,
        behavior: Behavior,
        jitter: f64,
    ) -> Self {
        assert!(!phases.is_empty(), "program needs at least one phase");
        assert!(
            (0.0..1.0).contains(&jitter),
            "jitter {jitter} outside [0, 1)"
        );
        Program {
            name,
            binary,
            phases,
            behavior,
            jitter,
            blocking: None,
            total_work: None,
        }
    }

    /// Adds blocking behaviour.
    pub fn with_blocking(mut self, blocking: BlockProfile) -> Self {
        self.blocking = Some(blocking);
        self
    }

    /// Bounds the task's work so it terminates (for throughput
    /// experiments).
    pub fn with_total_work(mut self, instructions: Instructions) -> Self {
        self.total_work = Some(instructions);
        self
    }

    /// The program's dominant (initial) phase.
    pub fn main_phase(&self) -> &Phase {
        &self.phases[0]
    }
}

/// Per-task runtime state of a program: phase position, per-slice
/// jitter, accumulated work, and a private RNG so every task instance
/// behaves deterministically given its seed (the paper: "the sequence
/// and the duration of these phases depend on the task's input data").
#[derive(Clone, Debug)]
pub struct ProgramState {
    program: Program,
    phase_idx: usize,
    dwell_left: SimDuration,
    /// A one-timeslice spike phase, overriding `phase_idx`.
    spike: Option<usize>,
    jitter_factor: f64,
    work_done: Instructions,
    rng: StdRng,
}

impl ProgramState {
    /// Creates runtime state for one task instance.
    pub fn new(program: Program, seed: u64) -> Self {
        let dwell = program.phases[0].dwell;
        ProgramState {
            program,
            phase_idx: 0,
            dwell_left: dwell,
            spike: None,
            jitter_factor: 1.0,
            work_done: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The program definition.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Index of the phase currently in effect (spikes included).
    pub fn phase_index(&self) -> usize {
        self.spike.unwrap_or(self.phase_idx)
    }

    /// The phase currently in effect.
    pub fn active_phase(&self) -> &Phase {
        &self.program.phases[self.phase_index()]
    }

    /// Called when the task starts a new timeslice: resamples the
    /// per-slice jitter and, for spiky programs, decides whether this
    /// slice is a spike.
    pub fn begin_slice(&mut self) {
        let j = self.program.jitter;
        self.jitter_factor = if j > 0.0 {
            1.0 + self.rng.gen_range(-j..=j)
        } else {
            1.0
        };
        self.spike = None;
        if let Behavior::Spiky { spike_prob } = self.program.behavior {
            if self.program.phases.len() > 1 && self.rng.gen_bool(spike_prob) {
                self.spike = Some(self.rng.gen_range(1..self.program.phases.len()));
            }
        }
    }

    /// Called at the end of a timeslice: interactive programs may
    /// decide to block; returns the sleep duration if so.
    pub fn end_slice(&mut self) -> Option<SimDuration> {
        self.spike = None;
        let blocking = self.program.blocking?;
        if self.rng.gen_bool(blocking.prob_per_slice) {
            let scale = self.rng.gen_range(0.5..=1.5);
            Some(blocking.mean_sleep.mul_f64(scale))
        } else {
            None
        }
    }

    /// Advances phase dwell by `dt` of *execution* time (only while the
    /// task actually runs).
    pub fn advance_time(&mut self, dt: SimDuration) {
        if matches!(self.program.behavior, Behavior::Steady) || self.program.phases.len() < 2 {
            return;
        }
        if let Behavior::Cyclic = self.program.behavior {
            let mut dt = dt;
            while dt >= self.dwell_left {
                dt -= self.dwell_left;
                self.phase_idx = (self.phase_idx + 1) % self.program.phases.len();
                self.dwell_left = self.program.phases[self.phase_idx].dwell;
            }
            self.dwell_left -= dt;
        }
        // Spiky programs stay in phase 0 between spikes.
    }

    /// Execution time until the next dwell-driven phase rotation, or
    /// `None` when the activity cannot change mid-slice (steady and
    /// spiky programs only switch at slice boundaries). A
    /// variable-stride engine bounds its step by this so a cyclic
    /// program's rates stay constant within one step.
    pub fn time_to_phase_change(&self) -> Option<SimDuration> {
        match self.program.behavior {
            Behavior::Cyclic if self.program.phases.len() >= 2 => Some(self.dwell_left),
            _ => None,
        }
    }

    /// The effective event rates right now: the active phase's rates
    /// with the per-slice jitter applied to the activity events.
    pub fn current_rates(&self) -> EventRates {
        self.active_phase().rates.scale_activity(self.jitter_factor)
    }

    /// The effective IPC right now. Power and speed move together: a
    /// slice with more activity per cycle also retires more
    /// instructions.
    pub fn ipc(&self) -> f64 {
        self.active_phase().ipc * self.jitter_factor
    }

    /// Credits retired instructions; returns `true` when the program's
    /// total work is complete.
    pub fn add_work(&mut self, instructions: Instructions) -> bool {
        self.work_done = self.work_done.saturating_add(instructions);
        self.is_complete()
    }

    /// Whether the program has finished its work.
    pub fn is_complete(&self) -> bool {
        match self.program.total_work {
            Some(total) => self.work_done >= total,
            None => false,
        }
    }

    /// Instructions retired so far.
    pub fn work_done(&self) -> Instructions {
        self.work_done
    }
}

fn behavior_code(b: Behavior) -> (u8, f64) {
    match b {
        Behavior::Steady => (0, 0.0),
        Behavior::Cyclic => (1, 0.0),
        Behavior::Spiky { spike_prob } => (2, spike_prob),
    }
}

fn behavior_from_code(code: u8, arg: f64) -> Result<Behavior, ebs_store::StoreError> {
    match code {
        0 => Ok(Behavior::Steady),
        1 => Ok(Behavior::Cyclic),
        2 => Ok(Behavior::Spiky { spike_prob: arg }),
        _ => Err(ebs_store::StoreError::Invalid(format!(
            "behavior code {code}"
        ))),
    }
}

impl ebs_store::Snapshot for Program {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.str(self.name);
        w.u64(self.binary);
        w.seq(&self.phases, |w, phase| {
            w.str(phase.name);
            phase.rates.save(w);
            w.f64(phase.ipc);
            w.duration(phase.dwell);
        });
        let (code, arg) = behavior_code(self.behavior);
        w.u8(code);
        w.f64(arg);
        w.f64(self.jitter);
        w.opt(&self.blocking, |w, b| {
            w.f64(b.prob_per_slice);
            w.duration(b.mean_sleep);
        });
        w.opt(&self.total_work, |w, &i| w.u64(i));
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        // Program names come from the static catalog; snapshots of
        // dynamically assembled programs round-trip through the
        // interner.
        self.name = ebs_store::intern(&r.str()?);
        self.binary = r.u64()?;
        let phases = r.seq(|r| {
            let name = ebs_store::intern(&r.str()?);
            let mut rates = ebs_counters::EventRates::HALTED;
            rates.restore(r)?;
            let ipc = r.f64()?;
            let dwell = r.duration()?;
            Ok(Phase {
                name,
                rates,
                ipc,
                dwell,
            })
        })?;
        if phases.is_empty() {
            return Err(ebs_store::StoreError::Invalid(
                "program with no phases".into(),
            ));
        }
        self.phases = phases;
        let code = r.u8()?;
        let arg = r.f64()?;
        self.behavior = behavior_from_code(code, arg)?;
        self.jitter = r.f64()?;
        self.blocking = r.opt(|r| {
            Ok(BlockProfile {
                prob_per_slice: r.f64()?,
                mean_sleep: r.duration()?,
            })
        })?;
        self.total_work = r.opt(|r| r.u64())?;
        Ok(())
    }
}

impl ebs_store::Snapshot for ProgramState {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        self.program.save(w);
        w.usize(self.phase_idx);
        w.duration(self.dwell_left);
        w.opt(&self.spike, |w, &i| w.usize(i));
        w.f64(self.jitter_factor);
        w.u64(self.work_done);
        w.u64(self.rng.state());
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.program.restore(r)?;
        self.phase_idx = r.usize()?;
        if self.phase_idx >= self.program.phases.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "phase index {} of {}",
                self.phase_idx,
                self.program.phases.len()
            )));
        }
        self.dwell_left = r.duration()?;
        self.spike = r.opt(|r| r.usize())?;
        self.jitter_factor = r.f64()?;
        self.work_done = r.u64()?;
        self.rng = StdRng::from_state(r.u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_counters::{EnergyModel, EventRates};
    use ebs_units::Watts;

    fn two_phase_program(behavior: Behavior) -> Program {
        Program::new(
            "test",
            1,
            vec![
                Phase::new(
                    "main",
                    EventRates::builder().uops_retired(2.0).build(),
                    1.5,
                    SimDuration::from_secs(1),
                ),
                Phase::new(
                    "alt",
                    EventRates::builder().uops_retired(0.5).build(),
                    0.5,
                    SimDuration::from_secs(2),
                ),
            ],
            behavior,
            0.02,
        )
    }

    #[test]
    fn steady_program_never_changes_phase() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Steady), 1);
        for _ in 0..100 {
            s.begin_slice();
            s.advance_time(SimDuration::from_millis(100));
            assert_eq!(s.phase_index(), 0);
        }
    }

    #[test]
    fn cyclic_program_rotates_on_dwell() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Cyclic), 1);
        assert_eq!(s.phase_index(), 0);
        s.advance_time(SimDuration::from_millis(1_000));
        assert_eq!(s.phase_index(), 1);
        s.advance_time(SimDuration::from_millis(2_000));
        assert_eq!(s.phase_index(), 0);
        // Multiple dwells in one call wrap correctly.
        s.advance_time(SimDuration::from_millis(3_000));
        assert_eq!(s.phase_index(), 0);
    }

    #[test]
    fn time_to_phase_change_tracks_dwell() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Cyclic), 1);
        assert_eq!(s.time_to_phase_change(), Some(SimDuration::from_secs(1)));
        s.advance_time(SimDuration::from_millis(400));
        assert_eq!(
            s.time_to_phase_change(),
            Some(SimDuration::from_millis(600))
        );
        // Steady programs never change mid-slice.
        let s = ProgramState::new(two_phase_program(Behavior::Steady), 1);
        assert_eq!(s.time_to_phase_change(), None);
        let s = ProgramState::new(two_phase_program(Behavior::Spiky { spike_prob: 0.5 }), 1);
        assert_eq!(s.time_to_phase_change(), None);
    }

    #[test]
    fn spiky_program_spikes_for_one_slice() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Spiky { spike_prob: 1.0 }), 7);
        s.begin_slice();
        assert_eq!(s.phase_index(), 1, "guaranteed spike did not occur");
        // The spike ends with the slice.
        let _ = s.end_slice();
        assert_eq!(s.phase_index(), 0);
    }

    #[test]
    fn spike_probability_zero_never_spikes() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Spiky { spike_prob: 0.0 }), 7);
        for _ in 0..200 {
            s.begin_slice();
            assert_eq!(s.phase_index(), 0);
            let _ = s.end_slice();
        }
    }

    #[test]
    fn jitter_moves_power_and_speed_together() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Steady), 3);
        let model = EnergyModel::ground_truth_weights();
        let base_power = model.power_for_rates(&s.program().phases[0].rates, 2.2e9);
        let base_ipc = s.program().phases[0].ipc;
        let mut saw_low = false;
        let mut saw_high = false;
        for _ in 0..50 {
            s.begin_slice();
            let p = model.power_for_rates(&s.current_rates(), 2.2e9);
            let rel_power = (p.0 - base_power.0) / (base_power.0 - 13.2);
            let rel_ipc = s.ipc() / base_ipc - 1.0;
            // Same relative deviation for dynamic power and IPC.
            assert!(
                (rel_power - rel_ipc).abs() < 1e-9,
                "power jitter {rel_power} != ipc jitter {rel_ipc}"
            );
            if rel_ipc < -0.005 {
                saw_low = true;
            }
            if rel_ipc > 0.005 {
                saw_high = true;
            }
        }
        assert!(saw_low && saw_high, "jitter never varied");
        let _ = Watts(0.0);
    }

    #[test]
    fn work_accounting_completes() {
        let p = two_phase_program(Behavior::Steady).with_total_work(1_000);
        let mut s = ProgramState::new(p, 1);
        assert!(!s.add_work(400));
        assert!(!s.is_complete());
        assert!(s.add_work(600));
        assert!(s.is_complete());
        assert_eq!(s.work_done(), 1_000);
    }

    #[test]
    fn unbounded_program_never_completes() {
        let mut s = ProgramState::new(two_phase_program(Behavior::Steady), 1);
        assert!(!s.add_work(u64::MAX / 2));
        assert!(!s.is_complete());
    }

    #[test]
    fn blocking_program_blocks_eventually() {
        let p = two_phase_program(Behavior::Steady)
            .with_blocking(BlockProfile::new(0.5, SimDuration::from_millis(40)));
        let mut s = ProgramState::new(p, 11);
        let mut blocked = 0;
        for _ in 0..100 {
            s.begin_slice();
            if let Some(sleep) = s.end_slice() {
                blocked += 1;
                // ±50 % around the mean.
                assert!(sleep >= SimDuration::from_millis(20));
                assert!(sleep <= SimDuration::from_millis(60));
            }
        }
        assert!(blocked > 20 && blocked < 80, "blocked {blocked}/100");
    }

    #[test]
    fn determinism_per_seed() {
        let mk = || {
            let mut s =
                ProgramState::new(two_phase_program(Behavior::Spiky { spike_prob: 0.3 }), 99);
            let mut trace = Vec::new();
            for _ in 0..50 {
                s.begin_slice();
                trace.push((s.phase_index(), s.ipc().to_bits()));
                let _ = s.end_slice();
            }
            trace
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_program_rejected() {
        let _ = Program::new("bad", 0, vec![], Behavior::Steady, 0.0);
    }
}
