//! The arrival process realising an [`OpenWorkload`]: a thinned
//! homogeneous Poisson process at the curve's peak rate.
//!
//! Candidate instants arrive with exponential gaps at the peak rate
//! and are accepted with probability `rate(t) / peak` — exact for any
//! time-varying rate, and deterministic per seed. The process lives
//! here (not in the engine) so the engine can *peek* the next
//! accepted arrival and bound a variable-length step by it: arrivals
//! then land exactly on step boundaries instead of being quantised to
//! a fixed tick.

use crate::open::OpenWorkload;
use ebs_units::{Instructions, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Salt separating the arrival RNG stream from the engine's main one,
/// so enabling an open workload never perturbs a closed run's draws.
pub const ARRIVAL_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// One accepted arrival, ready for the engine to spawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Index into the workload's program palette.
    pub program_index: usize,
    /// Sampled service demand (total instructions).
    pub work: Instructions,
    /// Seed for the spawned task's private RNG.
    pub seed: u64,
    /// The load-curve phase label at the arrival instant.
    pub phase: &'static str,
}

/// One exponential inter-arrival gap at `rate_hz`, at least 1 µs.
fn exp_gap(rng: &mut StdRng, rate_hz: f64) -> SimDuration {
    let u: f64 = rng.gen();
    let secs = -(1.0 - u).ln() / rate_hz;
    SimDuration::from_micros(((secs * 1e6).round() as u64).max(1))
}

/// State of the Poisson arrival process driving an open workload.
///
/// The thinning of rejected candidates is resolved *ahead* of the
/// clock: the process always knows the instant of its next *accepted*
/// arrival, so a variable-stride engine only ends steps at arrivals
/// that actually spawn a task. Resolving ahead consumes the dedicated
/// RNG stream in exactly the order lazy evaluation would, so the
/// arrival sequence is independent of how the clock is advanced.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    spec: OpenWorkload,
    /// Dedicated RNG: arrivals, palette picks, and service demands.
    rng: StdRng,
    /// Next candidate of the peak-rate (pre-thinning) process still
    /// to be resolved.
    next_candidate: SimTime,
    /// The next accepted arrival, already resolved.
    pending: Option<(SimTime, Arrival)>,
    accepted: u64,
}

impl ArrivalProcess {
    /// Creates the process for `spec`, deriving its RNG stream from
    /// the engine seed via [`ARRIVAL_SEED_SALT`].
    pub fn new(spec: OpenWorkload, engine_seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(engine_seed ^ ARRIVAL_SEED_SALT);
        let peak = spec.peak_rate();
        let next_candidate = if peak > 0.0 {
            SimTime::ZERO + exp_gap(&mut rng, peak)
        } else {
            SimTime::from_micros(u64::MAX)
        };
        let mut process = ArrivalProcess {
            spec,
            rng,
            next_candidate,
            pending: None,
            accepted: 0,
        };
        process.resolve();
        process
    }

    /// The workload description the process realises.
    pub fn spec(&self) -> &OpenWorkload {
        &self.spec
    }

    /// Advances the candidate stream until one candidate survives the
    /// thinning (or the stream runs dry for a zero rate).
    fn resolve(&mut self) {
        let peak = self.spec.peak_rate();
        if peak <= 0.0 {
            return;
        }
        while self.pending.is_none() {
            let t = self.next_candidate;
            self.next_candidate = t + exp_gap(&mut self.rng, peak);
            let accept = (self.spec.rate_at(t) / peak).clamp(0.0, 1.0);
            if self.rng.gen_bool(accept) {
                let program_index = self.rng.gen_range(0..self.spec.programs.len());
                let work = self.rng.gen_range(self.spec.min_work..=self.spec.max_work);
                let seed = self.rng.gen();
                self.pending = Some((
                    t,
                    Arrival {
                        program_index,
                        work,
                        seed,
                        phase: self.spec.curve.phase_at(t),
                    },
                ));
            }
        }
    }

    /// The instant of the next *accepted* arrival — a variable-stride
    /// engine ends its step here so the spawn happens on time;
    /// effectively `u64::MAX` µs when the rate is zero.
    pub fn next_arrival(&self) -> SimTime {
        self.pending
            .as_ref()
            .map_or(SimTime::from_micros(u64::MAX), |&(t, _)| t)
    }

    /// Arrivals accepted so far (released through
    /// [`ArrivalProcess::pop_due`]).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Pops every arrival due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(&(t, arrival)) = self.pending.as_ref() {
            if t > now {
                break;
            }
            self.pending = None;
            self.accepted += 1;
            out.push(arrival);
            self.resolve();
        }
        out
    }
}

impl ebs_store::Snapshot for ArrivalProcess {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // The workload spec is config; the stream position is state.
        w.u64(self.rng.state());
        w.time(self.next_candidate);
        w.opt(&self.pending, |w, &(t, a)| {
            w.time(t);
            w.usize(a.program_index);
            w.u64(a.work);
            w.u64(a.seed);
            w.str(a.phase);
        });
        w.u64(self.accepted);
    }

    /// Restores into a process built from the *same* spec and any
    /// seed: every cursor of the stream is overwritten, so the next
    /// accepted arrival is exactly the one the saved process would
    /// have produced.
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.rng = StdRng::from_state(r.u64()?);
        self.next_candidate = r.time()?;
        self.pending = r.opt(|r| {
            let t = r.time()?;
            let program_index = r.usize()?;
            let work = r.u64()?;
            let seed = r.u64()?;
            let phase = ebs_store::intern(&r.str()?);
            Ok((
                t,
                Arrival {
                    program_index,
                    work,
                    seed,
                    phase,
                },
            ))
        })?;
        if let Some((_, a)) = &self.pending {
            if a.program_index >= self.spec.programs.len() {
                return Err(ebs_store::StoreError::Invalid(format!(
                    "pending arrival references program {} of {}",
                    a.program_index,
                    self.spec.programs.len()
                )));
            }
        }
        self.accepted = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::open::LoadCurve;

    fn workload(rate: f64) -> OpenWorkload {
        OpenWorkload::new(vec![catalog::aluadd(), catalog::memrw()], rate)
            .service_work(1_000, 2_000)
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = ArrivalProcess::new(workload(50.0), seed);
            p.pop_due(SimTime::from_secs(2))
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn chopping_does_not_change_the_stream() {
        // Popping in many small windows yields the same arrivals as
        // one big pop — the property that lets strides vary freely.
        let mut coarse = ArrivalProcess::new(workload(80.0), 3);
        let all = coarse.pop_due(SimTime::from_secs(1));
        let mut fine = ArrivalProcess::new(workload(80.0), 3);
        let mut chopped = Vec::new();
        for ms in (0..=1_000).step_by(7) {
            chopped.extend(fine.pop_due(SimTime::from_millis(ms)));
        }
        chopped.extend(fine.pop_due(SimTime::from_secs(1)));
        assert_eq!(all, chopped);
        assert_eq!(coarse.accepted(), fine.accepted());
    }

    #[test]
    fn rates_and_bounds_respected() {
        let mut p = ArrivalProcess::new(workload(100.0), 1);
        let arrivals = p.pop_due(SimTime::from_secs(10));
        // ~1000 expected; be generous.
        assert!(arrivals.len() > 700, "only {}", arrivals.len());
        for a in &arrivals {
            assert!(a.program_index < 2);
            assert!((1_000..=2_000).contains(&a.work));
            assert_eq!(a.phase, "steady");
        }
        assert_eq!(p.accepted(), arrivals.len() as u64);
    }

    #[test]
    fn zero_rate_never_arrives() {
        let mut p = ArrivalProcess::new(workload(0.0), 1);
        assert!(p.pop_due(SimTime::from_secs(1_000)).is_empty());
        assert_eq!(p.next_arrival(), SimTime::from_micros(u64::MAX));
    }

    #[test]
    fn arrival_peek_matches_pop() {
        let mut p = ArrivalProcess::new(workload(20.0), 5);
        let first = p.next_arrival();
        assert!(first > SimTime::ZERO);
        // Nothing due strictly before the peeked arrival, exactly one
        // at it, and the peek then moves strictly forward.
        assert!(p
            .pop_due(SimTime::from_micros(first.as_micros() - 1))
            .is_empty());
        assert_eq!(p.next_arrival(), first);
        assert_eq!(p.pop_due(first).len(), 1);
        assert!(p.next_arrival() > first);
    }

    #[test]
    fn thinning_is_resolved_ahead_of_the_clock() {
        // A heavily thinned stream (rate factor 0.1 before the step)
        // still reports the next *accepted* arrival, not the next
        // candidate of the peak-rate envelope.
        let spec = workload(100.0).curve(LoadCurve::Step {
            at: SimDuration::from_secs(1_000),
            before: 0.01,
            after: 1.0,
        });
        let p = ArrivalProcess::new(spec, 2);
        // Mean accepted gap ~1 s vs candidate gap ~10 ms.
        assert!(p.next_arrival() > SimTime::from_millis(50));
    }

    #[test]
    fn thinning_follows_the_curve() {
        let spec = workload(100.0).curve(LoadCurve::Step {
            at: SimDuration::from_secs(5),
            before: 0.1,
            after: 1.0,
        });
        let mut p = ArrivalProcess::new(spec, 11);
        let before = p.pop_due(SimTime::from_secs(5)).len();
        let after = p.pop_due(SimTime::from_secs(10)).len();
        assert!(
            after > before * 3,
            "thinning ignored the curve: {before} vs {after}"
        );
    }
}
