//! The program catalog: the paper's test applications as phase models.
//!
//! Power levels follow Table 2 (on the ground-truth energy model at
//! 2.2 GHz) and phase-change statistics follow Table 1. The activity
//! vectors are chosen to be *microarchitecturally* plausible for each
//! program — bitcnts is pure ALU pressure, memrw is bus-bound with low
//! IPC, openssl rotates through *different algorithms with different
//! power* (42–57 W), and so on.

use crate::phase::{Behavior, BlockProfile, Phase};
use crate::program::Program;
use ebs_counters::EventRates;
use ebs_units::SimDuration;

/// Binary ids of the catalog programs (the "inode numbers").
pub mod binaries {
    /// bitcnts binary id.
    pub const BITCNTS: u64 = 1;
    /// memrw binary id.
    pub const MEMRW: u64 = 2;
    /// aluadd binary id.
    pub const ALUADD: u64 = 3;
    /// pushpop binary id.
    pub const PUSHPOP: u64 = 4;
    /// openssl binary id.
    pub const OPENSSL: u64 = 5;
    /// bzip2 binary id.
    pub const BZIP2: u64 = 6;
    /// bash binary id.
    pub const BASH: u64 = 7;
    /// grep binary id.
    pub const GREP: u64 = 8;
    /// sshd binary id.
    pub const SSHD: u64 = 9;
}

const LONG: SimDuration = SimDuration::from_secs(3_600);

/// bitcnts — bit counting operations; the hottest program (61 W).
pub fn bitcnts() -> Program {
    let rates = EventRates::builder()
        .uops_retired(2.6)
        .mem_loads(0.35)
        .mem_stores(0.12)
        .branch_mispredictions(0.025)
        .l2_references(0.016)
        .build();
    Program::new(
        "bitcnts",
        binaries::BITCNTS,
        vec![Phase::new("count", rates, 1.8, LONG)],
        Behavior::Steady,
        0.01,
    )
}

/// memrw — memory reads/writes; bus-bound and cool (38 W).
pub fn memrw() -> Program {
    let rates = EventRates::builder()
        .uops_retired(0.35)
        .mem_loads(0.20)
        .mem_stores(0.20)
        .l2_references(0.07)
        .l2_misses(0.022)
        .bus_transactions(0.036)
        .build();
    Program::new(
        "memrw",
        binaries::MEMRW,
        vec![Phase::new("stream", rates, 0.25, LONG)],
        Behavior::Steady,
        0.01,
    )
}

/// aluadd — integer additions (50 W).
pub fn aluadd() -> Program {
    let rates = EventRates::builder()
        .uops_retired(2.3)
        .mem_loads(0.10)
        .mem_stores(0.05)
        .l2_references(0.002)
        .build();
    Program::new(
        "aluadd",
        binaries::ALUADD,
        vec![Phase::new("add", rates, 2.0, LONG)],
        Behavior::Steady,
        0.01,
    )
}

/// pushpop — stack push/pop (47 W).
pub fn pushpop() -> Program {
    let rates = EventRates::builder()
        .uops_retired(1.6)
        .mem_loads(0.50)
        .mem_stores(0.50)
        .l2_references(0.005)
        .build();
    Program::new(
        "pushpop",
        binaries::PUSHPOP,
        vec![Phase::new("stack", rates, 1.5, LONG)],
        Behavior::Steady,
        0.01,
    )
}

/// openssl — the OpenSSL benchmark rotating through encryption and
/// checksum algorithms; power varies between 42 W and 57 W with brief
/// low-power setup stretches between algorithms.
pub fn openssl() -> Program {
    let dwell = SimDuration::from_secs(12);
    let setup = SimDuration::from_millis(1_200);
    let phases = vec![
        Phase::new(
            "rsa",
            EventRates::builder()
                .fp_uops(0.90)
                .uops_retired(1.30)
                .mem_loads(0.15)
                .mem_stores(0.08)
                .build(),
            1.0,
            dwell,
        ),
        Phase::new(
            "aes",
            EventRates::builder()
                .uops_retired(2.20)
                .mem_loads(0.45)
                .mem_stores(0.15)
                .build(),
            1.6,
            dwell,
        ),
        Phase::new(
            "sha",
            EventRates::builder()
                .uops_retired(2.00)
                .mem_loads(0.35)
                .mem_stores(0.13)
                .build(),
            1.7,
            dwell,
        ),
        Phase::new(
            "des",
            EventRates::builder()
                .uops_retired(1.90)
                .mem_loads(0.30)
                .mem_stores(0.02)
                .build(),
            1.6,
            dwell,
        ),
        Phase::new(
            "md5",
            EventRates::builder()
                .uops_retired(1.75)
                .mem_loads(0.23)
                .build(),
            1.7,
            dwell,
        ),
        Phase::new(
            "setup",
            EventRates::builder()
                .uops_retired(1.20)
                .mem_loads(0.30)
                .mem_stores(0.10)
                .build(),
            1.2,
            setup,
        ),
    ];
    Program::new(
        "openssl",
        binaries::OPENSSL,
        phases,
        Behavior::Cyclic,
        0.035,
    )
}

/// bzip2 — file compression (48 W) with rare input-refill stalls that
/// produce Table 1's 88.8 % worst-case slice-to-slice change.
pub fn bzip2() -> Program {
    let compress = EventRates::builder()
        .uops_retired(1.50)
        .mem_loads(0.35)
        .mem_stores(0.18)
        .l2_references(0.06)
        .l2_misses(0.008)
        .bus_transactions(0.008)
        .branch_mispredictions(0.006)
        .build();
    let refill = EventRates::builder()
        .uops_retired(0.37)
        .mem_loads(0.10)
        .l2_references(0.05)
        .l2_misses(0.01)
        .bus_transactions(0.006)
        .build();
    Program::new(
        "bzip2",
        binaries::BZIP2,
        vec![
            Phase::new("compress", compress, 1.1, LONG),
            Phase::new("refill", refill, 0.35, SimDuration::from_millis(100)),
        ],
        Behavior::Spiky { spike_prob: 0.02 },
        0.04,
    )
}

/// bash — an interactive shell: mostly waiting, moderate bursts when
/// active (Table 1: 19.0 % max, 2.05 % average change).
pub fn bash() -> Program {
    let prompt = EventRates::builder()
        .uops_retired(0.60)
        .mem_loads(0.20)
        .mem_stores(0.10)
        .build();
    let burst = EventRates::builder()
        .uops_retired(0.85)
        .mem_loads(0.25)
        .mem_stores(0.14)
        .build();
    Program::new(
        "bash",
        binaries::BASH,
        vec![
            Phase::new("prompt", prompt, 0.8, LONG),
            Phase::new("burst", burst, 1.0, SimDuration::from_millis(100)),
        ],
        Behavior::Spiky { spike_prob: 0.01 },
        0.055,
    )
    .with_blocking(BlockProfile::new(0.35, SimDuration::from_millis(60)))
}

/// grep — a steady text scanner with rare I/O stalls (Table 1: 84.3 %
/// max but only 1.06 % average change).
pub fn grep() -> Program {
    let scan = EventRates::builder()
        .uops_retired(1.55)
        .mem_loads(0.30)
        .l2_references(0.02)
        .build();
    let stall = EventRates::builder()
        .uops_retired(0.20)
        .l2_references(0.02)
        .l2_misses(0.01)
        .bus_transactions(0.012)
        .build();
    Program::new(
        "grep",
        binaries::GREP,
        vec![
            Phase::new("scan", scan, 1.4, LONG),
            Phase::new("stall", stall, 0.15, SimDuration::from_millis(100)),
        ],
        Behavior::Spiky { spike_prob: 0.004 },
        0.01,
    )
}

/// sshd — a network daemon: light steady crypto with occasional
/// bursts, frequent blocking (Table 1: 18.3 % max, 1.38 % average).
pub fn sshd() -> Program {
    let idle_crypt = EventRates::builder()
        .uops_retired(1.10)
        .mem_loads(0.30)
        .mem_stores(0.15)
        .l2_references(0.02)
        .build();
    let burst = EventRates::builder()
        .uops_retired(1.53)
        .mem_loads(0.35)
        .mem_stores(0.20)
        .build();
    Program::new(
        "sshd",
        binaries::SSHD,
        vec![
            Phase::new("relay", idle_crypt, 1.2, LONG),
            Phase::new("burst", burst, 1.4, SimDuration::from_millis(100)),
        ],
        Behavior::Spiky { spike_prob: 0.005 },
        0.03,
    )
    .with_blocking(BlockProfile::new(0.25, SimDuration::from_millis(40)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_counters::EnergyModel;

    const FREQ: f64 = 2.2e9;

    fn main_power(p: &Program) -> f64 {
        EnergyModel::ground_truth_weights()
            .power_for_rates(&p.main_phase().rates, FREQ)
            .0
    }

    #[test]
    fn table2_power_levels() {
        // Table 2 of the paper, within half a watt.
        let cases = [
            (bitcnts(), 61.0),
            (memrw(), 38.0),
            (aluadd(), 50.0),
            (pushpop(), 47.0),
            (bzip2(), 48.0),
        ];
        for (program, expected) in cases {
            let p = main_power(&program);
            assert!(
                (p - expected).abs() < 0.5,
                "{}: modelled {p:.2} W, Table 2 says {expected} W",
                program.name
            );
        }
    }

    #[test]
    fn openssl_power_spans_42_to_57() {
        let program = openssl();
        let model = EnergyModel::ground_truth_weights();
        let powers: Vec<f64> = program
            .phases
            .iter()
            .filter(|ph| ph.name != "setup")
            .map(|ph| model.power_for_rates(&ph.rates, FREQ).0)
            .collect();
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - 57.0).abs() < 0.5, "openssl max {max:.2}");
        assert!((min - 42.0).abs() < 0.5, "openssl min {min:.2}");
    }

    #[test]
    fn table1_worst_case_jumps() {
        // The biggest phase-to-phase power jump of each program should
        // approximate Table 1's maximum successive-slice change.
        let model = EnergyModel::ground_truth_weights();
        let max_jump = |p: &Program| -> f64 {
            let powers: Vec<f64> = p
                .phases
                .iter()
                .map(|ph| model.power_for_rates(&ph.rates, FREQ).0)
                .collect();
            let mut worst = 0.0_f64;
            for &a in &powers {
                for &b in &powers {
                    worst = worst.max((b - a).abs() / a.min(b));
                }
            }
            worst
        };
        let cases = [
            (bash(), 0.190),
            (bzip2(), 0.888),
            (grep(), 0.843),
            (sshd(), 0.183),
            (openssl(), 0.632),
        ];
        for (program, expected) in cases {
            let jump = max_jump(&program);
            assert!(
                (jump - expected).abs() < 0.05,
                "{}: max jump {jump:.3}, Table 1 says {expected}",
                program.name
            );
        }
    }

    #[test]
    fn binary_ids_are_unique() {
        let programs = [
            bitcnts(),
            memrw(),
            aluadd(),
            pushpop(),
            openssl(),
            bzip2(),
            bash(),
            grep(),
            sshd(),
        ];
        for (i, a) in programs.iter().enumerate() {
            for b in &programs[i + 1..] {
                assert_ne!(
                    a.binary, b.binary,
                    "{} and {} share a binary",
                    a.name, b.name
                );
            }
        }
    }

    #[test]
    fn interactive_programs_block() {
        assert!(bash().blocking.is_some());
        assert!(sshd().blocking.is_some());
        assert!(bitcnts().blocking.is_none());
    }

    #[test]
    fn hot_programs_have_high_ipc() {
        // The memory-bound program must be slow, the ALU ones fast —
        // otherwise the cache/IPC model would be inconsistent with the
        // power model.
        assert!(memrw().main_phase().ipc < 0.5);
        assert!(bitcnts().main_phase().ipc > 1.5);
        assert!(aluadd().main_phase().ipc >= 2.0);
    }
}
