//! Phases: the building blocks of program behaviour.
//!
//! "An analysis of the processor's power consumption while running a
//! particular task shows that power consumption is fairly static most
//! of the time, but exhibits changes as the task experiences different
//! phases of execution" (Section 3.1). A [`Phase`] bundles the activity
//! (event rates → power) and speed (IPC) of one such execution phase.

use ebs_counters::EventRates;
use ebs_units::SimDuration;

/// One execution phase of a program.
#[derive(Clone, Debug)]
pub struct Phase {
    /// A short label for reports ("rsa", "compress", ...).
    pub name: &'static str,
    /// Events generated per cycle while in this phase.
    pub rates: EventRates,
    /// Instructions retired per cycle (warm-cache speed).
    pub ipc: f64,
    /// How long the program stays in this phase before the behaviour
    /// model moves on.
    pub dwell: SimDuration,
}

impl Phase {
    /// Creates a phase.
    ///
    /// # Panics
    ///
    /// Panics if `ipc` is not positive and finite.
    pub fn new(name: &'static str, rates: EventRates, ipc: f64, dwell: SimDuration) -> Self {
        assert!(
            ipc.is_finite() && ipc > 0.0,
            "IPC must be positive, got {ipc}"
        );
        Phase {
            name,
            rates,
            ipc,
            dwell,
        }
    }
}

/// How a program moves between its phases.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Behavior {
    /// Stay in phase 0 forever (bitcnts, memrw, aluadd, pushpop).
    Steady,
    /// Rotate through the phases in order, each for its dwell time
    /// (the openssl benchmark running one algorithm after another).
    Cyclic,
    /// Phase 0 dominates; at the start of a timeslice, with the given
    /// probability, spend that one slice in a randomly chosen other
    /// phase (bzip2's rare I/O stalls, grep's buffer refills).
    Spiky {
        /// Per-timeslice probability of a spike.
        spike_prob: f64,
    },
}

/// Blocking behaviour of interactive programs (bash, sshd): the paper's
/// variable-period exponential average exists precisely because "a task
/// may block any time".
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockProfile {
    /// Probability of blocking at the end of a timeslice.
    pub prob_per_slice: f64,
    /// Mean sleep duration; actual sleeps vary ±50 % around this.
    pub mean_sleep: SimDuration,
}

impl BlockProfile {
    /// Creates a blocking profile.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or the sleep is
    /// zero.
    pub fn new(prob_per_slice: f64, mean_sleep: SimDuration) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob_per_slice),
            "probability {prob_per_slice} outside [0, 1]"
        );
        assert!(!mean_sleep.is_zero(), "mean sleep must be positive");
        BlockProfile {
            prob_per_slice,
            mean_sleep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_counters::EventRates;

    #[test]
    fn phase_construction() {
        let p = Phase::new(
            "main",
            EventRates::builder().uops_retired(2.0).build(),
            1.8,
            SimDuration::from_secs(10),
        );
        assert_eq!(p.name, "main");
        assert_eq!(p.ipc, 1.8);
    }

    #[test]
    #[should_panic(expected = "IPC must be positive")]
    fn zero_ipc_rejected() {
        let _ = Phase::new(
            "bad",
            EventRates::builder().build(),
            0.0,
            SimDuration::from_secs(1),
        );
    }

    #[test]
    fn block_profile_validation() {
        let b = BlockProfile::new(0.3, SimDuration::from_millis(50));
        assert_eq!(b.prob_per_slice, 0.3);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_rejected() {
        let _ = BlockProfile::new(1.5, SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sleep_rejected() {
        let _ = BlockProfile::new(0.5, SimDuration::ZERO);
    }
}
