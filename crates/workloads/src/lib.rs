//! Synthetic workload programs reproducing the paper's test
//! applications.
//!
//! The evaluation (Section 6, Table 2) uses six CPU-bound programs with
//! distinct power levels — bitcnts (61 W), memrw (38 W), aluadd (50 W),
//! pushpop (47 W), openssl (42–57 W, phase-varying), bzip2 (48 W) — and
//! Table 1 additionally characterises bash, grep, and sshd. Since the
//! real binaries (and the Pentium 4 they ran on) are not available,
//! each program is modelled as a sequence of *phases*, each with an
//! event-rate vector chosen so the ground-truth energy model lands at
//! the paper's measured power, plus phase-change statistics that
//! reproduce the successive-timeslice power variation of Table 1.
//!
//! # Examples
//!
//! ```
//! use ebs_workloads::{catalog, ProgramState};
//!
//! let bitcnts = catalog::bitcnts();
//! let mut state = ProgramState::new(bitcnts, 42);
//! state.begin_slice();
//! // One 100 ms timeslice at 2.2 GHz and the phase's IPC.
//! let cycles = 220_000_000;
//! let instructions = (cycles as f64 * state.ipc()) as u64;
//! assert!(!state.add_work(instructions)); // Plenty of work left.
//! ```

mod arrivals;
mod mix;
mod open;
mod phase;
mod program;

pub mod catalog;

pub use arrivals::{Arrival, ArrivalProcess, ARRIVAL_SEED_SALT};
pub use mix::{
    fig8_scenario, fig8_scenarios, mix_size, section61_mix, table1_programs, Mix, MixEntry,
};
pub use open::{LoadCurve, OpenWorkload};
pub use phase::{Behavior, BlockProfile, Phase};
pub use program::{Program, ProgramState};
