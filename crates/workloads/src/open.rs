//! Open workloads: task *arrivals* instead of a fixed task population.
//!
//! The paper's evaluation is closed — 18 tasks start together and run
//! for the whole experiment. Production traffic is open: requests
//! arrive over time, do a bounded amount of work, and leave. This
//! module describes such traffic: a Poisson arrival process whose rate
//! follows a [`LoadCurve`] (diurnal sine, step, burst, or constant),
//! drawing each arriving task from a program palette with a service
//! demand (total instructions) sampled from a bounded range.
//!
//! The simulation engine turns the description into arrivals by
//! thinning a homogeneous Poisson process at the curve's peak rate —
//! exact for time-varying rates and deterministic per seed.

use crate::arrivals::Arrival;
use crate::program::Program;
use ebs_units::{Instructions, SimDuration, SimTime};

/// How the arrival rate varies over simulated time, as a factor
/// applied to the base rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadCurve {
    /// Rate factor 1 throughout.
    Constant,
    /// A day/night sine: the factor starts at `floor` (trough at
    /// t = 0), peaks at 1 mid-period, and returns to `floor`.
    Diurnal {
        /// Length of one full day/night cycle.
        period: SimDuration,
        /// Trough factor in `[0, 1]`.
        floor: f64,
    },
    /// A one-time level change at `at`.
    Step {
        /// When the rate switches.
        at: SimDuration,
        /// Factor before the switch.
        before: f64,
        /// Factor after the switch.
        after: f64,
    },
    /// Periodic traffic spikes: the first `duty` fraction of every
    /// period runs at factor `high`, the rest at 1.
    Burst {
        /// Length of one burst cycle.
        period: SimDuration,
        /// Fraction of the period spent bursting, in `(0, 1)`.
        duty: f64,
        /// Rate factor during the burst (≥ 1).
        high: f64,
    },
}

impl LoadCurve {
    /// A short name for tables and CSV rows.
    pub const fn name(&self) -> &'static str {
        match self {
            LoadCurve::Constant => "constant",
            LoadCurve::Diurnal { .. } => "diurnal",
            LoadCurve::Step { .. } => "step",
            LoadCurve::Burst { .. } => "burst",
        }
    }

    /// The rate factor at instant `t`.
    pub fn factor_at(&self, t: SimTime) -> f64 {
        match *self {
            LoadCurve::Constant => 1.0,
            LoadCurve::Diurnal { period, floor } => {
                let x = t.as_secs_f64() / period.as_secs_f64();
                floor + (1.0 - floor) * 0.5 * (1.0 - (2.0 * core::f64::consts::PI * x).cos())
            }
            LoadCurve::Step { at, before, after } => {
                if t.as_micros() < at.as_micros() {
                    before
                } else {
                    after
                }
            }
            LoadCurve::Burst { period, duty, high } => {
                let phase = (t.as_micros() % period.as_micros()) as f64 / period.as_micros() as f64;
                if phase < duty {
                    high
                } else {
                    1.0
                }
            }
        }
    }

    /// The largest factor the curve ever reaches (the thinning
    /// envelope).
    pub fn peak_factor(&self) -> f64 {
        match *self {
            LoadCurve::Constant => 1.0,
            LoadCurve::Diurnal { .. } => 1.0,
            LoadCurve::Step { before, after, .. } => before.max(after),
            LoadCurve::Burst { high, .. } => high.max(1.0),
        }
    }

    /// The label of the curve phase in effect at `t` (latency
    /// percentiles are reported per phase).
    pub fn phase_at(&self, t: SimTime) -> &'static str {
        match *self {
            LoadCurve::Constant => "steady",
            LoadCurve::Diurnal { floor, .. } => {
                let mid = (1.0 + floor) / 2.0;
                if self.factor_at(t) >= mid {
                    "peak"
                } else {
                    "trough"
                }
            }
            LoadCurve::Step { at, .. } => {
                if t.as_micros() < at.as_micros() {
                    "before"
                } else {
                    "after"
                }
            }
            LoadCurve::Burst { period, duty, .. } => {
                let phase = (t.as_micros() % period.as_micros()) as f64 / period.as_micros() as f64;
                if phase < duty {
                    "burst"
                } else {
                    "base"
                }
            }
        }
    }

    /// Every phase label the curve can produce, in canonical order.
    pub const fn phases(&self) -> &'static [&'static str] {
        match self {
            LoadCurve::Constant => &["steady"],
            LoadCurve::Diurnal { .. } => &["trough", "peak"],
            LoadCurve::Step { .. } => &["before", "after"],
            LoadCurve::Burst { .. } => &["base", "burst"],
        }
    }

    /// Whether the curve's parameters are usable (positive periods,
    /// factors in range).
    pub fn is_valid(&self) -> bool {
        match *self {
            LoadCurve::Constant => true,
            LoadCurve::Diurnal { period, floor } => {
                !period.is_zero() && (0.0..=1.0).contains(&floor)
            }
            LoadCurve::Step { before, after, .. } => {
                before.is_finite()
                    && after.is_finite()
                    && before >= 0.0
                    && after >= 0.0
                    && before.max(after) > 0.0
            }
            LoadCurve::Burst { period, duty, high } => {
                !period.is_zero() && duty > 0.0 && duty < 1.0 && high.is_finite() && high >= 1.0
            }
        }
    }
}

/// An open workload: Poisson arrivals of bounded-service tasks.
#[derive(Clone, Debug)]
pub struct OpenWorkload {
    /// The palette of programs arrivals are drawn from, uniformly
    /// (repeat an entry to weight it).
    pub programs: Vec<Program>,
    /// Mean arrivals per simulated second at rate factor 1.
    pub base_rate_hz: f64,
    /// The time-varying rate factor.
    pub curve: LoadCurve,
    /// Minimum service demand of one arriving task (instructions).
    pub min_work: Instructions,
    /// Maximum service demand of one arriving task (instructions).
    pub max_work: Instructions,
}

impl OpenWorkload {
    /// Creates an open workload with a constant curve and a default
    /// service-demand range of 0.6–1.8 billion instructions (a few
    /// hundred milliseconds of solo execution on the paper's 2.2 GHz
    /// part).
    ///
    /// # Panics
    ///
    /// Panics if the palette is empty or the rate is not finite and
    /// non-negative.
    pub fn new(programs: Vec<Program>, base_rate_hz: f64) -> Self {
        assert!(!programs.is_empty(), "open workload needs programs");
        assert!(
            base_rate_hz.is_finite() && base_rate_hz >= 0.0,
            "arrival rate {base_rate_hz} must be finite and non-negative"
        );
        OpenWorkload {
            programs,
            base_rate_hz,
            curve: LoadCurve::Constant,
            min_work: 600_000_000,
            max_work: 1_800_000_000,
        }
    }

    /// Sets the load curve.
    ///
    /// # Panics
    ///
    /// Panics if the curve's parameters are out of range.
    pub fn curve(mut self, curve: LoadCurve) -> Self {
        assert!(curve.is_valid(), "invalid load curve {curve:?}");
        self.curve = curve;
        self
    }

    /// Bounds the service demand of arriving tasks.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or starts at zero.
    pub fn service_work(mut self, min: Instructions, max: Instructions) -> Self {
        assert!(min > 0 && min <= max, "bad service range {min}..={max}");
        self.min_work = min;
        self.max_work = max;
        self
    }

    /// The instantaneous arrival rate at `t`, in arrivals per second.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.base_rate_hz * self.curve.factor_at(t)
    }

    /// The peak arrival rate over all time (the thinning envelope).
    pub fn peak_rate(&self) -> f64 {
        self.base_rate_hz * self.curve.peak_factor()
    }

    /// Resolves an accepted arrival into the program to spawn: the
    /// palette entry it drew, bounded to its sampled service demand.
    /// Every router — the engine's own arrival tick, the parallel
    /// synchronizer, the fleet dispatcher — spawns exactly this.
    pub fn materialize(&self, arrival: &Arrival) -> Program {
        self.programs[arrival.program_index]
            .clone()
            .with_total_work(arrival.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_curve_is_flat() {
        let c = LoadCurve::Constant;
        for t in [0, 1, 100, 10_000] {
            assert_eq!(c.factor_at(secs(t)), 1.0);
            assert_eq!(c.phase_at(secs(t)), "steady");
        }
        assert_eq!(c.peak_factor(), 1.0);
        assert_eq!(c.phases(), &["steady"]);
    }

    #[test]
    fn diurnal_troughs_at_zero_and_peaks_mid_period() {
        let c = LoadCurve::Diurnal {
            period: SimDuration::from_secs(100),
            floor: 0.2,
        };
        assert!((c.factor_at(secs(0)) - 0.2).abs() < 1e-12);
        assert!((c.factor_at(secs(50)) - 1.0).abs() < 1e-12);
        assert!((c.factor_at(secs(100)) - 0.2).abs() < 1e-9);
        assert_eq!(c.phase_at(secs(0)), "trough");
        assert_eq!(c.phase_at(secs(50)), "peak");
        // The factor never leaves [floor, 1].
        for t in 0..200 {
            let f = c.factor_at(secs(t));
            assert!((0.2..=1.0 + 1e-12).contains(&f), "t={t}: {f}");
        }
        assert_eq!(c.peak_factor(), 1.0);
    }

    #[test]
    fn step_switches_once() {
        let c = LoadCurve::Step {
            at: SimDuration::from_secs(30),
            before: 0.4,
            after: 1.0,
        };
        assert_eq!(c.factor_at(secs(29)), 0.4);
        assert_eq!(c.factor_at(secs(30)), 1.0);
        assert_eq!(c.phase_at(secs(10)), "before");
        assert_eq!(c.phase_at(secs(31)), "after");
        assert_eq!(c.peak_factor(), 1.0);
    }

    #[test]
    fn burst_repeats_per_period() {
        let c = LoadCurve::Burst {
            period: SimDuration::from_secs(10),
            duty: 0.2,
            high: 3.0,
        };
        assert_eq!(c.factor_at(secs(1)), 3.0); // In the first burst.
        assert_eq!(c.factor_at(secs(5)), 1.0);
        assert_eq!(c.factor_at(secs(11)), 3.0); // Second period.
        assert_eq!(c.phase_at(secs(1)), "burst");
        assert_eq!(c.phase_at(secs(5)), "base");
        assert_eq!(c.peak_factor(), 3.0);
    }

    #[test]
    fn curve_validity() {
        assert!(LoadCurve::Constant.is_valid());
        assert!(!LoadCurve::Diurnal {
            period: SimDuration::ZERO,
            floor: 0.5
        }
        .is_valid());
        assert!(!LoadCurve::Diurnal {
            period: SimDuration::from_secs(1),
            floor: 1.5
        }
        .is_valid());
        assert!(!LoadCurve::Burst {
            period: SimDuration::from_secs(1),
            duty: 0.0,
            high: 2.0
        }
        .is_valid());
        assert!(!LoadCurve::Step {
            at: SimDuration::from_secs(1),
            before: 0.0,
            after: 0.0
        }
        .is_valid());
        // Non-finite factors would turn the thinning ratio into NaN
        // mid-simulation; reject them up front.
        assert!(!LoadCurve::Burst {
            period: SimDuration::from_secs(1),
            duty: 0.5,
            high: f64::INFINITY
        }
        .is_valid());
        assert!(!LoadCurve::Step {
            at: SimDuration::from_secs(1),
            before: f64::NAN,
            after: 1.0
        }
        .is_valid());
    }

    #[test]
    fn workload_rates_follow_the_curve() {
        let w = OpenWorkload::new(vec![catalog::aluadd()], 10.0).curve(LoadCurve::Step {
            at: SimDuration::from_secs(5),
            before: 0.5,
            after: 2.0,
        });
        assert_eq!(w.rate_at(secs(0)), 5.0);
        assert_eq!(w.rate_at(secs(5)), 20.0);
        assert_eq!(w.peak_rate(), 20.0);
    }

    #[test]
    fn service_bounds_validated() {
        let w = OpenWorkload::new(vec![catalog::memrw()], 1.0).service_work(100, 200);
        assert_eq!((w.min_work, w.max_work), (100, 200));
    }

    #[test]
    #[should_panic(expected = "needs programs")]
    fn empty_palette_rejected() {
        let _ = OpenWorkload::new(vec![], 1.0);
    }

    #[test]
    #[should_panic(expected = "bad service range")]
    fn inverted_service_range_rejected() {
        let _ = OpenWorkload::new(vec![catalog::memrw()], 1.0).service_work(200, 100);
    }

    #[test]
    #[should_panic(expected = "invalid load curve")]
    fn invalid_curve_rejected() {
        let _ = OpenWorkload::new(vec![catalog::memrw()], 1.0).curve(LoadCurve::Burst {
            period: SimDuration::ZERO,
            duty: 0.5,
            high: 2.0,
        });
    }
}
