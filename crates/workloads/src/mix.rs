//! Workload mixes: the task populations of the paper's experiments.

use crate::catalog;
use crate::program::Program;

/// A program with an instance count.
#[derive(Clone, Debug)]
pub struct MixEntry {
    /// The program to run.
    pub program: Program,
    /// How many instances to start.
    pub count: usize,
}

/// A full workload: several programs with counts.
pub type Mix = Vec<MixEntry>;

/// Total number of tasks in a mix.
pub fn mix_size(mix: &Mix) -> usize {
    mix.iter().map(|e| e.count).sum()
}

/// The Section 6.1 mixed workload: the six Table 2 programs. The paper
/// starts each program three times (18 tasks on 8 CPUs) with SMT off,
/// or six times (36 tasks on 16 logical CPUs) with SMT on.
pub fn section61_mix() -> Vec<Program> {
    vec![
        catalog::bitcnts(),
        catalog::memrw(),
        catalog::aluadd(),
        catalog::pushpop(),
        catalog::openssl(),
        catalog::bzip2(),
    ]
}

/// The Table 1 characterisation programs.
pub fn table1_programs() -> Vec<Program> {
    vec![
        catalog::bash(),
        catalog::bzip2(),
        catalog::grep(),
        catalog::sshd(),
        catalog::openssl(),
    ]
}

/// One Fig. 8 scenario: `n_memrw` instances of memrw (low power),
/// `n_pushpop` of pushpop (medium), `n_bitcnts` of bitcnts (high).
pub fn fig8_scenario(n_memrw: usize, n_pushpop: usize, n_bitcnts: usize) -> Mix {
    vec![
        MixEntry {
            program: catalog::memrw(),
            count: n_memrw,
        },
        MixEntry {
            program: catalog::pushpop(),
            count: n_pushpop,
        },
        MixEntry {
            program: catalog::bitcnts(),
            count: n_bitcnts,
        },
    ]
}

/// All ten Fig. 8 scenarios, from fully heterogeneous 9/0/9 to fully
/// homogeneous 0/18/0, with their paper labels.
pub fn fig8_scenarios() -> Vec<(String, Mix)> {
    (0..10)
        .map(|i| {
            let outer = 9 - i;
            let inner = 2 * i;
            (
                format!("{outer}/{inner}/{outer}"),
                fig8_scenario(outer, inner, outer),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section61_has_six_distinct_programs() {
        let mix = section61_mix();
        assert_eq!(mix.len(), 6);
        let names: Vec<_> = mix.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["bitcnts", "memrw", "aluadd", "pushpop", "openssl", "bzip2"]
        );
    }

    #[test]
    fn fig8_scenarios_match_paper_labels() {
        let scenarios = fig8_scenarios();
        assert_eq!(scenarios.len(), 10);
        assert_eq!(scenarios[0].0, "9/0/9");
        assert_eq!(scenarios[4].0, "5/8/5");
        assert_eq!(scenarios[9].0, "0/18/0");
        // Every scenario totals 18 tasks.
        for (label, mix) in &scenarios {
            assert_eq!(mix_size(mix), 18, "scenario {label}");
        }
    }

    #[test]
    fn fig8_scenario_counts() {
        let mix = fig8_scenario(8, 2, 8);
        assert_eq!(mix[0].count, 8);
        assert_eq!(mix[0].program.name, "memrw");
        assert_eq!(mix[1].count, 2);
        assert_eq!(mix[1].program.name, "pushpop");
        assert_eq!(mix[2].count, 8);
        assert_eq!(mix[2].program.name, "bitcnts");
    }

    #[test]
    fn table1_covers_paper_rows() {
        let names: Vec<_> = table1_programs().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["bash", "bzip2", "grep", "sshd", "openssl"]);
    }
}
