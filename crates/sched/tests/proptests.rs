//! Property-based tests: scheduler invariants under arbitrary
//! operation sequences.

use ebs_sched::{LoadBalancer, LoadBalancerConfig, MigrationReason, System, TaskConfig, TaskState};
use ebs_topology::{CpuId, Topology};
use ebs_units::{SimDuration, SimTime, Watts};
use proptest::prelude::*;

/// An abstract scheduler operation for random-sequence testing.
#[derive(Clone, Debug)]
enum Op {
    Spawn(usize),
    Tick(usize, u64),
    Switch(usize),
    Block(usize),
    WakeOldest,
    MigrateQueued(usize, usize),
    MigrateRunning(usize, usize),
    Exit(usize),
    /// Fold a power sample into the running task's profile (the
    /// runqueue-power-relevant mutation the aggregate tree must track).
    ProfileUpdate(usize, u64),
}

fn op_strategy(n_cpus: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..n_cpus).prop_map(Op::Spawn),
        ((0..n_cpus), 1u64..150).prop_map(|(c, ms)| Op::Tick(c, ms)),
        (0..n_cpus).prop_map(Op::Switch),
        (0..n_cpus).prop_map(Op::Block),
        Just(Op::WakeOldest),
        ((0..n_cpus), (0..n_cpus)).prop_map(|(a, b)| Op::MigrateQueued(a, b)),
        ((0..n_cpus), (0..n_cpus)).prop_map(|(a, b)| Op::MigrateRunning(a, b)),
        (0..n_cpus).prop_map(Op::Exit),
        ((0..n_cpus), 10u64..90).prop_map(|(c, w)| Op::ProfileUpdate(c, w)),
    ]
}

/// Applies one op to the system, mirroring how engines drive it.
fn apply_op(sys: &mut System, blocked: &mut Vec<ebs_sched::TaskId>, op: Op) {
    match op {
        Op::Spawn(c) => {
            sys.spawn(TaskConfig::default(), CpuId(c));
        }
        Op::Tick(c, ms) => {
            sys.tick(CpuId(c), SimDuration::from_millis(ms));
        }
        Op::Switch(c) => {
            sys.context_switch(CpuId(c));
        }
        Op::Block(c) => {
            if let Some(id) = sys.block_current(CpuId(c)) {
                blocked.push(id);
            }
        }
        Op::WakeOldest => {
            if !blocked.is_empty() {
                let id = blocked.remove(0);
                sys.wake(id, None);
            }
        }
        Op::MigrateQueued(a, b) => {
            let candidate = sys.rq(CpuId(a)).iter_migration_candidates().next();
            if let Some(id) = candidate {
                let _ = sys.migrate_queued(id, CpuId(b), MigrationReason::LoadBalance);
            }
        }
        Op::MigrateRunning(a, b) => {
            let _ = sys.migrate_running(CpuId(a), CpuId(b), MigrationReason::HotTask);
        }
        Op::Exit(c) => {
            sys.exit_current(CpuId(c));
        }
        Op::ProfileUpdate(c, w) => {
            if let Some(id) = sys.current(CpuId(c)) {
                sys.update_profile(id, Watts(w as f64), SimDuration::from_millis(100));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of scheduler operations preserves the system
    /// invariants (each live task on exactly one queue, states
    /// consistent, no task lost or duplicated).
    #[test]
    fn invariants_hold_under_arbitrary_ops(
        ops in prop::collection::vec(op_strategy(8), 1..120),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        let mut blocked: Vec<ebs_sched::TaskId> = Vec::new();
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            sys.set_now(SimTime::from_millis(clock));
            apply_op(&mut sys, &mut blocked, op);
            sys.validate();
        }
        // Final consistency: every task is in exactly the state the
        // bookkeeping says.
        let mut live = 0;
        for i in 0..sys.n_tasks() {
            match sys.task(ebs_sched::TaskId(i as u64)).state() {
                TaskState::Runnable | TaskState::Running => live += 1,
                TaskState::Blocked => prop_assert!(
                    blocked.contains(&ebs_sched::TaskId(i as u64))
                ),
                TaskState::Exited => {}
            }
        }
        let queued: usize = (0..8).map(|c| sys.nr_running(CpuId(c))).sum();
        prop_assert_eq!(live, queued);
    }

    /// From any initial distribution, repeated balancing converges to
    /// queue lengths within one task of each other, and then stays
    /// quiescent.
    #[test]
    fn load_balancer_converges_and_stays_quiet(
        loads in prop::collection::vec(0usize..8, 8),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        for (c, &n) in loads.iter().enumerate() {
            for _ in 0..n {
                sys.spawn(TaskConfig::default(), CpuId(c));
            }
        }
        let mut lb = LoadBalancer::new(&sys, LoadBalancerConfig::default());
        for step in 0..60u64 {
            sys.set_now(SimTime::from_millis(step * 64));
            for c in 0..8 {
                lb.run(CpuId(c), &mut sys);
            }
        }
        let final_loads: Vec<usize> = (0..8).map(|c| sys.nr_running(CpuId(c))).collect();
        let max = *final_loads.iter().max().unwrap();
        let min = *final_loads.iter().min().unwrap();
        prop_assert!(max - min <= 1, "{final_loads:?}");
        // Once balanced, further passes migrate nothing.
        let before = sys.stats().migrations();
        for step in 60..80u64 {
            sys.set_now(SimTime::from_millis(step * 64));
            for c in 0..8 {
                lb.run(CpuId(c), &mut sys);
            }
        }
        prop_assert_eq!(sys.stats().migrations(), before);
        sys.validate();
    }

    /// After any random sequence of enqueue/dequeue/migrate/
    /// profile-change operations, every domain group's incremental
    /// sums equal a from-scratch recomputation — the aggregate-tree
    /// mirror of the queued-profile cache's `validate()` guarantee.
    /// Runs on a CMP shape so core-, package-, and node-level units
    /// are all exercised.
    #[test]
    fn aggregates_match_recompute_after_random_ops(
        ops in prop::collection::vec(op_strategy(16), 1..160),
    ) {
        let topo = Topology::build_cmp(2, 2, 2, 2); // 16 CPUs, 4 levels.
        let mut sys = System::new(topo);
        let mut blocked: Vec<ebs_sched::TaskId> = Vec::new();
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            sys.set_now(SimTime::from_millis(clock));
            apply_op(&mut sys, &mut blocked, op);
        }
        // `validate()` checks every unit cell against a fresh
        // recomputation (counts exactly, profile sums within float
        // tolerance)...
        sys.validate();
        // ...and the group-level reads the balancers use must agree
        // with explicit scans of the group members, for every group of
        // every CPU's domain stack.
        for cpu in sys.topology().cpu_ids() {
            for domain in sys.topology().domains(cpu) {
                for group in domain.groups() {
                    let running: usize =
                        group.cpus().iter().map(|&c| sys.nr_running(c)).sum();
                    let queued: usize =
                        group.cpus().iter().map(|&c| sys.rq(c).nr_queued()).sum();
                    prop_assert_eq!(sys.group_nr_running(group), running);
                    prop_assert_eq!(sys.group_nr_queued(group), queued);
                    let profile: f64 = group
                        .cpus()
                        .iter()
                        .flat_map(|&c| sys.rq(c).iter_all())
                        .map(|id| sys.task(id).profile().0)
                        .sum();
                    let cached = sys.group_profile_sum(group);
                    prop_assert!(
                        (cached - profile).abs() < 1e-6 * profile.abs().max(1.0),
                        "group profile sum drifted: {} vs {}", cached, profile
                    );
                }
            }
        }
    }

    /// Profile updates keep the profile within the observed sample
    /// range — no overshoot for any update sequence.
    #[test]
    fn profiles_are_convex_combinations(
        updates in prop::collection::vec((5.0f64..100.0, 1u64..300), 1..50),
    ) {
        let mut sys = System::new(Topology::xseries445(false));
        let id = sys.spawn(
            TaskConfig { initial_profile: Watts(30.0), ..TaskConfig::default() },
            CpuId(0),
        );
        let mut lo = 30.0f64;
        let mut hi = 30.0f64;
        for (watts, ms) in updates {
            lo = lo.min(watts);
            hi = hi.max(watts);
            sys.update_profile(id, Watts(watts), SimDuration::from_millis(ms));
            let p = sys.task(id).profile().0;
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
            sys.validate();
        }
    }
}
