//! Tasks: the schedulable entities.
//!
//! Besides the usual scheduler bookkeeping (state, priority, timeslice),
//! a task carries the fields the paper adds to Linux's `task_struct`:
//! the *energy profile* — a variable-period exponential average of the
//! power the task drew while executing (Section 3.3) — and the identity
//! of the binary it was started from, which keys the initial-placement
//! table (Section 4.6).

use crate::system::MigrationReason;
use ebs_store::Snapshot as _;
use ebs_thermal::PowerAverage;
use ebs_topology::CpuId;
use ebs_units::{SimDuration, SimTime, Watts};

/// Identifies a task for the lifetime of a [`crate::System`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(pub u64);

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Identifies the binary a task was started from — the simulation's
/// analogue of the inode number the paper hashes on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct BinaryId(pub u64);

/// Task lifecycle states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskState {
    /// On a runqueue, waiting for the CPU.
    Runnable,
    /// Currently executing on its CPU.
    Running,
    /// Sleeping; not on any runqueue.
    Blocked,
    /// Finished; will never run again.
    Exited,
}

/// The default timeslice for nice 0, as in Linux 2.6 (100 ms).
pub const DEFAULT_TIMESLICE: SimDuration = SimDuration::from_millis(100);

/// Minimum and maximum timeslices (Linux 2.6: 5 ms and 200 ms).
const MIN_TIMESLICE_MS: i64 = 5;
const MAX_TIMESLICE_MS: i64 = 200;

/// The timeslice granted to a task of the given nice value, following
/// the Linux 2.6 linear scale: nice -20 gets 200 ms, nice 0 gets
/// 100 ms, nice 19 gets 5 ms.
pub fn timeslice_for_nice(nice: i32) -> SimDuration {
    let nice = nice.clamp(-20, 19) as i64;
    // Linear interpolation through (−20, 200 ms) and (19, 5 ms).
    let ms = MAX_TIMESLICE_MS + (nice + 20) * (MIN_TIMESLICE_MS - MAX_TIMESLICE_MS) / 39;
    SimDuration::from_millis(ms as u64)
}

/// Parameters for spawning a task.
#[derive(Clone, Copy, Debug)]
pub struct TaskConfig {
    /// Nice value in `[-20, 19]`; determines priority and timeslice.
    pub nice: i32,
    /// The binary the task executes, for the placement table.
    pub binary: BinaryId,
    /// Initial energy-profile estimate. The paper seeds this from the
    /// per-binary hash table, falling back to a default for binaries
    /// never seen before.
    pub initial_profile: Watts,
    /// Standard weight of the profile's exponential average for one
    /// standard timeslice. The paper leaves the constant unspecified;
    /// 0.25 makes a phase change dominate the profile after ~5 slices,
    /// slow enough to ride out momentary spikes (Section 3.3).
    pub profile_weight: f64,
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig {
            nice: 0,
            binary: BinaryId(0),
            initial_profile: Watts(30.0),
            profile_weight: 0.25,
        }
    }
}

/// A schedulable task.
#[derive(Clone, Debug)]
pub struct Task {
    id: TaskId,
    config: TaskConfig,
    state: TaskState,
    /// The CPU whose runqueue the task is (or was last) associated with.
    cpu: CpuId,
    /// Remaining time of the current timeslice.
    timeslice: SimDuration,
    /// Energy profile: expected power while executing (Section 3.3).
    profile: PowerAverage,
    /// When the task last started executing on its CPU.
    last_scheduled: SimTime,
    /// Most recent migration: time and whether it crossed a node
    /// boundary. Consumed by the cache-warmth model.
    last_migration: Option<(SimTime, bool)>,
    /// Why the most recent migration happened (for event tracing).
    last_migration_reason: Option<MigrationReason>,
    /// Total number of migrations this task experienced.
    migrations: u64,
    /// Total CPU time consumed.
    cpu_time: SimDuration,
}

impl Task {
    /// Creates a task on `cpu` in the `Runnable` state.
    pub(crate) fn new(id: TaskId, config: TaskConfig, cpu: CpuId) -> Self {
        Task {
            id,
            state: TaskState::Runnable,
            cpu,
            timeslice: timeslice_for_nice(config.nice),
            profile: PowerAverage::new(
                config.initial_profile,
                DEFAULT_TIMESLICE,
                config.profile_weight,
            ),
            last_scheduled: SimTime::ZERO,
            last_migration: None,
            last_migration_reason: None,
            migrations: 0,
            cpu_time: SimDuration::ZERO,
            config,
        }
    }

    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The spawn-time configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.config
    }

    /// The binary this task runs.
    pub fn binary(&self) -> BinaryId {
        self.config.binary
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: TaskState) {
        self.state = state;
    }

    /// The CPU the task is associated with.
    pub fn cpu(&self) -> CpuId {
        self.cpu
    }

    pub(crate) fn set_cpu(&mut self, cpu: CpuId) {
        self.cpu = cpu;
    }

    /// Static priority array index in `[0, 40)` (nice + 20).
    pub fn prio_index(&self) -> usize {
        (self.config.nice.clamp(-20, 19) + 20) as usize
    }

    /// Remaining timeslice.
    pub fn timeslice(&self) -> SimDuration {
        self.timeslice
    }

    /// Consumes up to `dt` of the timeslice; returns `true` if the
    /// slice is now exhausted.
    pub(crate) fn consume_timeslice(&mut self, dt: SimDuration) -> bool {
        self.timeslice = if dt >= self.timeslice {
            SimDuration::ZERO
        } else {
            self.timeslice - dt
        };
        self.cpu_time += dt;
        self.timeslice.is_zero()
    }

    /// Grants a fresh timeslice (on expiry).
    pub(crate) fn refresh_timeslice(&mut self) {
        self.timeslice = timeslice_for_nice(self.config.nice);
    }

    /// The current energy profile: the power this task is expected to
    /// draw during its next stretch of execution.
    pub fn profile(&self) -> Watts {
        self.profile.watts()
    }

    /// Folds an observed energy sample into the profile (Eq. 2 with the
    /// variable weight): the task drew `power` on average over `period`
    /// of execution.
    pub fn update_profile(&mut self, power: Watts, period: SimDuration) -> Watts {
        self.profile.update(power, period)
    }

    /// Overwrites the profile, used when seeding from the placement
    /// table.
    pub fn reset_profile(&mut self, power: Watts) {
        self.profile.reset(power);
    }

    /// When the task last started executing.
    pub fn last_scheduled(&self) -> SimTime {
        self.last_scheduled
    }

    pub(crate) fn set_last_scheduled(&mut self, t: SimTime) {
        self.last_scheduled = t;
    }

    /// The most recent migration (time, crossed-node flag), if any.
    pub fn last_migration(&self) -> Option<(SimTime, bool)> {
        self.last_migration
    }

    /// Why the most recent migration happened, if any.
    pub fn last_migration_reason(&self) -> Option<MigrationReason> {
        self.last_migration_reason
    }

    pub(crate) fn record_migration(
        &mut self,
        at: SimTime,
        cross_node: bool,
        reason: MigrationReason,
    ) {
        self.last_migration = Some((at, cross_node));
        self.last_migration_reason = Some(reason);
        self.migrations += 1;
    }

    /// Number of times this task has been migrated.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total CPU time consumed so far.
    pub fn cpu_time(&self) -> SimDuration {
        self.cpu_time
    }
}

fn state_code(state: TaskState) -> u8 {
    match state {
        TaskState::Runnable => 0,
        TaskState::Running => 1,
        TaskState::Blocked => 2,
        TaskState::Exited => 3,
    }
}

fn state_from_code(code: u8) -> Result<TaskState, ebs_store::StoreError> {
    Ok(match code {
        0 => TaskState::Runnable,
        1 => TaskState::Running,
        2 => TaskState::Blocked,
        3 => TaskState::Exited,
        other => {
            return Err(ebs_store::StoreError::Invalid(format!(
                "task state code {other}"
            )))
        }
    })
}

fn reason_code(reason: MigrationReason) -> u8 {
    match reason {
        MigrationReason::LoadBalance => 0,
        MigrationReason::EnergyBalance => 1,
        MigrationReason::HotTask => 2,
        MigrationReason::Exchange => 3,
    }
}

fn reason_from_code(code: u8) -> Result<MigrationReason, ebs_store::StoreError> {
    MigrationReason::ALL
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| ebs_store::StoreError::Invalid(format!("migration reason code {code}")))
}

impl Task {
    /// Rebuilds a task from its snapshot section — the spawn-time
    /// config travels with the mutable state, so restore needs no
    /// other context.
    pub(crate) fn from_snapshot(
        r: &mut ebs_store::StateReader<'_>,
    ) -> Result<Self, ebs_store::StoreError> {
        let id = TaskId(r.u64()?);
        let config = TaskConfig {
            nice: r.i64()? as i32,
            binary: BinaryId(r.u64()?),
            initial_profile: r.watts()?,
            profile_weight: r.f64()?,
        };
        let cpu = CpuId(r.usize()?);
        let mut task = Task::new(id, config, cpu);
        task.state = state_from_code(r.u8()?)?;
        task.timeslice = r.duration()?;
        task.profile.restore(r)?;
        task.last_scheduled = r.time()?;
        task.last_migration = r.opt(|r| Ok((r.time()?, r.bool()?)))?;
        task.last_migration_reason = r.opt(|r| {
            let code = r.u8()?;
            reason_from_code(code)
        })?;
        task.migrations = r.u64()?;
        task.cpu_time = r.duration()?;
        Ok(task)
    }
}

impl ebs_store::Snapshot for Task {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.u64(self.id.0);
        w.i64(i64::from(self.config.nice));
        w.u64(self.config.binary.0);
        w.watts(self.config.initial_profile);
        w.f64(self.config.profile_weight);
        w.usize(self.cpu.0);
        w.u8(state_code(self.state));
        w.duration(self.timeslice);
        self.profile.save(w);
        w.time(self.last_scheduled);
        w.opt(&self.last_migration, |w, &(t, cross)| {
            w.time(t);
            w.bool(cross);
        });
        w.opt(&self.last_migration_reason, |w, &reason| {
            w.u8(reason_code(reason));
        });
        w.u64(self.migrations);
        w.duration(self.cpu_time);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        *self = Task::from_snapshot(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeslice_scale_matches_linux_26() {
        assert_eq!(timeslice_for_nice(0), SimDuration::from_millis(100));
        assert_eq!(timeslice_for_nice(-20), SimDuration::from_millis(200));
        assert_eq!(timeslice_for_nice(19), SimDuration::from_millis(5));
        // Clamped outside the valid range.
        assert_eq!(timeslice_for_nice(-100), SimDuration::from_millis(200));
        assert_eq!(timeslice_for_nice(100), SimDuration::from_millis(5));
    }

    #[test]
    fn timeslice_is_monotone_in_priority() {
        let mut last = timeslice_for_nice(-20);
        for nice in -19..=19 {
            let ts = timeslice_for_nice(nice);
            assert!(ts <= last, "timeslice grew at nice {nice}");
            last = ts;
        }
    }

    fn task() -> Task {
        Task::new(TaskId(1), TaskConfig::default(), CpuId(0))
    }

    #[test]
    fn new_task_is_runnable_with_full_slice() {
        let t = task();
        assert_eq!(t.state(), TaskState::Runnable);
        assert_eq!(t.timeslice(), DEFAULT_TIMESLICE);
        assert_eq!(t.profile(), Watts(30.0));
        assert_eq!(t.migrations(), 0);
        assert_eq!(t.prio_index(), 20);
    }

    #[test]
    fn timeslice_consumption_and_expiry() {
        let mut t = task();
        assert!(!t.consume_timeslice(SimDuration::from_millis(60)));
        assert_eq!(t.timeslice(), SimDuration::from_millis(40));
        assert!(t.consume_timeslice(SimDuration::from_millis(40)));
        assert!(t.timeslice().is_zero());
        // Over-consumption clamps.
        assert!(t.consume_timeslice(SimDuration::from_millis(10)));
        t.refresh_timeslice();
        assert_eq!(t.timeslice(), DEFAULT_TIMESLICE);
        assert_eq!(t.cpu_time(), SimDuration::from_millis(110));
    }

    #[test]
    fn profile_updates_follow_exponential_average() {
        let mut t = task();
        let updated = t.update_profile(Watts(62.0), DEFAULT_TIMESLICE);
        let expected = 0.25 * 62.0 + 0.75 * 30.0;
        assert!((updated.0 - expected).abs() < 1e-12);
        assert_eq!(t.profile(), updated);
        t.reset_profile(Watts(47.0));
        assert_eq!(t.profile(), Watts(47.0));
    }

    #[test]
    fn migration_bookkeeping() {
        let mut t = task();
        assert!(t.last_migration().is_none());
        assert!(t.last_migration_reason().is_none());
        t.record_migration(SimTime::from_secs(3), true, MigrationReason::HotTask);
        assert_eq!(t.last_migration(), Some((SimTime::from_secs(3), true)));
        assert_eq!(t.last_migration_reason(), Some(MigrationReason::HotTask));
        assert_eq!(t.migrations(), 1);
    }

    #[test]
    fn prio_index_spans_array() {
        let mk = |nice| {
            Task::new(
                TaskId(0),
                TaskConfig {
                    nice,
                    ..TaskConfig::default()
                },
                CpuId(0),
            )
        };
        assert_eq!(mk(-20).prio_index(), 0);
        assert_eq!(mk(19).prio_index(), 39);
    }
}
