//! O(1) priority arrays, the core data structure of the Linux 2.6
//! scheduler.
//!
//! An array holds one FIFO queue per priority level plus a bitmap of
//! non-empty levels, so that enqueue, dequeue, and find-highest are all
//! constant time (the bitmap fits in one `u64` for our 40 levels).

use crate::task::TaskId;
use std::collections::VecDeque;

/// Number of priority levels (nice −20..19).
pub const N_PRIOS: usize = 40;

/// Ascending positions of the set bits of a word (descending from the
/// back); the occupancy walk behind the array iterators.
struct BitIndices(u64);

impl Iterator for BitIndices {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let p = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(p)
    }
}

impl DoubleEndedIterator for BitIndices {
    fn next_back(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let p = 63 - self.0.leading_zeros() as usize;
        self.0 &= !(1 << p);
        Some(p)
    }
}

/// An O(1) priority array.
#[derive(Clone, Debug, Default)]
pub struct PrioArray {
    queues: Vec<VecDeque<TaskId>>,
    bitmap: u64,
    len: usize,
}

impl PrioArray {
    /// Creates an empty array.
    pub fn new() -> Self {
        PrioArray {
            queues: (0..N_PRIOS).map(|_| VecDeque::new()).collect(),
            bitmap: 0,
            len: 0,
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no task is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a task at priority `prio`.
    ///
    /// # Panics
    ///
    /// Panics if `prio` is out of range.
    pub fn enqueue(&mut self, prio: usize, task: TaskId) {
        assert!(prio < N_PRIOS, "priority {prio} out of range");
        self.queues[prio].push_back(task);
        self.bitmap |= 1 << prio;
        self.len += 1;
    }

    /// Removes a specific task from priority `prio`; returns whether it
    /// was present.
    ///
    /// # Panics
    ///
    /// Panics if `prio` is out of range.
    pub fn remove(&mut self, prio: usize, task: TaskId) -> bool {
        assert!(prio < N_PRIOS, "priority {prio} out of range");
        let q = &mut self.queues[prio];
        if let Some(pos) = q.iter().position(|&t| t == task) {
            q.remove(pos);
            if q.is_empty() {
                self.bitmap &= !(1 << prio);
            }
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// The highest-priority (lowest index) task, without removing it.
    pub fn peek(&self) -> Option<TaskId> {
        if self.bitmap == 0 {
            return None;
        }
        let prio = self.bitmap.trailing_zeros() as usize;
        self.queues[prio].front().copied()
    }

    /// Removes and returns the highest-priority task.
    pub fn pop(&mut self) -> Option<TaskId> {
        if self.bitmap == 0 {
            return None;
        }
        let prio = self.bitmap.trailing_zeros() as usize;
        let task = self.queues[prio].pop_front();
        if self.queues[prio].is_empty() {
            self.bitmap &= !(1 << prio);
        }
        if task.is_some() {
            self.len -= 1;
        }
        task
    }

    /// Iterates over all queued tasks, highest priority first, FIFO
    /// within a priority. Walks only the bitmap's occupied levels —
    /// the balancers scan every runqueue of a domain, so probing all
    /// 40 levels of (mostly empty) queues dominated large-machine
    /// balancing passes.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        BitIndices(self.bitmap).flat_map(move |p| self.queues[p].iter().copied())
    }

    /// Iterates in *reverse* queue order (lowest priority first, LIFO
    /// within a priority) — the order Linux scans when picking tasks to
    /// migrate away, preferring those that will not run soon anyway.
    pub fn iter_migration_order(&self) -> impl Iterator<Item = TaskId> + '_ {
        BitIndices(self.bitmap)
            .rev()
            .flat_map(move |p| self.queues[p].iter().rev().copied())
    }
}

impl ebs_store::Snapshot for PrioArray {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // Queue contents only; the bitmap and length are derived and
        // recomputed exactly on restore.
        w.seq(&self.queues, |w, q| {
            w.usize(q.len());
            for id in q {
                w.u64(id.0);
            }
        });
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        let queues = r.seq(|r| {
            let n = r.usize()?;
            let mut q = VecDeque::with_capacity(n);
            for _ in 0..n {
                q.push_back(TaskId(r.u64()?));
            }
            Ok(q)
        })?;
        if queues.len() != N_PRIOS {
            return Err(ebs_store::StoreError::Invalid(format!(
                "priority array with {} queues, expected {N_PRIOS}",
                queues.len()
            )));
        }
        self.bitmap = 0;
        self.len = 0;
        for (prio, q) in queues.iter().enumerate() {
            if !q.is_empty() {
                self.bitmap |= 1 << prio;
            }
            self.len += q.len();
        }
        self.queues = queues;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let a = PrioArray::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.peek(), None);
    }

    #[test]
    fn pop_respects_priority_then_fifo() {
        let mut a = PrioArray::new();
        a.enqueue(20, TaskId(1));
        a.enqueue(20, TaskId(2));
        a.enqueue(5, TaskId(3));
        a.enqueue(39, TaskId(4));
        assert_eq!(a.len(), 4);
        assert_eq!(a.pop(), Some(TaskId(3))); // Highest priority first.
        assert_eq!(a.pop(), Some(TaskId(1))); // FIFO within level 20.
        assert_eq!(a.pop(), Some(TaskId(2)));
        assert_eq!(a.pop(), Some(TaskId(4)));
        assert_eq!(a.pop(), None);
        assert!(a.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut a = PrioArray::new();
        a.enqueue(10, TaskId(7));
        assert_eq!(a.peek(), Some(TaskId(7)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.pop(), Some(TaskId(7)));
    }

    #[test]
    fn remove_specific_task() {
        let mut a = PrioArray::new();
        a.enqueue(20, TaskId(1));
        a.enqueue(20, TaskId(2));
        assert!(a.remove(20, TaskId(1)));
        assert!(!a.remove(20, TaskId(1)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.pop(), Some(TaskId(2)));
        // Bitmap cleared once the level drains.
        assert_eq!(a.peek(), None);
    }

    #[test]
    fn iteration_orders() {
        let mut a = PrioArray::new();
        a.enqueue(20, TaskId(1));
        a.enqueue(20, TaskId(2));
        a.enqueue(5, TaskId(3));
        let fwd: Vec<_> = a.iter().collect();
        assert_eq!(fwd, vec![TaskId(3), TaskId(1), TaskId(2)]);
        let mig: Vec<_> = a.iter_migration_order().collect();
        assert_eq!(mig, vec![TaskId(2), TaskId(1), TaskId(3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn enqueue_out_of_range_panics() {
        let mut a = PrioArray::new();
        a.enqueue(40, TaskId(1));
    }

    #[test]
    fn bitmap_tracks_multiple_levels() {
        let mut a = PrioArray::new();
        for prio in [0usize, 13, 39] {
            a.enqueue(prio, TaskId(prio as u64));
        }
        assert_eq!(a.pop(), Some(TaskId(0)));
        assert_eq!(a.pop(), Some(TaskId(13)));
        assert_eq!(a.pop(), Some(TaskId(39)));
    }
}
