//! The incremental aggregate tree over the topology's unit hierarchy.
//!
//! Balancing has to compare load and power across *CPU groups* — and
//! every group of a generated domain hierarchy is exactly one hardware
//! unit (a CPU, core, package, or node; see
//! [`ebs_topology::GroupUnit`]). Instead of re-summing a group's
//! runqueues on every balancing pass (O(span) per pass, O(CPUs²) per
//! due interval at the top level of a big machine), [`System`] keeps
//! per-unit running sums here and updates them on every operation that
//! changes a runqueue — enqueue, dequeue, migration, profile change —
//! in O(depth), i.e. O(1) hops up the fixed core → package → node
//! chain.
//!
//! Three kinds of state per unit:
//!
//! - **`nr_running` / `nr_queued` sums** (integers, exact): the load
//!   metrics. Reading a group's load becomes one table lookup, and the
//!   value is *bitwise identical* to a fresh scan because integer
//!   sums carry no rounding.
//! - **`profile_sum`** (f64): the summed energy profiles of every task
//!   associated with the unit's runqueues (queued and running) — the
//!   machine-wide power picture at a glance. Like the runqueue's
//!   queued-profile cache it snaps back to zero when the unit empties,
//!   so float residue cannot accumulate.
//! - **`gen`** (a change counter): bumped whenever any state a
//!   *runqueue-power* read depends on changes — membership, a
//!   profile, or a context switch whose credit/debit round-trip
//!   perturbed the queued-profile bits (switches preserve the queue's
//!   task set, so most leave the power reads bit-unchanged and skip
//!   the bump).
//!   Consumers that cache derived per-group floats (the energy
//!   balancer's group ratio cache) key their entries on this counter,
//!   so their lazily recomputed sums are always built by the same
//!   member-order scan as the code they replace — bitwise-identical
//!   balancing decisions, at amortised O(1) reads.
//!
//! [`System`]: crate::System

use ebs_topology::{CpuId, GroupUnit, Topology};

/// One unit's running sums.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AggCell {
    /// Sum of `nr_running` over the unit's CPUs.
    pub nr_running: usize,
    /// Sum of `nr_queued` (waiting tasks) over the unit's CPUs.
    pub nr_queued: usize,
    /// Sum of the energy profiles (watts) of every task associated
    /// with the unit's runqueues, including running ones.
    pub profile_sum: f64,
    /// Change counter for runqueue-power-relevant state.
    pub gen: u64,
}

/// Per-unit aggregate tables for one machine, maintained by
/// [`crate::System`].
#[derive(Clone, Debug)]
pub struct LoadAggregates {
    core: Vec<AggCell>,
    package: Vec<AggCell>,
    node: Vec<AggCell>,
    /// `(core, package, node)` table indices per CPU — the O(depth)
    /// update path.
    paths: Vec<(usize, usize, usize)>,
    /// Class-weighted compute capacity per logical CPU (1.0 per CPU on
    /// homogeneous machines). Config-derived, never serialized: a
    /// restored system re-installs the capacities of its topology.
    cap_cpu: Vec<f64>,
    /// Capacity sums per unit, same layout as the cell tables. On
    /// homogeneous machines these equal the unit's CPU count, so
    /// capacity-normalized loads reduce to the legacy per-CPU average.
    cap_core: Vec<f64>,
    cap_package: Vec<f64>,
    cap_node: Vec<f64>,
}

impl LoadAggregates {
    /// Creates zeroed aggregates shaped like `topo`, with unit
    /// capacity (1.0) per CPU.
    pub fn new(topo: &Topology) -> Self {
        let paths: Vec<(usize, usize, usize)> = topo
            .cpu_ids()
            .map(|c| (topo.core_of(c).0, topo.package_of(c).0, topo.node_of(c).0))
            .collect();
        let mut agg = LoadAggregates {
            core: vec![AggCell::default(); topo.n_cores()],
            package: vec![AggCell::default(); topo.n_packages()],
            node: vec![AggCell::default(); topo.n_nodes()],
            paths,
            cap_cpu: Vec::new(),
            cap_core: Vec::new(),
            cap_package: Vec::new(),
            cap_node: Vec::new(),
        };
        agg.set_cpu_capacities(&vec![1.0; topo.n_cpus()]);
        agg
    }

    /// Installs per-CPU class-weighted capacities and rebuilds the
    /// per-unit capacity sums.
    ///
    /// # Panics
    ///
    /// Panics if `caps` is not one finite positive value per CPU.
    pub fn set_cpu_capacities(&mut self, caps: &[f64]) {
        assert_eq!(caps.len(), self.paths.len(), "one capacity per CPU");
        assert!(
            caps.iter().all(|c| c.is_finite() && *c > 0.0),
            "capacities must be finite and positive"
        );
        self.cap_cpu = caps.to_vec();
        self.cap_core = vec![0.0; self.core.len()];
        self.cap_package = vec![0.0; self.package.len()];
        self.cap_node = vec![0.0; self.node.len()];
        for (cpu, &(core, package, node)) in self.paths.iter().enumerate() {
            self.cap_core[core] += caps[cpu];
            self.cap_package[package] += caps[cpu];
            self.cap_node[node] += caps[cpu];
        }
    }

    /// The class-weighted capacity of one unit (a single CPU's own
    /// capacity for `Cpu` units). Equals the unit's CPU count on
    /// homogeneous machines.
    pub fn capacity(&self, unit: GroupUnit) -> f64 {
        match unit {
            GroupUnit::Cpu(c) => self.cap_cpu[c.0],
            GroupUnit::Core(c) => self.cap_core[c.0],
            GroupUnit::Package(p) => self.cap_package[p.0],
            GroupUnit::Node(n) => self.cap_node[n.0],
        }
    }

    /// The capacity of one logical CPU.
    pub fn cpu_capacity(&self, cpu: CpuId) -> f64 {
        self.cap_cpu[cpu.0]
    }

    /// Applies one runqueue change on `cpu` to every ancestor unit:
    /// task-count deltas, a profile delta, and (for membership or
    /// profile changes, `bump_gen`) the generation bump consumers key
    /// their caches on.
    pub(crate) fn apply(
        &mut self,
        cpu: CpuId,
        d_running: isize,
        d_queued: isize,
        d_profile: f64,
        bump_gen: bool,
    ) {
        let (core, package, node) = self.paths[cpu.0];
        for cell in [
            &mut self.core[core],
            &mut self.package[package],
            &mut self.node[node],
        ] {
            cell.nr_running = cell
                .nr_running
                .checked_add_signed(d_running)
                .expect("aggregate nr_running underflow: runqueue hooks out of sync");
            cell.nr_queued = cell
                .nr_queued
                .checked_add_signed(d_queued)
                .expect("aggregate nr_queued underflow: runqueue hooks out of sync");
            cell.profile_sum += d_profile;
            // Empty units snap to exactly zero so float residue cannot
            // accumulate over millions of operations (the same guard
            // the runqueue's queued-profile cache uses).
            if cell.nr_running == 0 {
                cell.profile_sum = 0.0;
            }
            if bump_gen {
                cell.gen += 1;
            }
        }
    }

    /// The aggregate cell of one unit. `Cpu` units have no cell — the
    /// runqueue itself is the source of truth for a single CPU.
    pub fn cell(&self, unit: GroupUnit) -> Option<&AggCell> {
        match unit {
            GroupUnit::Cpu(_) => None,
            GroupUnit::Core(c) => self.core.get(c.0),
            GroupUnit::Package(p) => self.package.get(p.0),
            GroupUnit::Node(n) => self.node.get(n.0),
        }
    }
}

impl ebs_store::Snapshot for AggCell {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.usize(self.nr_running);
        w.usize(self.nr_queued);
        w.f64(self.profile_sum);
        w.u64(self.gen);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        self.nr_running = r.usize()?;
        self.nr_queued = r.usize()?;
        // The profile sums carry floating-point residue from the exact
        // credit/debit history, so they are serialized rather than
        // rebuilt — a fresh scan could differ in the last bit.
        self.profile_sum = r.f64()?;
        self.gen = r.u64()?;
        Ok(())
    }
}

fn restore_cells(
    cells: &mut [AggCell],
    r: &mut ebs_store::StateReader<'_>,
) -> Result<(), ebs_store::StoreError> {
    use ebs_store::Snapshot as _;
    let n = r.usize()?;
    if n != cells.len() {
        return Err(ebs_store::StoreError::Invalid(format!(
            "aggregate table with {n} cells, expected {}",
            cells.len()
        )));
    }
    for cell in cells {
        cell.restore(r)?;
    }
    Ok(())
}

impl ebs_store::Snapshot for LoadAggregates {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        // `paths` is topology-derived config and never serialized.
        for table in [&self.core, &self.package, &self.node] {
            w.seq(table, |w, cell| cell.save(w));
        }
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        restore_cells(&mut self.core, r)?;
        restore_cells(&mut self.package, r)?;
        restore_cells(&mut self.node, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_topology::{CoreId, NodeId, PackageId};

    #[test]
    fn apply_walks_the_unit_path() {
        let topo = Topology::build_cmp(2, 2, 2, 2); // 16 CPUs.
        let mut agg = LoadAggregates::new(&topo);
        // CPU 9 = thread 1 of core 1 (package 0, node 0).
        agg.apply(CpuId(9), 1, 1, 30.0, true);
        let core = agg.cell(GroupUnit::Core(topo.core_of(CpuId(9)))).unwrap();
        assert_eq!((core.nr_running, core.nr_queued), (1, 1));
        assert_eq!(core.profile_sum, 30.0);
        assert_eq!(core.gen, 1);
        let pkg = agg
            .cell(GroupUnit::Package(topo.package_of(CpuId(9))))
            .unwrap();
        assert_eq!(pkg.nr_running, 1);
        let node = agg.cell(GroupUnit::Node(topo.node_of(CpuId(9)))).unwrap();
        assert_eq!(node.nr_running, 1);
        // Unrelated units untouched.
        assert_eq!(agg.cell(GroupUnit::Node(NodeId(1))).unwrap().nr_running, 0);
        assert_eq!(agg.cell(GroupUnit::Package(PackageId(3))).unwrap().gen, 0);
    }

    #[test]
    fn emptying_a_unit_snaps_profile_to_zero() {
        let topo = Topology::build(1, 2, 1);
        let mut agg = LoadAggregates::new(&topo);
        agg.apply(CpuId(0), 1, 1, 0.1 + 0.2, true);
        agg.apply(CpuId(0), -1, -1, -0.3, true);
        let cell = agg.cell(GroupUnit::Core(CoreId(0))).unwrap();
        assert_eq!(cell.profile_sum, 0.0);
        assert_eq!(cell.nr_running, 0);
        assert_eq!(cell.gen, 2);
    }

    #[test]
    fn cpu_units_have_no_cell() {
        let topo = Topology::build(1, 1, 1);
        let agg = LoadAggregates::new(&topo);
        assert!(agg.cell(GroupUnit::Cpu(CpuId(0))).is_none());
    }

    #[test]
    fn capacities_default_to_cpu_counts_and_reweigh() {
        let topo = Topology::build_cmp(2, 2, 2, 1); // 8 CPUs, 4 per node.
        let mut agg = LoadAggregates::new(&topo);
        assert_eq!(agg.capacity(GroupUnit::Cpu(CpuId(0))), 1.0);
        assert_eq!(agg.capacity(GroupUnit::Node(NodeId(0))), 4.0);
        // Halve the capacity of node 1's CPUs (an efficiency cluster).
        let caps: Vec<f64> = (0..8).map(|c| if c >= 4 { 0.5 } else { 1.0 }).collect();
        agg.set_cpu_capacities(&caps);
        assert_eq!(agg.capacity(GroupUnit::Node(NodeId(0))), 4.0);
        assert_eq!(agg.capacity(GroupUnit::Node(NodeId(1))), 2.0);
        assert_eq!(agg.cpu_capacity(CpuId(7)), 0.5);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_capacity_rejected() {
        let topo = Topology::build(1, 2, 1);
        let mut agg = LoadAggregates::new(&topo);
        agg.set_cpu_capacities(&[1.0, 0.0]);
    }

    #[test]
    fn gen_only_bumps_when_asked() {
        let topo = Topology::build(1, 2, 1);
        let mut agg = LoadAggregates::new(&topo);
        agg.apply(CpuId(0), 0, 1, 0.0, false); // A context-switch-style change.
        assert_eq!(agg.cell(GroupUnit::Core(CoreId(0))).unwrap().gen, 0);
        agg.apply(CpuId(0), 1, 0, 5.0, true);
        assert_eq!(agg.cell(GroupUnit::Core(CoreId(0))).unwrap().gen, 1);
    }
}
