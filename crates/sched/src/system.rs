//! The scheduler system: task table, per-CPU runqueues, and migration
//! machinery.
//!
//! [`System`] owns every task and runqueue and enforces the state
//! invariants (a task is either running on exactly one CPU, queued on
//! exactly one runqueue, blocked, or exited). Policies — the baseline
//! load balancer here and the energy-aware policies in `ebs-core` —
//! mutate the system exclusively through its migration and scheduling
//! methods, so the invariants hold no matter what a policy does.

use crate::aggregates::LoadAggregates;
use crate::runqueue::RunQueue;
use crate::task::{Task, TaskConfig, TaskId, TaskState};
use ebs_topology::{CpuGroup, CpuId, GroupUnit, Topology};
use ebs_units::{SimDuration, SimTime, Watts};

/// Why a migration happened, for the statistics the paper reports
/// (migration counts with and without energy balancing, Section 6.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MigrationReason {
    /// The stock load balancer equalising runqueue lengths.
    LoadBalance,
    /// The energy balancing step pulling heat towards a cool CPU.
    EnergyBalance,
    /// Hot task migration away from a nearly-overheating CPU.
    HotTask,
    /// The cool task moved in exchange, to avoid a load imbalance.
    Exchange,
}

impl MigrationReason {
    /// All reasons, for stats arrays.
    pub const ALL: [MigrationReason; 4] = [
        MigrationReason::LoadBalance,
        MigrationReason::EnergyBalance,
        MigrationReason::HotTask,
        MigrationReason::Exchange,
    ];

    fn index(self) -> usize {
        match self {
            MigrationReason::LoadBalance => 0,
            MigrationReason::EnergyBalance => 1,
            MigrationReason::HotTask => 2,
            MigrationReason::Exchange => 3,
        }
    }

    /// A stable human-readable label, used by event traces.
    pub const fn name(self) -> &'static str {
        match self {
            MigrationReason::LoadBalance => "load-balance",
            MigrationReason::EnergyBalance => "energy-balance",
            MigrationReason::HotTask => "hot-task",
            MigrationReason::Exchange => "exchange",
        }
    }
}

/// Aggregate scheduler statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemStats {
    /// Total task migrations, by reason (index via
    /// [`MigrationReason::ALL`] order).
    pub migrations_by_reason: [u64; 4],
    /// Context switches performed.
    pub context_switches: u64,
    /// Tasks spawned.
    pub spawns: u64,
    /// Tasks exited.
    pub exits: u64,
}

impl SystemStats {
    /// Total migrations across all reasons.
    pub fn migrations(&self) -> u64 {
        self.migrations_by_reason.iter().sum()
    }

    /// Migrations attributed to one reason.
    pub fn migrations_for(&self, reason: MigrationReason) -> u64 {
        self.migrations_by_reason[reason.index()]
    }
}

/// Result of a clock tick on one CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TickResult {
    /// The task that was charged the tick, if any.
    pub current: Option<TaskId>,
    /// Whether its timeslice is now exhausted (caller should context
    /// switch and perform end-of-timeslice energy accounting).
    pub timeslice_expired: bool,
}

/// Result of a context switch on one CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchResult {
    /// The task that was descheduled, if any.
    pub prev: Option<TaskId>,
    /// The task now running, if any.
    pub next: Option<TaskId>,
}

/// Errors from migration requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// Source and destination CPU are the same.
    SameCpu,
    /// The task is not in a migratable state (e.g. blocked or exited).
    BadState,
    /// The task is currently running; use [`System::migrate_running`].
    Running,
    /// The CPU has no running task to push.
    NoCurrent,
}

impl core::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MigrateError::SameCpu => write!(f, "source and destination CPU are identical"),
            MigrateError::BadState => write!(f, "task is not runnable"),
            MigrateError::Running => write!(f, "task is running; push it via migrate_running"),
            MigrateError::NoCurrent => write!(f, "CPU has no running task"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// The multiprocessor scheduler state.
#[derive(Clone, Debug)]
pub struct System {
    /// Shared because it is immutable after construction: policies
    /// hold a cheap handle ([`System::topology_shared`]) and walk
    /// domain stacks while mutating the system, instead of cloning a
    /// domain (O(span) per balancing pass) to satisfy the borrow
    /// checker.
    topology: std::sync::Arc<Topology>,
    tasks: Vec<Task>,
    rqs: Vec<RunQueue>,
    /// Per-unit (core/package/node) incremental load and profile sums,
    /// updated in O(depth) by every runqueue-changing operation below.
    agg: LoadAggregates,
    now: SimTime,
    stats: SystemStats,
}

impl System {
    /// Creates a system with empty runqueues.
    pub fn new(topology: Topology) -> Self {
        let rqs = topology.cpu_ids().map(RunQueue::new).collect();
        let agg = LoadAggregates::new(&topology);
        System {
            topology: std::sync::Arc::new(topology),
            tasks: Vec::new(),
            rqs,
            agg,
            now: SimTime::ZERO,
            stats: SystemStats::default(),
        }
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// A shared handle to the (immutable) topology, for callers that
    /// need to iterate domain stacks while mutating the system.
    pub fn topology_shared(&self) -> std::sync::Arc<Topology> {
        std::sync::Arc::clone(&self.topology)
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the scheduler clock. The driving engine calls this once
    /// per simulation step, before any scheduling operations for that
    /// step.
    pub fn set_now(&mut self, now: SimTime) {
        debug_assert!(now >= self.now, "clock moved backwards");
        self.now = now;
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Spawns a task and enqueues it runnable on `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn spawn(&mut self, config: TaskConfig, cpu: CpuId) -> TaskId {
        assert!(cpu.0 < self.rqs.len(), "{cpu} out of range");
        let id = TaskId(self.tasks.len() as u64);
        let task = Task::new(id, config, cpu);
        let prio = task.prio_index();
        let profile = task.profile().0;
        self.tasks.push(task);
        self.rqs[cpu.0].enqueue_active(prio, id);
        self.rqs[cpu.0].credit_profile(profile);
        self.agg.apply(cpu, 1, 1, profile, true);
        self.stats.spawns += 1;
        id
    }

    /// Immutable task accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0 as usize]
    }

    /// Mutable task accessor.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0 as usize]
    }

    /// Number of tasks ever spawned.
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The runqueue of `cpu`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn rq(&self, cpu: CpuId) -> &RunQueue {
        &self.rqs[cpu.0]
    }

    /// The running task on `cpu`.
    pub fn current(&self, cpu: CpuId) -> Option<TaskId> {
        self.rqs[cpu.0].current()
    }

    /// `nr_running` of `cpu` (queued plus running).
    pub fn nr_running(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].nr_running()
    }

    /// Time until the running task of `cpu` exhausts its timeslice if
    /// it keeps executing, i.e. its remaining slice. `None` for an
    /// idle CPU. The variable-stride engine uses this to bound a step
    /// so that expiries land exactly on step boundaries.
    pub fn time_to_timeslice_expiry(&self, cpu: CpuId) -> Option<SimDuration> {
        self.rqs[cpu.0]
            .current()
            .map(|id| self.tasks[id.0 as usize].timeslice())
    }

    /// Charges `dt` of CPU time to the running task of `cpu`.
    pub fn tick(&mut self, cpu: CpuId, dt: SimDuration) -> TickResult {
        match self.rqs[cpu.0].current() {
            Some(id) => {
                let expired = self.tasks[id.0 as usize].consume_timeslice(dt);
                TickResult {
                    current: Some(id),
                    timeslice_expired: expired,
                }
            }
            None => TickResult {
                current: None,
                timeslice_expired: false,
            },
        }
    }

    /// Performs a context switch on `cpu`: the running task (if any) is
    /// put back — on the expired array with a fresh timeslice if its
    /// slice ran out, on the active array otherwise — and the next task
    /// is picked.
    pub fn context_switch(&mut self, cpu: CpuId) -> SwitchResult {
        let prev = self.rqs[cpu.0].current();
        let queued_before = self.rqs[cpu.0].nr_queued();
        let total_before = self.rq_profile_total(cpu);
        if let Some(id) = prev {
            let (prio, expired, profile) = {
                let task = &mut self.tasks[id.0 as usize];
                task.set_state(TaskState::Runnable);
                let expired = task.timeslice().is_zero();
                if expired {
                    task.refresh_timeslice();
                }
                (task.prio_index(), expired, task.profile().0)
            };
            if expired {
                self.rqs[cpu.0].enqueue_expired(prio, id);
            } else {
                self.rqs[cpu.0].enqueue_active(prio, id);
            }
            self.rqs[cpu.0].credit_profile(profile);
        }
        let next = self.rqs[cpu.0].pick_next();
        if let Some(id) = next {
            let profile = self.tasks[id.0 as usize].profile().0;
            self.rqs[cpu.0].debit_profile(profile);
        }
        self.rqs[cpu.0].set_current(next);
        if let Some(id) = next {
            let now = self.now;
            let task = &mut self.tasks[id.0 as usize];
            task.set_state(TaskState::Running);
            task.set_cpu(cpu);
            task.set_last_scheduled(now);
        }
        if prev != next {
            self.stats.context_switches += 1;
        }
        // A context switch shuffles tasks between "queued" and
        // "running" without changing the queue's task set, so usually
        // only the queued-count delta needs tracking. But the cached
        // `queued_profile` does not always round-trip *bitwise*
        // through credit(prev)/debit(next) — `(Q + p) - p` can differ
        // from `Q` by an ulp — and cached group ratios must stay
        // bit-identical to fresh scans. So the generation is bumped
        // exactly when the queue's profile total changed bits.
        let d_queued = self.rqs[cpu.0].nr_queued() as isize - queued_before as isize;
        let perturbed = self.rq_profile_total(cpu).to_bits() != total_before.to_bits();
        if d_queued != 0 || perturbed {
            self.agg.apply(cpu, 0, d_queued, 0.0, perturbed);
        }
        SwitchResult { prev, next }
    }

    /// Blocks the running task of `cpu` (it leaves the runqueue) and
    /// returns it.
    pub fn block_current(&mut self, cpu: CpuId) -> Option<TaskId> {
        let id = self.rqs[cpu.0].current()?;
        self.rqs[cpu.0].set_current(None);
        self.tasks[id.0 as usize].set_state(TaskState::Blocked);
        self.agg
            .apply(cpu, -1, 0, -self.tasks[id.0 as usize].profile().0, true);
        Some(id)
    }

    /// Wakes a blocked task, enqueuing it runnable on `cpu` (or on the
    /// CPU it last ran on when `None`).
    ///
    /// # Panics
    ///
    /// Panics if the task is not blocked.
    pub fn wake(&mut self, id: TaskId, cpu: Option<CpuId>) {
        let target = cpu.unwrap_or(self.tasks[id.0 as usize].cpu());
        {
            let task = &mut self.tasks[id.0 as usize];
            assert_eq!(
                task.state(),
                TaskState::Blocked,
                "waking a non-blocked task"
            );
            task.set_state(TaskState::Runnable);
            task.set_cpu(target);
        }
        let prio = self.tasks[id.0 as usize].prio_index();
        let profile = self.tasks[id.0 as usize].profile().0;
        self.rqs[target.0].enqueue_active(prio, id);
        self.rqs[target.0].credit_profile(profile);
        self.agg.apply(target, 1, 1, profile, true);
    }

    /// Terminates the running task of `cpu` and returns it.
    pub fn exit_current(&mut self, cpu: CpuId) -> Option<TaskId> {
        let id = self.rqs[cpu.0].current()?;
        self.rqs[cpu.0].set_current(None);
        self.tasks[id.0 as usize].set_state(TaskState::Exited);
        self.agg
            .apply(cpu, -1, 0, -self.tasks[id.0 as usize].profile().0, true);
        self.stats.exits += 1;
        Some(id)
    }

    /// Migrates a *queued* (waiting, not running) task to another CPU's
    /// active array.
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError`] when the task is running, not runnable,
    /// or already on the destination CPU.
    pub fn migrate_queued(
        &mut self,
        id: TaskId,
        to: CpuId,
        reason: MigrationReason,
    ) -> Result<(), MigrateError> {
        let (from, prio, state) = {
            let t = &self.tasks[id.0 as usize];
            (t.cpu(), t.prio_index(), t.state())
        };
        if from == to {
            return Err(MigrateError::SameCpu);
        }
        match state {
            TaskState::Runnable => {}
            TaskState::Running => return Err(MigrateError::Running),
            _ => return Err(MigrateError::BadState),
        }
        if self.rqs[from.0].current() == Some(id) {
            return Err(MigrateError::Running);
        }
        let removed = self.rqs[from.0].remove(prio, id);
        debug_assert!(removed, "runnable task {id} missing from its runqueue");
        let profile = self.tasks[id.0 as usize].profile().0;
        if removed {
            self.rqs[from.0].debit_profile(profile);
            self.agg.apply(from, -1, -1, -profile, true);
        }
        self.rqs[to.0].enqueue_active(prio, id);
        self.rqs[to.0].credit_profile(profile);
        self.agg.apply(to, 1, 1, profile, true);
        self.finish_migration(id, from, to, reason);
        Ok(())
    }

    /// Removes a *queued* (waiting, not running) task from its
    /// runqueue and retires its id — the extraction half of a
    /// cross-partition handoff: the partitioned engine re-injects the
    /// task's state into another partition's `System` as a fresh
    /// spawn, so within this system the id is simply gone (state
    /// `Exited`, counted neither as an exit nor as a migration).
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError`] when the task is running or not
    /// runnable.
    pub fn take_queued(&mut self, id: TaskId) -> Result<(), MigrateError> {
        let (from, prio, state) = {
            let t = &self.tasks[id.0 as usize];
            (t.cpu(), t.prio_index(), t.state())
        };
        match state {
            TaskState::Runnable => {}
            TaskState::Running => return Err(MigrateError::Running),
            _ => return Err(MigrateError::BadState),
        }
        if self.rqs[from.0].current() == Some(id) {
            return Err(MigrateError::Running);
        }
        let removed = self.rqs[from.0].remove(prio, id);
        debug_assert!(removed, "runnable task {id} missing from its runqueue");
        let profile = self.tasks[id.0 as usize].profile().0;
        if removed {
            self.rqs[from.0].debit_profile(profile);
            self.agg.apply(from, -1, -1, -profile, true);
        }
        self.tasks[id.0 as usize].set_state(TaskState::Exited);
        Ok(())
    }

    /// Pushes the *running* task of `from` to `to`'s active array. The
    /// source CPU is left without a current task; the caller performs
    /// the context switch (as Linux's migration thread does).
    ///
    /// # Errors
    ///
    /// Returns [`MigrateError::NoCurrent`] if `from` is idle or
    /// [`MigrateError::SameCpu`] for a self-migration.
    pub fn migrate_running(
        &mut self,
        from: CpuId,
        to: CpuId,
        reason: MigrationReason,
    ) -> Result<TaskId, MigrateError> {
        if from == to {
            return Err(MigrateError::SameCpu);
        }
        let id = self.rqs[from.0].current().ok_or(MigrateError::NoCurrent)?;
        self.rqs[from.0].set_current(None);
        let (prio, profile) = {
            let task = &mut self.tasks[id.0 as usize];
            task.set_state(TaskState::Runnable);
            (task.prio_index(), task.profile().0)
        };
        self.agg.apply(from, -1, 0, -profile, true);
        self.rqs[to.0].enqueue_active(prio, id);
        self.rqs[to.0].credit_profile(profile);
        self.agg.apply(to, 1, 1, profile, true);
        self.finish_migration(id, from, to, reason);
        Ok(id)
    }

    /// Folds an observed power sample into a task's energy profile
    /// (Eq. 2) and keeps the aggregate tree's profile sums coherent.
    /// Engines must use this instead of mutating the task directly: a
    /// profile change while the task is on a runqueue shifts that
    /// queue's runqueue power, which the per-unit sums and generation
    /// counters track.
    pub fn update_profile(&mut self, id: TaskId, power: Watts, period: SimDuration) -> Watts {
        let old = self.tasks[id.0 as usize].profile().0;
        let new = self.tasks[id.0 as usize].update_profile(power, period);
        let cpu = self.tasks[id.0 as usize].cpu();
        match self.tasks[id.0 as usize].state() {
            TaskState::Running => self.agg.apply(cpu, 0, 0, new.0 - old, true),
            // Engines only update running tasks, but a queued task's
            // profile feeds the runqueue-level cache as well.
            TaskState::Runnable => {
                self.rqs[cpu.0].credit_profile(new.0 - old);
                self.agg.apply(cpu, 0, 0, new.0 - old, true);
            }
            // Off-queue tasks contribute to no cache.
            TaskState::Blocked | TaskState::Exited => {}
        }
        new
    }

    /// Replaces a task's energy profile outright, keeping the
    /// aggregate tree and runqueue power caches coherent — the same
    /// plumbing as [`System::update_profile`] but without the Eq. 2
    /// blend. Engines use this when a task's known activity suddenly
    /// costs a different amount of power, e.g. after a migration onto
    /// a different core class.
    pub fn reset_profile(&mut self, id: TaskId, power: Watts) {
        let old = self.tasks[id.0 as usize].profile().0;
        self.tasks[id.0 as usize].reset_profile(power);
        let new = self.tasks[id.0 as usize].profile();
        let cpu = self.tasks[id.0 as usize].cpu();
        match self.tasks[id.0 as usize].state() {
            TaskState::Running => self.agg.apply(cpu, 0, 0, new.0 - old, true),
            TaskState::Runnable => {
                self.rqs[cpu.0].credit_profile(new.0 - old);
                self.agg.apply(cpu, 0, 0, new.0 - old, true);
            }
            TaskState::Blocked | TaskState::Exited => {}
        }
    }

    /// Sum of `nr_running` over a group's CPUs — one table lookup when
    /// the group is tagged with its hardware unit (all generated
    /// hierarchies are), a scan otherwise. Identical to the scan in
    /// either case: integer sums carry no rounding.
    pub fn group_nr_running(&self, group: &CpuGroup) -> usize {
        match group.unit() {
            Some(GroupUnit::Cpu(c)) => self.nr_running(c),
            Some(unit) => {
                self.agg
                    .cell(unit)
                    .expect("non-CPU unit has a cell")
                    .nr_running
            }
            None => group.cpus().iter().map(|&c| self.nr_running(c)).sum(),
        }
    }

    /// Installs class-weighted per-CPU compute capacities into the
    /// aggregate tree (see [`crate::LoadAggregates::set_cpu_capacities`]).
    /// Engines call this once for hybrid machines; homogeneous systems
    /// keep the default of 1.0 per CPU.
    pub fn set_cpu_capacities(&mut self, caps: &[f64]) {
        self.agg.set_cpu_capacities(caps);
    }

    /// Class-weighted capacity sum over a group's CPUs — the unit's
    /// aggregate when the group is unit-tagged, a scan otherwise.
    /// Equals the group's CPU count on homogeneous machines.
    pub fn group_capacity(&self, group: &CpuGroup) -> f64 {
        match group.unit() {
            Some(unit) => self.agg.capacity(unit),
            None => group.cpus().iter().map(|&c| self.agg.cpu_capacity(c)).sum(),
        }
    }

    /// The class-weighted capacity of one logical CPU.
    pub fn cpu_capacity(&self, cpu: CpuId) -> f64 {
        self.agg.cpu_capacity(cpu)
    }

    /// Sum of `nr_queued` (waiting tasks) over a group's CPUs; see
    /// [`System::group_nr_running`].
    pub fn group_nr_queued(&self, group: &CpuGroup) -> usize {
        match group.unit() {
            Some(GroupUnit::Cpu(c)) => self.rq(c).nr_queued(),
            Some(unit) => {
                self.agg
                    .cell(unit)
                    .expect("non-CPU unit has a cell")
                    .nr_queued
            }
            None => group.cpus().iter().map(|&c| self.rq(c).nr_queued()).sum(),
        }
    }

    /// Summed energy profiles (watts) of every task associated with a
    /// group's runqueues — the O(1) power-at-a-glance read backing
    /// balancing-cost diagnostics. Maintained incrementally; may carry
    /// float residue of the order validated by [`System::validate`].
    pub fn group_profile_sum(&self, group: &CpuGroup) -> f64 {
        match group.unit() {
            Some(unit) if !matches!(unit, GroupUnit::Cpu(_)) => {
                self.agg
                    .cell(unit)
                    .expect("non-CPU unit has a cell")
                    .profile_sum
            }
            _ => group.cpus().iter().map(|&c| self.rq_profile_total(c)).sum(),
        }
    }

    /// The generation counter of a group's unit: it changes whenever
    /// any member queue's *runqueue-power-relevant* state (task set or
    /// a member profile) changes. `None` for single-CPU or untagged
    /// groups, whose consumers read the queue directly. Caches of
    /// derived per-group values key on this.
    pub fn group_gen(&self, group: &CpuGroup) -> Option<u64> {
        match group.unit() {
            Some(GroupUnit::Cpu(_)) | None => None,
            Some(unit) => self.agg.cell(unit).map(|cell| cell.gen),
        }
    }

    /// Queued-plus-running profile total of one CPU's runqueue.
    fn rq_profile_total(&self, cpu: CpuId) -> f64 {
        let rq = &self.rqs[cpu.0];
        let mut total = rq.queued_profile();
        if let Some(id) = rq.current() {
            total += self.tasks[id.0 as usize].profile().0;
        }
        total
    }

    fn finish_migration(&mut self, id: TaskId, from: CpuId, to: CpuId, reason: MigrationReason) {
        let cross_node = !self.topology.same_node(from, to);
        let now = self.now;
        let task = &mut self.tasks[id.0 as usize];
        task.set_cpu(to);
        task.record_migration(now, cross_node, reason);
        self.stats.migrations_by_reason[reason.index()] += 1;
    }

    /// Checks every cross-structure invariant; used by tests and debug
    /// assertions in the simulator.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn validate(&self) {
        let mut seen = vec![0usize; self.tasks.len()];
        for rq in &self.rqs {
            // The cached queued-profile sum matches a fresh recompute.
            let fresh: f64 = rq
                .iter_all()
                .filter(|&id| rq.current() != Some(id))
                .map(|id| self.tasks[id.0 as usize].profile().0)
                .sum();
            assert!(
                (fresh - rq.queued_profile()).abs() < 1e-6 * fresh.abs().max(1.0),
                "queued-profile cache drifted on {}: {} vs {}",
                rq.cpu(),
                rq.queued_profile(),
                fresh
            );
            for id in rq.iter_all() {
                seen[id.0 as usize] += 1;
                let task = &self.tasks[id.0 as usize];
                assert_eq!(
                    task.cpu(),
                    rq.cpu(),
                    "{id} on {} but task.cpu() says {}",
                    rq.cpu(),
                    task.cpu()
                );
                if rq.current() == Some(id) {
                    assert_eq!(
                        task.state(),
                        TaskState::Running,
                        "{id} current but not Running"
                    );
                } else {
                    assert_eq!(
                        task.state(),
                        TaskState::Runnable,
                        "{id} queued but not Runnable"
                    );
                }
            }
        }
        for (i, task) in self.tasks.iter().enumerate() {
            let expected = match task.state() {
                TaskState::Runnable | TaskState::Running => 1,
                TaskState::Blocked | TaskState::Exited => 0,
            };
            assert_eq!(
                seen[i],
                expected,
                "{} in state {:?} appears {} times on runqueues",
                task.id(),
                task.state(),
                seen[i]
            );
        }
        self.validate_aggregates();
    }

    /// Checks every unit of the aggregate tree against a from-scratch
    /// recomputation: integer sums exactly, profile sums within float
    /// tolerance (they are maintained incrementally).
    fn validate_aggregates(&self) {
        let check = |unit: GroupUnit, cpus: &[CpuId]| {
            let cell = self.agg.cell(unit).expect("unit has a cell");
            let fresh_running: usize = cpus.iter().map(|&c| self.nr_running(c)).sum();
            let fresh_queued: usize = cpus.iter().map(|&c| self.rq(c).nr_queued()).sum();
            let fresh_profile: f64 = cpus
                .iter()
                .flat_map(|&c| self.rq(c).iter_all())
                .map(|id| self.tasks[id.0 as usize].profile().0)
                .sum();
            assert_eq!(
                cell.nr_running, fresh_running,
                "{unit:?}: aggregate nr_running drifted"
            );
            assert_eq!(
                cell.nr_queued, fresh_queued,
                "{unit:?}: aggregate nr_queued drifted"
            );
            assert!(
                (cell.profile_sum - fresh_profile).abs() < 1e-6 * fresh_profile.abs().max(1.0),
                "{unit:?}: aggregate profile sum drifted: {} vs {}",
                cell.profile_sum,
                fresh_profile
            );
        };
        for core in 0..self.topology.n_cores() {
            let core = ebs_topology::CoreId(core);
            check(GroupUnit::Core(core), &self.topology.cpus_of_core(core));
        }
        for pkg in 0..self.topology.n_packages() {
            let pkg = ebs_topology::PackageId(pkg);
            check(GroupUnit::Package(pkg), &self.topology.cpus_of_package(pkg));
        }
        for node in 0..self.topology.n_nodes() {
            let node = ebs_topology::NodeId(node);
            check(GroupUnit::Node(node), &self.topology.cpus_of_node(node));
        }
    }
}

impl ebs_store::Snapshot for SystemStats {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        for &n in &self.migrations_by_reason {
            w.u64(n);
        }
        w.u64(self.context_switches);
        w.u64(self.spawns);
        w.u64(self.exits);
    }

    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        for n in &mut self.migrations_by_reason {
            *n = r.u64()?;
        }
        self.context_switches = r.u64()?;
        self.spawns = r.u64()?;
        self.exits = r.u64()?;
        Ok(())
    }
}

impl ebs_store::Snapshot for System {
    fn save(&self, w: &mut ebs_store::StateWriter) {
        w.key("system");
        w.seq(&self.tasks, |w, t| t.save(w));
        w.seq(&self.rqs, |w, rq| rq.save(w));
        self.agg.save(w);
        w.time(self.now);
        self.stats.save(w);
    }

    /// Restores into a freshly built [`System::new`] of the *same
    /// topology*; tasks travel with their configs, so nothing else
    /// about the saved workload needs to be re-created by the caller.
    fn restore(&mut self, r: &mut ebs_store::StateReader<'_>) -> Result<(), ebs_store::StoreError> {
        r.key("system")?;
        let n = r.usize()?;
        let mut tasks = Vec::with_capacity(n.min(1 << 20));
        for i in 0..n {
            let task = Task::from_snapshot(r)?;
            if task.id().0 as usize != i {
                return Err(ebs_store::StoreError::Invalid(format!(
                    "task table out of order: id {} at slot {i}",
                    task.id()
                )));
            }
            tasks.push(task);
        }
        self.tasks = tasks;
        let n_rqs = r.usize()?;
        if n_rqs != self.rqs.len() {
            return Err(ebs_store::StoreError::Invalid(format!(
                "snapshot has {n_rqs} runqueues, topology has {}",
                self.rqs.len()
            )));
        }
        for rq in &mut self.rqs {
            rq.restore(r)?;
        }
        self.agg.restore(r)?;
        self.now = r.time()?;
        self.stats.restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> System {
        System::new(Topology::xseries445(false))
    }

    #[test]
    fn spawn_enqueues_runnable() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(3));
        assert_eq!(sys.task(t).state(), TaskState::Runnable);
        assert_eq!(sys.nr_running(CpuId(3)), 1);
        assert_eq!(sys.stats().spawns, 1);
        sys.validate();
    }

    #[test]
    fn context_switch_runs_highest_priority() {
        let mut sys = system();
        let lo = sys.spawn(
            TaskConfig {
                nice: 5,
                ..TaskConfig::default()
            },
            CpuId(0),
        );
        let hi = sys.spawn(
            TaskConfig {
                nice: -5,
                ..TaskConfig::default()
            },
            CpuId(0),
        );
        let sw = sys.context_switch(CpuId(0));
        assert_eq!(sw.next, Some(hi));
        assert_eq!(sys.task(hi).state(), TaskState::Running);
        assert_eq!(sys.task(lo).state(), TaskState::Runnable);
        sys.validate();
    }

    #[test]
    fn tick_expires_timeslice_and_round_robins() {
        let mut sys = system();
        let a = sys.spawn(TaskConfig::default(), CpuId(0));
        let b = sys.spawn(TaskConfig::default(), CpuId(0));
        assert_eq!(sys.context_switch(CpuId(0)).next, Some(a));
        // Burn a's entire 100 ms slice.
        let mut expired = false;
        for _ in 0..100 {
            expired = sys
                .tick(CpuId(0), SimDuration::from_millis(1))
                .timeslice_expired;
        }
        assert!(expired);
        let sw = sys.context_switch(CpuId(0));
        assert_eq!(sw.prev, Some(a));
        assert_eq!(sw.next, Some(b));
        // a got a fresh slice for its next turn.
        assert_eq!(sys.task(a).timeslice(), crate::task::DEFAULT_TIMESLICE);
        sys.validate();
    }

    #[test]
    fn time_to_expiry_tracks_remaining_slice() {
        let mut sys = system();
        assert_eq!(sys.time_to_timeslice_expiry(CpuId(0)), None);
        sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        assert_eq!(
            sys.time_to_timeslice_expiry(CpuId(0)),
            Some(crate::task::DEFAULT_TIMESLICE)
        );
        sys.tick(CpuId(0), SimDuration::from_millis(30));
        assert_eq!(
            sys.time_to_timeslice_expiry(CpuId(0)),
            Some(SimDuration::from_millis(70))
        );
    }

    #[test]
    fn tick_on_idle_cpu_is_empty() {
        let mut sys = system();
        let r = sys.tick(CpuId(1), SimDuration::from_millis(1));
        assert_eq!(r.current, None);
        assert!(!r.timeslice_expired);
    }

    #[test]
    fn block_and_wake_cycle() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        assert_eq!(sys.block_current(CpuId(0)), Some(t));
        assert_eq!(sys.task(t).state(), TaskState::Blocked);
        assert!(sys.rq(CpuId(0)).is_idle());
        sys.validate();
        sys.wake(t, None);
        assert_eq!(sys.task(t).state(), TaskState::Runnable);
        assert_eq!(sys.nr_running(CpuId(0)), 1);
        sys.validate();
        // Wake onto a different CPU.
        sys.context_switch(CpuId(0));
        sys.block_current(CpuId(0));
        sys.wake(t, Some(CpuId(5)));
        assert_eq!(sys.task(t).cpu(), CpuId(5));
        sys.validate();
    }

    #[test]
    fn exit_removes_from_scheduling() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        assert_eq!(sys.exit_current(CpuId(0)), Some(t));
        assert_eq!(sys.task(t).state(), TaskState::Exited);
        assert_eq!(sys.stats().exits, 1);
        assert_eq!(sys.context_switch(CpuId(0)).next, None);
        sys.validate();
    }

    #[test]
    fn take_queued_extracts_for_handoff() {
        let mut sys = system();
        let running = sys.spawn(TaskConfig::default(), CpuId(0));
        let queued = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        // The running task cannot be taken; the queued one can.
        assert_eq!(sys.take_queued(running), Err(MigrateError::Running));
        sys.take_queued(queued).unwrap();
        assert_eq!(sys.task(queued).state(), TaskState::Exited);
        assert_eq!(sys.nr_running(CpuId(0)), 1);
        // A handoff is neither an exit nor a migration.
        assert_eq!(sys.stats().exits, 0);
        assert_eq!(sys.stats().migrations(), 0);
        // Re-taking fails; blocked tasks fail too.
        assert_eq!(sys.take_queued(queued), Err(MigrateError::BadState));
        sys.validate();
    }

    #[test]
    fn migrate_queued_moves_between_runqueues() {
        let mut sys = system();
        let _running = sys.spawn(TaskConfig::default(), CpuId(0));
        let queued = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        sys.migrate_queued(queued, CpuId(4), MigrationReason::LoadBalance)
            .unwrap();
        assert_eq!(sys.task(queued).cpu(), CpuId(4));
        assert_eq!(sys.nr_running(CpuId(4)), 1);
        assert_eq!(sys.stats().migrations(), 1);
        assert_eq!(sys.stats().migrations_for(MigrationReason::LoadBalance), 1);
        // Cross-node flag: CPU 0 is node 0, CPU 4 is node 1.
        assert_eq!(
            sys.task(queued).last_migration(),
            Some((SimTime::ZERO, true))
        );
        sys.validate();
    }

    #[test]
    fn migrate_queued_rejects_running_and_same_cpu() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        assert_eq!(
            sys.migrate_queued(t, CpuId(1), MigrationReason::LoadBalance),
            Err(MigrateError::Running)
        );
        let q = sys.spawn(TaskConfig::default(), CpuId(0));
        assert_eq!(
            sys.migrate_queued(q, CpuId(0), MigrationReason::LoadBalance),
            Err(MigrateError::SameCpu)
        );
    }

    #[test]
    fn migrate_queued_rejects_blocked() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        sys.block_current(CpuId(0));
        assert_eq!(
            sys.migrate_queued(t, CpuId(1), MigrationReason::LoadBalance),
            Err(MigrateError::BadState)
        );
    }

    #[test]
    fn migrate_running_pushes_current() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        let moved = sys
            .migrate_running(CpuId(0), CpuId(2), MigrationReason::HotTask)
            .unwrap();
        assert_eq!(moved, t);
        assert_eq!(sys.current(CpuId(0)), None);
        assert_eq!(sys.task(t).cpu(), CpuId(2));
        assert_eq!(sys.task(t).state(), TaskState::Runnable);
        assert_eq!(sys.stats().migrations_for(MigrationReason::HotTask), 1);
        // Destination picks it up at its next switch.
        assert_eq!(sys.context_switch(CpuId(2)).next, Some(t));
        sys.validate();
    }

    #[test]
    fn migrate_running_errors() {
        let mut sys = system();
        assert_eq!(
            sys.migrate_running(CpuId(0), CpuId(1), MigrationReason::HotTask),
            Err(MigrateError::NoCurrent)
        );
        let _ = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.context_switch(CpuId(0));
        assert_eq!(
            sys.migrate_running(CpuId(0), CpuId(0), MigrationReason::HotTask),
            Err(MigrateError::SameCpu)
        );
    }

    #[test]
    fn hot_task_exchange_sequence() {
        // The Fig. 5 "exchange tasks" path: hot current moves to dest,
        // dest's cool current moves back.
        let mut sys = system();
        let hot = sys.spawn(TaskConfig::default(), CpuId(0));
        let cool = sys.spawn(TaskConfig::default(), CpuId(1));
        sys.context_switch(CpuId(0));
        sys.context_switch(CpuId(1));
        sys.migrate_running(CpuId(1), CpuId(0), MigrationReason::Exchange)
            .unwrap();
        sys.migrate_running(CpuId(0), CpuId(1), MigrationReason::HotTask)
            .unwrap();
        assert_eq!(sys.context_switch(CpuId(0)).next, Some(cool));
        assert_eq!(sys.context_switch(CpuId(1)).next, Some(hot));
        assert_eq!(sys.stats().migrations(), 2);
        sys.validate();
    }

    #[test]
    fn clock_is_monotone() {
        let mut sys = system();
        sys.set_now(SimTime::from_millis(5));
        assert_eq!(sys.now(), SimTime::from_millis(5));
    }

    #[test]
    fn last_scheduled_records_dispatch_time() {
        let mut sys = system();
        let t = sys.spawn(TaskConfig::default(), CpuId(0));
        sys.set_now(SimTime::from_millis(250));
        sys.context_switch(CpuId(0));
        assert_eq!(sys.task(t).last_scheduled(), SimTime::from_millis(250));
    }
}
